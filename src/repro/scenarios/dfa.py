"""Differential fault analysis campaign on the SPN cipher.

Implements the paper's second attack category end-to-end with the same
cross-level machinery as the MPU study: the encryption runs behaviourally,
the sampled injection cycle runs at gate level
(:class:`~repro.gatesim.transient.TransientSimulator`), the latched bit
errors are written back by register name, and the run completes to the
observation time ``Tt`` (the ``done`` cycle), yielding a faulty
ciphertext.

The success indicator follows classical last-round DFA: a (C, C') pair is
*useful* when some ciphertext nibble's whitening-key candidates — the keys
``k`` for which ``S^-1(C_i ^ k) ^ S^-1(C'_i ^ k)`` is a plausible fault
difference — shrink below half the keyspace while still containing the
true key. ``SSF_dfa = Pr[useful]`` under the holistic attack distribution,
and the campaign also measures the classical DFA quantity: how many
injections until the whitening key is fully recovered.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.attack.techniques import RadiationTechnique
from repro.errors import EvaluationError
from repro.gatesim.timing import TimingModel, for_netlist
from repro.gatesim.transient import TransientSimulator
from repro.netlist.placement import GridPlacer
from repro.scenarios.cipher import (
    N_KEYS,
    N_ROUNDS,
    SBOX_INV,
    SpnCipher,
    build_cipher_netlist,
    encrypt_reference,
)
from repro.utils.rng import SeedLike, as_generator

_IDLE = {"start": 0, "pt": 0, "rk_we": 0, "rk_index": 0, "rk_data": 0}


def last_round_candidates(
    ciphertext: int,
    faulty: int,
    max_fault_weight: int = 1,
) -> List[Set[int]]:
    """Whitening-key candidates per nibble from one (C, C') pair.

    An unaffected nibble constrains nothing (full 16-candidate set); an
    affected nibble keeps the keys whose implied fault difference has
    Hamming weight ``<= max_fault_weight``.
    """
    candidates: List[Set[int]] = []
    for i in range(4):
        c = (ciphertext >> (4 * i)) & 0xF
        f = (faulty >> (4 * i)) & 0xF
        if c == f:
            candidates.append(set(range(16)))
            continue
        keep = {
            k
            for k in range(16)
            if bin(SBOX_INV[c ^ k] ^ SBOX_INV[f ^ k]).count("1")
            <= max_fault_weight
        }
        candidates.append(keep)
    return candidates


@dataclass
class DfaSampleRecord:
    """One fault injection against one encryption."""

    plaintext: int
    inject_round: int
    centre: int
    radius_um: float
    masked: bool
    useful: bool
    ciphertext: int = 0
    faulty: int = 0


@dataclass
class DfaReport:
    """Campaign results (the scenario-2 analogue of a CampaignResult)."""

    records: List[DfaSampleRecord] = field(default_factory=list)
    key_recovered: bool = False
    injections_to_recovery: Optional[int] = None
    recovered_key: Optional[int] = None
    true_whitening_key: int = 0
    wall_time_s: float = 0.0

    @property
    def n_samples(self) -> int:
        return len(self.records)

    @property
    def ssf(self) -> float:
        """Probability one injection yields a DFA-useful pair."""
        if not self.records:
            return 0.0
        return sum(r.useful for r in self.records) / len(self.records)

    @property
    def masked_fraction(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.masked for r in self.records) / len(self.records)

    def usefulness_by_round(self) -> Dict[int, float]:
        """The classical DFA curve: P[useful | injection round]."""
        by_round: Dict[int, List[int]] = {}
        for record in self.records:
            by_round.setdefault(record.inject_round, []).append(record.useful)
        return {
            r: sum(flags) / len(flags) for r, flags in sorted(by_round.items())
        }


class DfaCampaign:
    """Cross-level fault campaign against the SPN cipher block."""

    def __init__(
        self,
        round_keys: Sequence[int],
        radii_um: Sequence[float] = (2.0, 3.0, 4.0),
        placement_seed: int = 3,
        timing: Optional[TimingModel] = None,
        max_fault_weight: int = 1,
        candidate_threshold: int = 4,
    ):
        if len(round_keys) != N_KEYS:
            raise EvaluationError(f"need {N_KEYS} round keys")
        self.round_keys = [k & 0xFFFF for k in round_keys]
        self.netlist = build_cipher_netlist()
        self.placement = GridPlacer(
            pitch_um=2.0, jitter=0.2, seed=placement_seed
        ).place(self.netlist)
        self.timing = timing or for_netlist(self.netlist)
        self.simulator = TransientSimulator(self.netlist, self.timing)
        self.technique = RadiationTechnique(timing=self.timing)
        self.radii_um = tuple(radii_um)
        self.max_fault_weight = max_fault_weight
        # A nibble is "useful" when its candidate set shrinks to at most
        # this many keys.  True last-round-input faults give the S-box
        # differential count (2-4 for PRESENT's S-box); deeply diffused
        # faults rarely pass, so this doubles as the attacker's
        # consistency filter.
        self.candidate_threshold = candidate_threshold
        # attackable cells: everything physical on the die
        self.universe = [
            node.nid
            for node in self.netlist.nodes
            if node.kind.value not in ("input", "const0", "const1")
        ]

    # ------------------------------------------------------------------
    def _fresh_cipher(self) -> SpnCipher:
        cipher = SpnCipher()
        cipher.load_keys(self.round_keys)
        return cipher

    def run_one(
        self,
        plaintext: int,
        inject_round: int,
        centre: int,
        radius_um: float,
        rng: np.random.Generator,
    ) -> Tuple[bool, int]:
        """One faulted encryption; returns (masked, faulty ciphertext)."""
        if not 0 <= inject_round < N_ROUNDS:
            raise EvaluationError("inject_round out of range")
        cipher = self._fresh_cipher()
        cipher.step(start=1, pt=plaintext)
        for _ in range(inject_round):
            cipher.step()
        # Gate-level simulation of the injection cycle: the behavioural
        # registers are the netlist registers (same names, same widths).
        injection = self.technique.build_injection(
            self.placement, centre, radius_um, rng
        )
        result = self.simulator.simulate_cycle(_IDLE, dict(cipher.regs), injection)
        cipher.step()
        for register, bit in result.flipped_bits:
            cipher.regs[register] ^= 1 << bit
        # Control-state corruption (phase/round flips) can stall the block;
        # a real attacker then sees no ciphertext at all.  Bounded drain.
        for _ in range(4 * N_ROUNDS):
            if cipher.done:
                break
            cipher.step()
        return (not result.flipped_bits, cipher.ciphertext)

    # ------------------------------------------------------------------
    def evaluate(
        self,
        n_samples: int,
        seed: SeedLike = 0,
        inject_round: Optional[int] = None,
    ) -> DfaReport:
        """Run a campaign; accumulates DFA candidates toward key recovery."""
        if n_samples <= 0:
            raise EvaluationError("n_samples must be positive")
        rng = as_generator(seed)
        report = DfaReport(true_whitening_key=self.round_keys[N_ROUNDS])
        running: List[Set[int]] = [set(range(16)) for _ in range(4)]
        start = time.perf_counter()
        for index in range(n_samples):
            pt = int(rng.integers(0, 1 << 16))
            r = (
                inject_round
                if inject_round is not None
                else int(rng.integers(0, N_ROUNDS))
            )
            centre = int(self.universe[rng.integers(0, len(self.universe))])
            radius = float(self.radii_um[rng.integers(0, len(self.radii_um))])
            golden = encrypt_reference(pt, self.round_keys)
            masked, faulty = self.run_one(pt, r, centre, radius, rng)

            useful = False
            if not masked and faulty != golden:
                candidates = last_round_candidates(
                    golden, faulty, self.max_fault_weight
                )
                true_key = self.round_keys[N_ROUNDS]
                for nibble, cands in enumerate(candidates):
                    true_nibble = (true_key >> (4 * nibble)) & 0xF
                    if (
                        0 < len(cands) <= self.candidate_threshold
                        and true_nibble in cands
                    ):
                        useful = True
                if useful:
                    for nibble, cands in enumerate(candidates):
                        if cands and ((true_key >> (4 * nibble)) & 0xF) in cands:
                            running[nibble] &= cands
                    if (
                        not report.key_recovered
                        and all(len(c) == 1 for c in running)
                    ):
                        report.key_recovered = True
                        report.injections_to_recovery = index + 1
                        report.recovered_key = sum(
                            next(iter(c)) << (4 * i)
                            for i, c in enumerate(running)
                        )
            report.records.append(
                DfaSampleRecord(
                    plaintext=pt,
                    inject_round=r,
                    centre=centre,
                    radius_um=radius,
                    masked=masked,
                    useful=useful,
                    ciphertext=golden,
                    faulty=faulty,
                )
            )
        report.wall_time_s = time.perf_counter() - start
        return report
