"""Cycle-accurate RTL simulation kernel.

Plays the role Synopsys VCS plays in the paper: behavioural, cycle-based
simulation of the device under evaluation with

* a **golden run** that dumps checkpoints (all register values plus memory
  arrays) at fixed intervals (Section 5.1),
* restart-from-nearest-checkpoint for every fault-attack run (Section 5.2),
* register **bit-error write-back**, the RTL side of the cross-level
  hand-off, and
* per-cycle probing for traces (used by the pre-characterization).
"""

from repro.rtl.device import Device, RegisterSpec
from repro.rtl.checkpoint import Checkpoint, CheckpointStore
from repro.rtl.simulator import GoldenRun, RtlSimulator
from repro.rtl.vcd import VcdWriter, dump_run

__all__ = [
    "Device",
    "RegisterSpec",
    "Checkpoint",
    "CheckpointStore",
    "GoldenRun",
    "RtlSimulator",
    "VcdWriter",
    "dump_run",
]
