"""The RTL simulator: golden runs, restarts, probing.

:class:`RtlSimulator` wraps a :class:`~repro.rtl.device.Device` and adds the
framework-level services of Section 5 of the paper:

* :meth:`golden_run` — simulate the whole benchmark once, dumping
  checkpoints at a fixed interval and recording any probe traces;
* :meth:`restart_from` — restore the nearest checkpoint before a cycle and
  advance to that cycle (warm-up elimination for fault-attack runs);
* :meth:`run_to` / :meth:`step` — plain cycle advancement with probes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from repro.errors import SimulationError
from repro.rtl.checkpoint import Checkpoint, CheckpointStore
from repro.rtl.device import Device

Probe = Callable[[Device, int], object]


@dataclass
class GoldenRun:
    """Artifacts of one golden (fault-free) benchmark run."""

    n_cycles: int
    checkpoints: CheckpointStore
    final: Checkpoint
    traces: Dict[str, List[object]] = field(default_factory=dict)

    def golden_state_at(self, cycle: int) -> Checkpoint:
        """Exact golden checkpoint at a cycle (must be a dump cycle)."""
        return self.checkpoints.at(cycle)


class RtlSimulator:
    """Cycle driver for one device."""

    def __init__(self, device: Device):
        self.device = device
        self.cycle = 0
        self._probes: Dict[str, Probe] = {}

    # ------------------------------------------------------------------
    # probes
    # ------------------------------------------------------------------
    def add_probe(self, name: str, probe: Probe) -> None:
        """Register a per-cycle probe; its results are collected in traces."""
        if name in self._probes:
            raise SimulationError(f"duplicate probe {name!r}")
        self._probes[name] = probe

    def remove_probe(self, name: str) -> None:
        self._probes.pop(name, None)

    # ------------------------------------------------------------------
    # plain stepping
    # ------------------------------------------------------------------
    def reset(self) -> None:
        self.device.reset()
        self.cycle = 0

    def step(self, traces: Optional[Dict[str, List[object]]] = None) -> None:
        """One clock edge; probes observe the *pre-edge* state."""
        if traces is not None:
            for name, probe in self._probes.items():
                traces.setdefault(name, []).append(probe(self.device, self.cycle))
        self.device.step()
        self.cycle += 1

    def run_to(
        self, cycle: int, traces: Optional[Dict[str, List[object]]] = None
    ) -> None:
        if cycle < self.cycle:
            raise SimulationError(
                f"cannot run backwards: at {self.cycle}, asked for {cycle}"
            )
        while self.cycle < cycle:
            self.step(traces)

    # ------------------------------------------------------------------
    # golden run
    # ------------------------------------------------------------------
    def golden_run(
        self,
        n_cycles: int,
        checkpoint_interval: int = 50,
        collect_traces: bool = True,
    ) -> GoldenRun:
        """Fault-free full run with periodic checkpoint dumps.

        Checkpoints land at cycles 0, interval, 2*interval, ..., and always
        at ``n_cycles`` so outcome comparison has an end-of-run reference.
        """
        if n_cycles <= 0:
            raise SimulationError("golden run needs a positive cycle count")
        if checkpoint_interval <= 0:
            raise SimulationError("checkpoint interval must be positive")
        self.reset()
        store = CheckpointStore()
        traces: Dict[str, List[object]] = {}
        store.add(Checkpoint.capture(self.device, 0))
        while self.cycle < n_cycles:
            self.step(traces if collect_traces else None)
            if self.cycle % checkpoint_interval == 0 or self.cycle == n_cycles:
                store.add(Checkpoint.capture(self.device, self.cycle))
        final = store.at(n_cycles)
        return GoldenRun(
            n_cycles=n_cycles, checkpoints=store, final=final, traces=traces
        )

    # ------------------------------------------------------------------
    # fault-attack run support
    # ------------------------------------------------------------------
    def restart_from(self, golden: GoldenRun, cycle: int) -> None:
        """Restore nearest checkpoint <= cycle, then advance to ``cycle``."""
        checkpoint = golden.checkpoints.nearest_before(cycle)
        checkpoint.restore(self.device)
        self.cycle = checkpoint.cycle
        self.run_to(cycle)

    def inject_bit_errors(self, bits: Mapping[str, int]) -> None:
        """XOR error masks into registers (cross-level write-back)."""
        current = self.device.get_registers()
        updates = {
            reg: current[reg] ^ mask for reg, mask in bits.items() if mask
        }
        if updates:
            self.device.set_registers(updates)

    def state_matches(self, checkpoint: Checkpoint, registers: Optional[List[str]] = None) -> bool:
        """Compare current register state against a golden checkpoint."""
        current = self.device.get_registers()
        names = registers if registers is not None else checkpoint.registers.keys()
        return all(current[name] == checkpoint.registers[name] for name in names)
