"""VCD (Value Change Dump) waveform output.

Lets any :class:`~repro.rtl.device.Device` run be inspected in a standard
waveform viewer (GTKWave etc.) — the debugging workflow every RTL engineer
expects.  The writer records register values once per cycle and emits only
changes, per IEEE 1364 VCD conventions.

Usage::

    with VcdWriter("run.vcd", device.register_specs()) as vcd:
        for cycle in range(n):
            vcd.sample(cycle, device.get_registers())
            device.step()
"""

from __future__ import annotations

import io
import pathlib
from typing import Dict, Mapping, Optional, TextIO, Union

from repro.errors import SimulationError
from repro.rtl.device import RegisterSpec

_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Compact VCD identifier codes: !, ", #, ... !!, !", ..."""
    if index < 0:
        raise ValueError("identifier index must be non-negative")
    digits = []
    while True:
        digits.append(_ID_CHARS[index % len(_ID_CHARS)])
        index = index // len(_ID_CHARS) - 1
        if index < 0:
            break
    return "".join(reversed(digits))


class VcdWriter:
    """Streams register traces into a VCD file."""

    def __init__(
        self,
        target: Union[str, pathlib.Path, TextIO],
        specs: Mapping[str, RegisterSpec],
        module: str = "device",
        timescale: str = "1ns",
        date: str = "",
    ):
        if not specs:
            raise SimulationError("VCD writer needs at least one register")
        if hasattr(target, "write"):
            self._handle: TextIO = target  # caller-owned stream
            self._owns_handle = False
        else:
            self._handle = open(target, "w")
            self._owns_handle = True
        self.specs = dict(specs)
        self._ids: Dict[str, str] = {
            name: _identifier(i) for i, name in enumerate(sorted(self.specs))
        }
        self._last: Dict[str, Optional[int]] = {name: None for name in self.specs}
        self._header_done = False
        self._closed = False
        self._module = module
        self._timescale = timescale
        self._date = date

    # ------------------------------------------------------------------
    def _write_header(self) -> None:
        handle = self._handle
        if self._date:
            handle.write(f"$date {self._date} $end\n")
        handle.write(f"$timescale {self._timescale} $end\n")
        handle.write(f"$scope module {self._module} $end\n")
        for name in sorted(self.specs):
            spec = self.specs[name]
            kind = "wire" if spec.width == 1 else "reg"
            handle.write(
                f"$var {kind} {spec.width} {self._ids[name]} {name} "
                f"{'' if spec.width == 1 else f'[{spec.width - 1}:0] '}$end\n"
            )
        handle.write("$upscope $end\n")
        handle.write("$enddefinitions $end\n")
        self._header_done = True

    def _emit(self, name: str, value: int) -> None:
        spec = self.specs[name]
        code = self._ids[name]
        if spec.width == 1:
            self._handle.write(f"{value & 1}{code}\n")
        else:
            bits = format(value & spec.mask, f"0{spec.width}b")
            self._handle.write(f"b{bits} {code}\n")

    # ------------------------------------------------------------------
    def sample(self, cycle: int, registers: Mapping[str, int]) -> None:
        """Record one cycle; only changed values are written."""
        if self._closed:
            raise SimulationError("VCD writer is closed")
        if not self._header_done:
            self._write_header()
        changes = [
            (name, int(registers[name]))
            for name in self.specs
            if name in registers and self._last[name] != int(registers[name])
        ]
        if not changes and self._last[next(iter(self.specs))] is not None:
            return
        self._handle.write(f"#{cycle}\n")
        if all(v is None for v in self._last.values()):
            self._handle.write("$dumpvars\n")
            for name in sorted(self.specs):
                value = int(registers.get(name, 0))
                self._emit(name, value)
                self._last[name] = value
            self._handle.write("$end\n")
            return
        for name, value in changes:
            self._emit(name, value)
            self._last[name] = value

    def close(self) -> None:
        if not self._closed:
            if not self._header_done:
                self._write_header()
            if self._owns_handle:
                self._handle.close()
            self._closed = True

    def __enter__(self) -> "VcdWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def dump_run(
    device,
    n_cycles: int,
    target: Union[str, pathlib.Path, TextIO],
    registers: Optional[list] = None,
) -> None:
    """Convenience: reset the device and dump a whole run to VCD."""
    specs = device.register_specs()
    if registers is not None:
        missing = set(registers) - set(specs)
        if missing:
            raise SimulationError(f"unknown registers: {sorted(missing)}")
        specs = {name: specs[name] for name in registers}
    device.reset()
    with VcdWriter(target, specs) as vcd:
        for cycle in range(n_cycles):
            vcd.sample(cycle, device.get_registers())
            device.step()
        vcd.sample(n_cycles, device.get_registers())
