"""Golden checkpoints.

A checkpoint is a full architectural snapshot (registers + memory arrays) at
a known cycle.  The golden run dumps one every ``interval`` cycles; every
fault-attack run restarts from the nearest checkpoint at or before its
injection cycle, which is where the bulk of the paper's per-sample speedup
over naive re-simulation comes from.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.errors import CheckpointError
from repro.rtl.device import Device


@dataclass(frozen=True)
class Checkpoint:
    """Immutable snapshot of a device at one cycle."""

    cycle: int
    registers: Dict[str, int]
    arrays: Dict[str, List[int]]

    @classmethod
    def capture(cls, device: Device, cycle: int) -> "Checkpoint":
        return cls(
            cycle=cycle,
            registers=dict(device.get_registers()),
            arrays={k: list(v) for k, v in device.get_arrays().items()},
        )

    def restore(self, device: Device) -> None:
        device.set_registers(self.registers)
        device.set_arrays({k: list(v) for k, v in self.arrays.items()})

    def diff_registers(self, other: "Checkpoint") -> Dict[str, int]:
        """XOR of register values that differ between two snapshots."""
        out: Dict[str, int] = {}
        for name, value in self.registers.items():
            delta = value ^ other.registers.get(name, 0)
            if delta:
                out[name] = delta
        return out


class CheckpointStore:
    """Ordered collection of checkpoints with nearest-lookup."""

    def __init__(self) -> None:
        self._cycles: List[int] = []
        self._checkpoints: Dict[int, Checkpoint] = {}

    def add(self, checkpoint: Checkpoint) -> None:
        if checkpoint.cycle in self._checkpoints:
            raise CheckpointError(f"duplicate checkpoint at cycle {checkpoint.cycle}")
        bisect.insort(self._cycles, checkpoint.cycle)
        self._checkpoints[checkpoint.cycle] = checkpoint

    def __len__(self) -> int:
        return len(self._cycles)

    def cycles(self) -> List[int]:
        return list(self._cycles)

    def at(self, cycle: int) -> Checkpoint:
        try:
            return self._checkpoints[cycle]
        except KeyError:
            raise CheckpointError(f"no checkpoint at cycle {cycle}") from None

    def nearest_before(self, cycle: int) -> Checkpoint:
        """Latest checkpoint with ``checkpoint.cycle <= cycle``."""
        idx = bisect.bisect_right(self._cycles, cycle) - 1
        if idx < 0:
            raise CheckpointError(
                f"no checkpoint at or before cycle {cycle} "
                f"(earliest is {self._cycles[0] if self._cycles else 'none'})"
            )
        return self._checkpoints[self._cycles[idx]]
