"""The device protocol every simulatable design implements.

A *device* is any behavioural model with named registers (the flip-flop
state the cross-level flow exchanges with the gate level) and optional
memory arrays (RAM/ROM contents that checkpoints must also capture).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Mapping


@dataclass(frozen=True)
class RegisterSpec:
    """Width and reset value of one named register."""

    width: int
    init: int = 0

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("register width must be positive")
        if not 0 <= self.init < (1 << self.width):
            raise ValueError("register init value does not fit its width")

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1


class Device(abc.ABC):
    """Behavioural RTL model: registers + arrays + a step function."""

    @abc.abstractmethod
    def register_specs(self) -> Dict[str, RegisterSpec]:
        """The register manifest: name -> spec.  Stable across the run."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Return all state (registers, arrays, internal) to power-on."""

    @abc.abstractmethod
    def step(self) -> None:
        """Advance exactly one clock cycle."""

    @abc.abstractmethod
    def get_registers(self) -> Dict[str, int]:
        """Snapshot of every register value."""

    @abc.abstractmethod
    def set_registers(self, values: Mapping[str, int]) -> None:
        """Overwrite (a subset of) register values."""

    def get_arrays(self) -> Dict[str, List[int]]:
        """Snapshot of memory arrays; default: none."""
        return {}

    def set_arrays(self, arrays: Mapping[str, List[int]]) -> None:
        """Restore memory arrays; default: nothing to restore."""
        if arrays:
            raise NotImplementedError(
                f"{type(self).__name__} has no arrays to restore"
            )

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def flip_register_bit(self, register: str, bit: int) -> None:
        """Inject a single bit error into one register."""
        specs = self.register_specs()
        if register not in specs:
            raise KeyError(f"unknown register {register!r}")
        if not 0 <= bit < specs[register].width:
            raise ValueError(
                f"bit {bit} out of range for {register!r} "
                f"(width {specs[register].width})"
            )
        current = self.get_registers()[register]
        self.set_registers({register: current ^ (1 << bit)})

    def total_register_bits(self) -> int:
        return sum(spec.width for spec in self.register_specs().values())
