"""Tests for the DFA campaign (the paper's scenario-2 flow)."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.scenarios.cipher import N_KEYS, SBOX, encrypt_reference, sbox_layer
from repro.scenarios.dfa import DfaCampaign, last_round_candidates


def random_keys(seed=0):
    rng = np.random.default_rng(seed)
    return [int(rng.integers(0, 1 << 16)) for _ in range(N_KEYS)]


class TestCandidateAnalysis:
    def test_unaffected_nibbles_unconstrained(self):
        candidates = last_round_candidates(0x1234, 0x1234)
        assert all(len(c) == 16 for c in candidates)

    def test_true_key_always_survives_a_real_fault(self):
        """A genuine 1-bit fault on the last-round input must keep the true
        whitening key among the candidates of the affected nibble."""
        rng = np.random.default_rng(1)
        for _ in range(50):
            x = int(rng.integers(0, 1 << 16))      # last-round input (keyed)
            k4 = int(rng.integers(0, 1 << 16))     # whitening key
            bit = int(rng.integers(0, 16))
            c = sbox_layer(x) ^ k4
            c_faulty = sbox_layer(x ^ (1 << bit)) ^ k4
            nibble = bit // 4
            cands = last_round_candidates(c, c_faulty)[nibble]
            assert (k4 >> (4 * nibble)) & 0xF in cands
            assert len(cands) < 16

    def test_real_fault_candidates_are_few(self):
        rng = np.random.default_rng(2)
        sizes = []
        for _ in range(100):
            x = int(rng.integers(0, 1 << 16))
            k4 = int(rng.integers(0, 1 << 16))
            bit = int(rng.integers(0, 16))
            c = sbox_layer(x) ^ k4
            c_faulty = sbox_layer(x ^ (1 << bit)) ^ k4
            cands = last_round_candidates(c, c_faulty)[bit // 4]
            sizes.append(len(cands))
        assert np.mean(sizes) < 8


class TestDfaCampaign:
    @pytest.fixture(scope="class")
    def campaign(self):
        return DfaCampaign(random_keys(7))

    def test_validation(self):
        with pytest.raises(EvaluationError):
            DfaCampaign([1, 2, 3])
        campaign = DfaCampaign(random_keys())
        with pytest.raises(EvaluationError):
            campaign.evaluate(0)
        with pytest.raises(EvaluationError):
            campaign.run_one(0, 99, 0, 2.0, np.random.default_rng(0))

    def test_masked_injection_leaves_ciphertext_golden(self, campaign):
        rng = np.random.default_rng(3)
        keys = campaign.round_keys
        pt = 0x5A5A
        golden = encrypt_reference(pt, keys)
        # a spot far from everything: pick an input node's coordinates are
        # excluded from the universe, so force masked by zero-radius-ish
        # injection on a constant-adjacent gate many times
        masked_seen = False
        for _ in range(40):
            centre = int(campaign.universe[rng.integers(0, len(campaign.universe))])
            masked, ct = campaign.run_one(pt, 1, centre, 2.0, rng)
            if masked:
                masked_seen = True
                assert ct == golden
        assert masked_seen

    def test_campaign_metrics_consistent(self, campaign):
        report = campaign.evaluate(300, seed=11)
        assert report.n_samples == 300
        assert 0.0 <= report.ssf <= 1.0
        assert 0.0 <= report.masked_fraction <= 1.0
        by_round = report.usefulness_by_round()
        assert set(by_round) <= {0, 1, 2, 3}

    def test_key_recovery_on_aimed_campaign(self):
        """Aiming at the state register recovers the whitening key."""
        keys = random_keys(13)
        campaign = DfaCampaign(keys)
        campaign.universe = [
            campaign.netlist.register_dff("state", b).nid for b in range(16)
        ]
        report = campaign.evaluate(2500, seed=5)
        assert report.key_recovered
        assert report.recovered_key == keys[-1]
        assert report.injections_to_recovery < 2500

    def test_deterministic_given_seed(self, campaign):
        a = campaign.evaluate(120, seed=21)
        b = campaign.evaluate(120, seed=21)
        assert a.ssf == b.ssf
        assert [r.faulty for r in a.records] == [r.faulty for r in b.records]
