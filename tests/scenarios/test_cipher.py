"""Tests for the SPN cipher block (behavioural + gate level)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.gatesim import LogicEvaluator
from repro.scenarios.cipher import (
    N_KEYS,
    N_ROUNDS,
    SBOX,
    SBOX_INV,
    SpnCipher,
    build_cipher_netlist,
    encrypt_reference,
    inv_sbox_layer,
    permute,
    sbox_layer,
)

IDLE = {"start": 0, "pt": 0, "rk_we": 0, "rk_index": 0, "rk_data": 0}


def random_keys(seed=0):
    rng = np.random.default_rng(seed)
    return [int(rng.integers(0, 1 << 16)) for _ in range(N_KEYS)]


class TestPrimitives:
    def test_sbox_is_a_permutation(self):
        assert sorted(SBOX) == list(range(16))
        for x in range(16):
            assert SBOX_INV[SBOX[x]] == x

    @given(st.integers(0, 0xFFFF))
    def test_sbox_layer_invertible(self, state):
        assert inv_sbox_layer(sbox_layer(state)) == state

    @given(st.integers(0, 0xFFFF))
    def test_permutation_is_bijective(self, state):
        # applying the permutation 15 times on the 15-cycle returns home
        # (bit 15 is fixed); simpler: distinct inputs stay distinct
        assert bin(permute(state)).count("1") == bin(state).count("1")

    def test_encrypt_reference_key_sensitivity(self):
        keys = random_keys()
        other = list(keys)
        other[2] ^= 1
        assert encrypt_reference(0x1234, keys) != encrypt_reference(0x1234, other)

    def test_reference_validates_key_count(self):
        with pytest.raises(SimulationError):
            encrypt_reference(0, [0, 1, 2])


class TestBehavioural:
    def test_matches_reference(self):
        keys = random_keys(1)
        cipher = SpnCipher()
        cipher.load_keys(keys)
        rng = np.random.default_rng(2)
        for _ in range(30):
            pt = int(rng.integers(0, 1 << 16))
            cipher.reset()
            cipher.load_keys(keys)
            assert cipher.encrypt(pt) == encrypt_reference(pt, keys)

    def test_takes_exactly_n_rounds(self):
        cipher = SpnCipher()
        cipher.load_keys(random_keys())
        cipher.step(start=1, pt=0xABCD)
        for _ in range(N_ROUNDS - 1):
            cipher.step()
            assert not cipher.done
        cipher.step()
        assert cipher.done


class TestGateLevel:
    @pytest.fixture(scope="class")
    def netlist(self):
        return build_cipher_netlist()

    def test_scale(self, netlist):
        stats = netlist.stats()
        assert stats["dff"] == 16 + 3 + 2 + 16 * N_KEYS
        assert stats["combinational"] > 400

    def test_matches_reference_end_to_end(self, netlist):
        keys = random_keys(3)
        ev = LogicEvaluator(netlist)
        state = {reg: 0 for reg in netlist.register_widths()}
        for i, key in enumerate(keys):
            _, state = ev.step(
                {**IDLE, "rk_we": 1, "rk_index": i, "rk_data": key}, state
            )
        rng = np.random.default_rng(4)
        for _ in range(10):
            pt = int(rng.integers(0, 1 << 16))
            _, state = ev.step({**IDLE, "start": 1, "pt": pt}, state)
            for _ in range(N_ROUNDS):
                outs, state = ev.step(IDLE, state)
            outs, _ = ev.step(IDLE, state)
            assert outs["done"] == 1
            assert outs["ct"] == encrypt_reference(pt, keys)

    @given(
        state=st.integers(0, 0xFFFF),
        round_ctr=st.integers(0, 7),
        phase=st.integers(0, 3),
        start=st.integers(0, 1),
        pt=st.integers(0, 0xFFFF),
        key_seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_behavioural_matches_netlist_any_state(
        self, netlist, state, round_ctr, phase, start, pt, key_seed
    ):
        """Bit-exactness holds even for fault-reachable (corrupt) control
        states — required for the cross-level hand-off under injection."""
        ev = LogicEvaluator(netlist)
        keys = random_keys(key_seed)
        regs = {
            "state": state,
            "round": round_ctr,
            "phase": phase,
            **{f"rk{i}": keys[i] for i in range(N_KEYS)},
        }
        cipher = SpnCipher()
        cipher.regs = dict(regs)
        _, nxt = ev.step({**IDLE, "start": start, "pt": pt}, regs)
        cipher.step(start=start, pt=pt)
        assert cipher.regs == nxt
