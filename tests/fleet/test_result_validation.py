"""Coordinator hygiene: malformed result payloads must never corrupt or
hang a run, and departed workers must not accumulate forever.

Regression context: ``FleetScheduler.accept`` used to retire the lease
(``ledger.complete``) *before* decoding the posted records — a payload
with undecodable records or a wrong record count then left the chunk
done-but-unconsumed, so ``FleetScheduler.run`` waited for a result that
would never arrive and the job hung until a coordinator restart.
"""

import time

import pytest

from repro.errors import ServiceError
from repro.fleet.coordinator import FleetCoordinator
from repro.obs.fleet_metrics import FLEET_WORKER_RATE, update_worker_rate
from repro.service import ServiceClient

from tests.fleet.helpers import fleet_server, wait_terminal, workers
from tests.fleet.test_lease_expiry import (
    SPEC,
    evaluate_grant,
    lease_until_granted,
)


class TestMalformedResults:
    def test_wrong_record_count_is_400_and_chunk_not_stranded(self, tmp_path):
        """A truncated payload gets a 400, the chunk stays leased (not
        done), and honest workers still finish the whole campaign."""
        with fleet_server(tmp_path, lease_ttl_s=0.4) as server:
            client = ServiceClient(server.url)
            response = client.submit(SPEC)
            grant = lease_until_granted(client, "liar")
            payload = evaluate_grant(grant)
            truncated = dict(payload)
            truncated["records"] = payload["records"][:-1]
            with pytest.raises(ServiceError) as err:
                client.post_chunk(truncated)
            assert err.value.status == 400
            # The chunk was not marked done: the full plan completes.
            with workers(server.url, 2):
                wait_terminal(server.service, response["job_id"])
            job = server.service.get_job(response["job_id"])
            assert job.state == "done"
            result = server.service.job_result(job.job_id)
            assert result["n_samples"] == 75

    def test_undecodable_records_are_400_and_chunk_not_stranded(
        self, tmp_path
    ):
        with fleet_server(tmp_path, lease_ttl_s=0.4) as server:
            client = ServiceClient(server.url)
            response = client.submit(SPEC)
            grant = lease_until_granted(client, "liar")
            payload = evaluate_grant(grant)
            garbage = dict(payload)
            garbage["records"] = [{"garbage": True}] * len(
                payload["records"]
            )
            with pytest.raises(ServiceError) as err:
                client.post_chunk(garbage)
            assert err.value.status == 400
            with workers(server.url, 2):
                wait_terminal(server.service, response["job_id"])
            job = server.service.get_job(response["job_id"])
            assert job.state == "done"
            result = server.service.job_result(job.job_id)
            assert result["n_samples"] == 75

    def test_honest_retry_on_same_lease_still_accepted(self, tmp_path):
        """A 400 leaves the lease live: the same worker can re-post a
        correct payload on it without waiting for expiry."""
        with fleet_server(tmp_path, lease_ttl_s=5.0) as server:
            client = ServiceClient(server.url)
            client.submit(SPEC)
            grant = lease_until_granted(client, "flaky")
            payload = evaluate_grant(grant)
            truncated = dict(payload)
            truncated["records"] = payload["records"][:-1]
            with pytest.raises(ServiceError):
                client.post_chunk(truncated)
            outcome = client.post_chunk(payload)
            assert outcome["accepted"] is True

    def test_telemetry_failure_after_lease_retire_cannot_hang_the_run(
        self, tmp_path, monkeypatch
    ):
        """Telemetry folds in *after* the lease is retired, so a bug
        anywhere in the assembler must degrade to a warning — a raise
        there would strand the chunk done-but-unconsumed and hang
        ``run`` exactly like the pre-validation bug above."""
        from repro.fleet.telemetry import RunTelemetry

        def boom(self, worker, telemetry):
            raise RuntimeError("poisoned assembler")

        monkeypatch.setattr(RunTelemetry, "ingest", boom)
        with fleet_server(tmp_path) as server:
            client = ServiceClient(server.url)
            response = client.submit(SPEC)
            with workers(server.url, 2):
                wait_terminal(server.service, response["job_id"])
            job = server.service.get_job(response["job_id"])
            assert job.state == "done"
            result = server.service.job_result(job.job_id)
            assert result["n_samples"] == 75


class TestWorkerEviction:
    def test_silent_workers_evicted_with_their_gauge_series(self):
        coordinator = FleetCoordinator()
        coordinator.worker_eviction_s = 0.05
        with coordinator._lock:
            coordinator._touch("ghost")
        update_worker_rate(coordinator.metrics, "ghost", 123.0)
        assert (
            coordinator.metrics.value(FLEET_WORKER_RATE, worker="ghost")
            == 123.0
        )
        time.sleep(0.1)
        with coordinator._lock:
            coordinator._touch("alive")
        coordinator.sweep()
        assert "ghost" not in coordinator._workers
        assert "alive" in coordinator._workers
        assert (
            coordinator.metrics.value(FLEET_WORKER_RATE, worker="ghost")
            is None
        )

    def test_recently_seen_workers_survive_sweep(self):
        coordinator = FleetCoordinator()
        with coordinator._lock:
            coordinator._touch("steady")
        update_worker_rate(coordinator.metrics, "steady", 10.0)
        coordinator.sweep()
        assert "steady" in coordinator._workers
        assert (
            coordinator.metrics.value(FLEET_WORKER_RATE, worker="steady")
            == 10.0
        )
