"""Lease-expiry edge cases over the real HTTP protocol, plus the
coordinator-SIGKILL crash-resume test (fleet mirror of the PR 3/4
crash suites).

Covered here:

* a worker dies mid-chunk → its lease expires and the chunk is
  re-issued (and the estimate is unaffected);
* a worker completes a chunk *after* its lease expired → the late
  result is discarded, never double-counted;
* the coordinator is SIGKILLed with live leases outstanding → a fresh
  coordinator over the same directories re-adopts the ledger, the
  surviving workers reattach, and the finished run is bit-identical to
  a single-node run that was never interrupted.
"""

import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign import CampaignRunner, CampaignSpec, StoppingConfig
from repro.campaign.scheduler import Chunk, _run_chunk
from repro.campaign.store import record_to_dict
from repro.service import ServiceClient

from tests.campaign.stubs import BernoulliEngine, StubSampler
from tests.fleet.helpers import (
    chunk_log_dicts,
    det_metric_view,
    fleet_server,
    slow_stub_factory,
    wait_terminal,
    workers,
)

SPEC = CampaignSpec(
    seed=77, chunk_size=25, stopping=StoppingConfig(n_samples=75)
)

#: Spec for the SIGKILL test: enough chunks that the kill lands mid-run.
FLEET_SPEC = CampaignSpec(
    seed=101, chunk_size=40, stopping=StoppingConfig(n_samples=1600)
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent


def lease_until_granted(client, worker, timeout_s=30.0):
    deadline = time.monotonic() + timeout_s
    grant = client.lease(worker)
    while grant.get("idle") and time.monotonic() < deadline:
        time.sleep(0.05)
        grant = client.lease(worker)
    assert not grant.get("idle"), "never got a lease"
    return grant


def evaluate_grant(grant):
    """Do exactly what a worker would: evaluate the leased chunk."""
    chunk = Chunk(int(grant["chunk"]), int(grant["n_samples"]))
    result = _run_chunk(
        BernoulliEngine(p=0.3), StubSampler(), grant["seed"], chunk
    )
    return {
        "lease_id": grant["lease_id"],
        "worker": grant["worker"],
        "chunk": result.index,
        "records": [record_to_dict(r) for r in result.records],
        "metrics": result.metrics,
        "duration_s": 0.1,
    }


class TestLateResults:
    def test_late_result_discarded_not_double_counted(self, tmp_path):
        """The slowpoke's result lands after its lease expired and before
        anyone re-ran the chunk: rejected, chunk re-issued, final sample
        count exact."""
        with fleet_server(tmp_path, lease_ttl_s=0.4) as server:
            client = ServiceClient(server.url)
            response = client.submit(SPEC)
            grant = lease_until_granted(client, "slowpoke")
            payload = evaluate_grant(grant)
            time.sleep(1.2)  # TTL is 0.4s: the lease is long dead
            outcome = client.post_chunk(payload)
            assert outcome["accepted"] is False
            assert "expired" in outcome["reason"] or "unknown" in (
                outcome["reason"]
            )
            with workers(server.url, 2):
                wait_terminal(server.service, response["job_id"])
            job = server.service.get_job(response["job_id"])
            assert job.state == "done"
            result = server.service.job_result(job.job_id)
            # Exactly the spec's samples: the discarded result did not
            # also get merged.
            assert result["n_samples"] == 75
            log = chunk_log_dicts(server.service.runs_dir, job.run_id)
            assert [index for index, _ in log] == [0, 1, 2]
            text = client.metrics_text()
            assert "fleet_late_results_discarded_total 1" in text

    def test_result_after_chunk_completed_elsewhere_rejected(self, tmp_path):
        """The chunk was re-leased and finished by another worker while
        the slowpoke evaluated; its eventual post must bounce."""
        with fleet_server(tmp_path, lease_ttl_s=0.4) as server:
            client = ServiceClient(server.url)
            response = client.submit(SPEC)
            grant = lease_until_granted(client, "slowpoke")
            payload = evaluate_grant(grant)
            with workers(server.url, 2):
                wait_terminal(server.service, response["job_id"])
            job = server.service.get_job(response["job_id"])
            result_before = server.service.job_result(job.job_id)
            outcome = client.post_chunk(payload)
            assert outcome["accepted"] is False
            # Nothing about the finished run changed.
            assert server.service.job_result(job.job_id) == result_before

    def test_dead_worker_chunk_is_reissued(self, tmp_path):
        """Worker dies mid-chunk (lease taken, never completed): the
        sweeper returns the chunk to the pool within one TTL."""
        with fleet_server(tmp_path, lease_ttl_s=0.3) as server:
            client = ServiceClient(server.url)
            response = client.submit(SPEC)
            grant = lease_until_granted(client, "victim")
            index = grant["chunk"]
            with workers(server.url, 1):
                wait_terminal(server.service, response["job_id"])
            job = server.service.get_job(response["job_id"])
            assert job.state == "done"
            # The victim's chunk is in the final log exactly once, via
            # the surviving worker.
            log = chunk_log_dicts(server.service.runs_dir, job.run_id)
            assert [i for i, _ in log].count(index) == 1
            text = client.metrics_text()
            assert "fleet_chunks_reassigned_total 1" in text


CHILD_SCRIPT = """
import pathlib, sys, time
sys.path.insert(0, {src!r})
sys.path.insert(0, {root!r})
from repro.service import (
    DISPATCH_FLEET, EvaluationService, ServiceServer,
)
from tests.fleet.test_lease_expiry import FLEET_SPEC

service = EvaluationService(
    {runs_dir!r},
    dispatch=DISPATCH_FLEET,
    lease_ttl_s=1.0,
    checkpoint_every=2,
)
service.fleet.sweep_interval_s = 0.1
server = ServiceServer(service, port={port})
if {submit}:
    job, cache_hit = service.submit(FLEET_SPEC)
    assert not cache_hit
server.start()
pathlib.Path({url_file!r}).write_text(server.url)
while True:
    time.sleep(3600)
"""


@pytest.mark.skipif(
    not hasattr(signal, "SIGKILL"), reason="needs POSIX SIGKILL"
)
class TestCoordinatorCrash:
    def _spawn_coordinator(self, runs_dir, url_file, port, submit):
        script = CHILD_SCRIPT.format(
            src=str(REPO_ROOT / "src"),
            root=str(REPO_ROOT),
            runs_dir=str(runs_dir),
            port=port,
            submit=submit,
            url_file=str(url_file),
        )
        child = subprocess.Popen([sys.executable, "-c", script])
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if url_file.exists() and url_file.read_text().startswith("http"):
                return child, url_file.read_text().strip()
            if child.poll() is not None:
                raise AssertionError("coordinator child died on startup")
            time.sleep(0.05)
        raise AssertionError("coordinator never published its URL")

    def test_sigkill_coordinator_with_live_leases_resumes_bit_identical(
        self, tmp_path
    ):
        baseline = CampaignRunner(
            FLEET_SPEC,
            engine=BernoulliEngine(p=0.3),
            sampler=StubSampler(),
            n_workers=1,
        ).run()

        runs_dir = tmp_path / "runs"
        child, url = self._spawn_coordinator(
            runs_dir, tmp_path / "url1.txt", port=0, submit=True
        )
        port = int(url.rsplit(":", 1)[1])
        try:
            with workers(
                url, 2, engine_factory=slow_stub_factory(0.15), poll_s=0.1
            ):
                # Let the run get properly underway (chunks logged,
                # leases live), then SIGKILL the coordinator.
                run_dirs = []
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline and not run_dirs:
                    if runs_dir.exists():
                        run_dirs = [
                            p for p in runs_dir.iterdir()
                            if (p / "spec.json").exists()
                        ]
                    time.sleep(0.05)
                assert run_dirs, "coordinator never created a run"
                run_path = run_dirs[0]
                log = run_path / "log.jsonl"
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    if log.exists() and len(
                        [l for l in log.read_text().splitlines() if l]
                    ) >= 2:
                        break
                    time.sleep(0.05)
                os.kill(child.pid, signal.SIGKILL)
                child.wait(timeout=30)
                assert child.returncode == -signal.SIGKILL
                assert (run_path / "ledger.jsonl").exists()

                # Mid-run: some chunks consumed, not all.
                logged = [
                    l for l in log.read_text().splitlines() if l
                ]
                assert 0 < len(logged) < len(FLEET_SPEC.chunk_sizes())

                # Restart over the same directories and port; the
                # workers' retry loops reattach on their own.
                child2, url2 = self._spawn_coordinator(
                    runs_dir, tmp_path / "url2.txt", port=port,
                    submit=False,
                )
                try:
                    client = ServiceClient(url2, retries=5)
                    jobs = client.list_jobs()["jobs"]
                    assert len(jobs) == 1
                    job_id = jobs[0]["job_id"]
                    status = client.wait(job_id, timeout_s=180)
                    assert status["state"] == "done"
                    result = client.result(job_id)
                finally:
                    child2.terminate()
                    child2.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()

        # Bit-identical to the never-interrupted single-node run.
        assert result["n_samples"] == baseline.n_samples
        assert result["ssf"] == baseline.ssf
        # Chunk log: contiguous prefix covering the whole plan.
        indices = [i for i, _ in chunk_log_dicts(runs_dir, run_path.name)]
        assert indices == list(range(len(FLEET_SPEC.chunk_sizes())))
        assert det_metric_view(runs_dir, run_path.name)  # exported + merged
