"""EventBus semantics: sequencing, ring buffer, blocking + async waits."""

import asyncio
import threading
import time

from repro.fleet import EventBus
from repro.fleet.events import EVENT_END


class TestPublishRead:
    def test_sequence_numbers_are_per_topic_and_monotonic(self):
        bus = EventBus()
        assert bus.publish("a", {"n": 0}) == 0
        assert bus.publish("a", {"n": 1}) == 1
        assert bus.publish("b", {"n": 0}) == 0
        assert bus.last_seq("a") == 2
        assert bus.last_seq("missing") == 0

    def test_events_after_is_inclusive_and_filtered(self):
        bus = EventBus()
        for n in range(5):
            bus.publish("t", {"n": n})
        got = bus.events_after("t", 3)
        assert [(seq, e["n"]) for seq, e in got] == [(3, 3), (4, 4)]
        assert bus.events_after("t", 99) == []
        assert bus.events_after("other", 0) == []

    def test_ring_buffer_drops_oldest(self):
        bus = EventBus(history=3)
        for n in range(10):
            bus.publish("t", {"n": n})
        got = bus.events_after("t", 0)
        # Only the last 3 survive, with their original sequence numbers.
        assert [seq for seq, _ in got] == [7, 8, 9]

    def test_published_event_is_copied(self):
        bus = EventBus()
        event = {"n": 1}
        bus.publish("t", event)
        event["n"] = 999
        assert bus.events_after("t", 0)[0][1]["n"] == 1


class TestBlockingWait:
    def test_wait_returns_immediately_when_buffered(self):
        bus = EventBus()
        bus.publish("t", {"n": 0})
        start = time.monotonic()
        got = bus.wait("t", 0, timeout_s=5)
        assert time.monotonic() - start < 1
        assert len(got) == 1

    def test_wait_times_out_empty(self):
        bus = EventBus()
        assert bus.wait("t", 0, timeout_s=0.05) == []

    def test_wait_woken_by_cross_thread_publish(self):
        bus = EventBus()
        def publish_later():
            time.sleep(0.05)
            bus.publish("t", {"n": 1})
        threading.Thread(target=publish_later).start()
        got = bus.wait("t", 0, timeout_s=5)
        assert [e["n"] for _, e in got] == [1]

    def test_wait_not_cut_short_by_other_topic_publishes(self):
        """publish() notifies every waiter; a waiter on topic A must
        keep waiting through topic-B traffic instead of returning empty
        on the first wakeup."""
        bus = EventBus()
        stop = threading.Event()
        def noisy_neighbor():
            while not stop.is_set():
                bus.publish("other", {"n": 0})
                time.sleep(0.01)
        def publish_later():
            time.sleep(0.2)
            bus.publish("t", {"n": 1})
        noisy = threading.Thread(target=noisy_neighbor)
        noisy.start()
        threading.Thread(target=publish_later).start()
        try:
            got = bus.wait("t", 0, timeout_s=5)
        finally:
            stop.set()
            noisy.join()
        assert [e["n"] for _, e in got] == [1]

    def test_wait_timeout_honored_despite_other_topic_publishes(self):
        bus = EventBus()
        stop = threading.Event()
        def noisy_neighbor():
            while not stop.is_set():
                bus.publish("other", {"n": 0})
                time.sleep(0.01)
        noisy = threading.Thread(target=noisy_neighbor)
        noisy.start()
        try:
            start = time.monotonic()
            got = bus.wait("t", 0, timeout_s=0.3)
            elapsed = time.monotonic() - start
        finally:
            stop.set()
            noisy.join()
        assert got == []
        assert elapsed >= 0.25


class TestAsyncWait:
    def test_wait_async_woken_from_publisher_thread(self):
        bus = EventBus()

        async def scenario():
            loop = asyncio.get_event_loop()
            def publish_later():
                time.sleep(0.05)
                bus.publish("t", {"type": EVENT_END})
            loop.run_in_executor(None, publish_later)
            return await bus.wait_async("t", 0, timeout_s=5)

        got = asyncio.new_event_loop().run_until_complete(scenario())
        assert [e["type"] for _, e in got] == [EVENT_END]

    def test_wait_async_timeout(self):
        bus = EventBus()

        async def scenario():
            return await bus.wait_async("t", 0, timeout_s=0.05)

        got = asyncio.new_event_loop().run_until_complete(scenario())
        assert got == []
