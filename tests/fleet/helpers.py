"""Shared fixtures for fleet tests: a fleet-mode service over HTTP plus
in-process worker threads driving real :class:`FleetWorker` loops."""

from __future__ import annotations

import contextlib
import threading
import time

from repro.campaign.store import RunStore, record_to_dict
from repro.fleet import FleetWorker
from repro.obs.metrics import deterministic_view
from repro.service import (
    DISPATCH_FLEET,
    EvaluationService,
    ServiceClient,
    ServiceServer,
)

from tests.campaign.stubs import BernoulliEngine, StubSampler


def stub_factory(spec):
    return BernoulliEngine(p=0.3), StubSampler()


def slow_stub_factory(delay_s):
    def factory(spec):
        return BernoulliEngine(p=0.3, delay_s=delay_s), StubSampler()

    return factory


class WorkerHandle:
    """A FleetWorker running on a daemon thread, stoppable from tests."""

    def __init__(self, url, worker_id, engine_factory=stub_factory,
                 poll_s=0.05, max_chunks=None):
        self.worker = FleetWorker(
            ServiceClient(url, timeout_s=10),
            worker_id=worker_id,
            poll_s=poll_s,
            engine_factory=engine_factory,
            max_chunks=max_chunks,
        )
        self.thread = threading.Thread(
            target=self.worker.run, name=f"test-{worker_id}", daemon=True
        )

    def start(self):
        self.thread.start()
        return self

    def stop(self, timeout_s=10.0):
        self.worker.stop()
        self.thread.join(timeout=timeout_s)


@contextlib.contextmanager
def fleet_server(tmp_path, lease_ttl_s=5.0, checkpoint_every=2,
                 name="fleet-runs"):
    service = EvaluationService(
        tmp_path / name,
        dispatch=DISPATCH_FLEET,
        lease_ttl_s=lease_ttl_s,
        checkpoint_every=checkpoint_every,
    )
    # Fast expiry detection in tests.
    service.fleet.sweep_interval_s = 0.1
    server = ServiceServer(service, port=0)
    server.start()
    try:
        yield server
    finally:
        server.stop(cancel_running=True)


@contextlib.contextmanager
def workers(url, n, engine_factory=stub_factory, poll_s=0.05):
    handles = [
        WorkerHandle(
            url, f"w{i}", engine_factory=engine_factory, poll_s=poll_s
        ).start()
        for i in range(n)
    ]
    try:
        yield handles
    finally:
        for handle in handles:
            handle.stop()


def run_local_baseline(tmp_path, spec, name="local-runs"):
    """The single-node reference: same spec, in-process dispatch."""
    service = EvaluationService(
        tmp_path / name, engine_factory=stub_factory, checkpoint_every=2
    )
    job, cache_hit = service.submit(spec)
    assert not cache_hit
    service.start()
    try:
        wait_terminal(service, job.job_id)
    finally:
        service.stop()
    assert service.get_job(job.job_id).state == "done"
    return service, job


def wait_terminal(service, job_id, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if service.get_job(job_id).terminal:
            return
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never finished")


def chunk_log_dicts(runs_dir, run_id):
    """The run's consumed chunk log as exact JSON record dicts."""
    store = RunStore(runs_dir / run_id)
    return [
        (entry.index, [record_to_dict(r) for r in entry.records])
        for entry in store.replay_chunks()
    ]


def det_metric_view(runs_dir, run_id):
    """Deterministic subset of the run's exported merged metrics."""
    return deterministic_view(RunStore(runs_dir / run_id).read_metrics())


def assert_bit_identical(local_service, local_job, fleet_service, fleet_job):
    """SSF, records, and deterministic metrics equal across dispatches."""
    local = local_service.job_result(local_job.job_id)
    fleet = fleet_service.job_result(fleet_job.job_id)
    assert fleet["ssf"] == local["ssf"]
    assert fleet["n_samples"] == local["n_samples"]
    assert fleet["n_success"] == local["n_success"]
    assert fleet["ci_low"] == local["ci_low"]
    assert fleet["ci_high"] == local["ci_high"]
    assert chunk_log_dicts(
        fleet_service.runs_dir, fleet_job.run_id
    ) == chunk_log_dicts(local_service.runs_dir, local_job.run_id)
    assert det_metric_view(
        fleet_service.runs_dir, fleet_job.run_id
    ) == det_metric_view(local_service.runs_dir, local_job.run_id)
