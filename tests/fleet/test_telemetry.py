"""Fleet telemetry: trace propagation, shipped spans/metrics/logs, the
merged Chrome trace, events.jsonl, SLO quantiles, and stragglers.

The load-bearing invariant mirrors the e2e suite: telemetry shipping is
*on by default* in every fleet test, so the bit-identical guarantee is
continuously exercised with telemetry flowing.  This module checks the
observability surfaces themselves — that the data shipped out-of-band
actually lands where operators look for it, and that turning it off is
honoured end to end.
"""

import json

from repro.campaign import CampaignSpec, StoppingConfig
from repro.campaign.store import RunStore
from repro.fleet.coordinator import FleetCoordinator
from repro.fleet.events import EventBus
from repro.obs import MetricsRegistry, reset_warn_once
from repro.obs.fleet_metrics import FLEET_STRAGGLERS
from repro.service import ServiceClient

from tests.fleet.helpers import (
    assert_bit_identical,
    fleet_server,
    run_local_baseline,
    wait_terminal,
    workers,
)

SPEC = CampaignSpec(
    seed=41, chunk_size=25, stopping=StoppingConfig(n_samples=150)
)


def run_fleet(server, spec=SPEC, n_workers=2):
    client = ServiceClient(server.url)
    response = client.submit(spec)
    with workers(server.url, n_workers):
        wait_terminal(server.service, response["job_id"])
    job = server.service.get_job(response["job_id"])
    assert job.state == "done"
    return job


def run_store(server, job):
    return RunStore(server.service.runs_dir / job.run_id)


def trace_lanes(trace):
    """Map synthetic pid -> lane name from the trace's M metadata."""
    return {
        event["pid"]: event["args"]["name"]
        for event in trace["traceEvents"]
        if event["ph"] == "M" and event["name"] == "process_name"
    }


class TestMergedTrace:
    def test_one_lane_per_worker_covering_the_chunk_lifecycle(
        self, tmp_path
    ):
        with fleet_server(tmp_path) as server:
            job = run_fleet(server, n_workers=3)
            trace = run_store(server, job).read_fleet_trace()
        lanes = trace_lanes(trace)
        worker_lanes = {
            pid for pid, name in lanes.items() if name.startswith("worker ")
        }
        assert len(worker_lanes) >= 2  # ≥2 workers contributed spans
        span_names = {
            event["name"]
            for event in trace["traceEvents"]
            if event["ph"] == "X" and event["pid"] in worker_lanes
        }
        assert {"chunk.evaluate", "chunk.post"} <= span_names
        # Every span is correlated: run + chunk + lease + trace ids.
        for event in trace["traceEvents"]:
            if event["ph"] == "X" and event["name"] == "chunk.evaluate":
                assert event["args"]["trace_id"] == (
                    trace["otherData"]["trace_id"]
                )
                assert "chunk" in event["args"]
                assert "lease_id" in event["args"]

    def test_lease_annotations_pin_to_worker_lanes(self, tmp_path):
        with fleet_server(tmp_path) as server:
            job = run_fleet(server, n_workers=2)
            trace = run_store(server, job).read_fleet_trace()
        instants = [
            event for event in trace["traceEvents"] if event["ph"] == "i"
        ]
        names = {event["name"] for event in instants}
        assert {"lease.grant", "chunk.accepted"} <= names
        lanes = trace_lanes(trace)
        for event in instants:
            assert event["pid"] in lanes

    def test_spec_gate_disables_shipping_but_not_the_result(
        self, tmp_path
    ):
        """``telemetry=False`` in the spec: same estimate, same records,
        but no worker span lanes and no shipped-span accounting."""
        spec = CampaignSpec(
            seed=41, chunk_size=25, telemetry=False,
            stopping=StoppingConfig(n_samples=150),
        )
        local_service, local_job = run_local_baseline(tmp_path, spec)
        with fleet_server(tmp_path) as server:
            job = run_fleet(server, spec=spec, n_workers=2)
            assert_bit_identical(
                local_service, local_job, server.service, job
            )
            trace = run_store(server, job).read_fleet_trace()
            metrics_text = ServiceClient(server.url).metrics_text()
        assert not any(
            name.startswith("worker ")
            for name in trace_lanes(trace).values()
        )
        assert "fleet_telemetry_spans_total" not in metrics_text


class TestEventsJsonl:
    def test_run_lifecycle_is_recorded_with_one_trace_id(self, tmp_path):
        with fleet_server(tmp_path) as server:
            job = run_fleet(server, n_workers=2)
            events = run_store(server, job).read_events()
        kinds = [event["type"] for event in events]
        assert kinds[0] == "run_started"
        assert kinds[-1] == "run_closed"
        assert "lease_granted" in kinds
        assert "chunk_accepted" in kinds
        trace_ids = {event["trace_id"] for event in events}
        assert len(trace_ids) == 1
        # 150 samples / 25 per chunk = 6 chunks, each granted+accepted.
        assert kinds.count("chunk_accepted") == 6
        for event in events:
            if event["type"] == "lease_granted":
                assert event["queue_wait_s"] >= 0
            assert event["t"] > 0

    def test_expired_lease_lands_in_events_and_trace(self, tmp_path):
        """The kill-a-worker scenario is visible end to end: the expiry
        and the re-issued grant are in events.jsonl and the merged
        trace, and the re-run chunk's spans come from the surviving
        workers."""
        import time

        with fleet_server(tmp_path, lease_ttl_s=0.4) as server:
            client = ServiceClient(server.url)
            response = client.submit(SPEC)
            deadline = time.monotonic() + 30
            grant = client.lease("doomed")
            while grant.get("idle") and time.monotonic() < deadline:
                time.sleep(0.05)
                grant = client.lease("doomed")
            assert not grant.get("idle"), "never got a lease"
            assert grant["trace_id"], "grants must carry the trace id"
            with workers(server.url, 2):
                wait_terminal(server.service, response["job_id"])
            job = server.service.get_job(response["job_id"])
            assert job.state == "done"
            store = run_store(server, job)
            events = store.read_events()
            trace = store.read_fleet_trace()
        kinds = {event["type"] for event in events}
        assert "lease_expired" in kinds
        reissues = [
            event for event in events
            if event["type"] == "lease_granted" and event.get("reassigned")
        ]
        assert reissues, "the doomed chunk was re-granted"
        instant_names = {
            event["name"]
            for event in trace["traceEvents"]
            if event["ph"] == "i"
        }
        assert {"lease.expired", "lease.reissue"} <= instant_names
        # The dead worker shipped nothing: every span lane belongs to a
        # live worker, yet all 6 chunks' evaluate spans are present.
        lanes = trace_lanes(trace)
        assert set(lanes.values()) <= {"worker w0", "worker w1"}
        evaluated = {
            event["args"]["chunk"]
            for event in trace["traceEvents"]
            if event["ph"] == "X" and event["name"] == "chunk.evaluate"
        }
        assert evaluated == set(range(6))

    def test_worker_log_records_are_folded_in(self, tmp_path):
        with fleet_server(tmp_path) as server:
            job = run_fleet(server, n_workers=2)
            events = run_store(server, job).read_events()
        logs = [event for event in events if event["type"] == "log"]
        assert logs, "workers ship structured log records"
        for record in logs:
            assert record["worker"] in {"w0", "w1"}
            assert "message" in record
            assert "run_id" in record  # correlation context survived

    def test_shipped_log_worker_key_cannot_shadow_the_leaseholder(
        self, tmp_path
    ):
        """Worker log records carry a bound ``worker`` context key; the
        coordinator attributes the event to the *leaseholder* it heard
        from, never to whatever the record claims (regression: the
        collision used to raise and 500 every chunk post)."""
        from repro.fleet.telemetry import RunTelemetry

        store = RunStore(tmp_path / "run")
        assembler = RunTelemetry(store, "tid")
        assembler.ingest(
            "w0",
            {
                "logs": [
                    {
                        "type": "log",
                        "worker": "imposter",
                        "message": "hello",
                    }
                ]
            },
        )
        events = store.read_events()
        assert len(events) == 1
        assert events[0]["worker"] == "w0"
        assert events[0]["message"] == "hello"

    def test_events_file_tolerates_torn_tail(self, tmp_path):
        store = RunStore(tmp_path / "run")
        store.append_event({"type": "run_started", "t": 1.0})
        with (tmp_path / "run" / "events.jsonl").open("a") as handle:
            handle.write('{"type": "torn')
        events = store.read_events()
        assert [event["type"] for event in events] == ["run_started"]


class TestSloMetrics:
    def test_quantiles_exposed_on_the_metrics_endpoint(self, tmp_path):
        with fleet_server(tmp_path) as server:
            run_fleet(server, n_workers=2)
            text = ServiceClient(server.url).metrics_text()
        for series in (
            'fleet_chunk_roundtrip_seconds_p50{worker="w0"}',
            'fleet_chunk_roundtrip_seconds_p99{worker="w0"}',
            'fleet_lease_wait_seconds_p50{worker="w0"}',
            "fleet_queue_wait_seconds_p50",
            "fleet_queue_wait_seconds_p99",
            "fleet_telemetry_spans_total",
        ):
            assert series in text, series

    def test_shipped_worker_metrics_reach_the_run_export(self, tmp_path):
        """Worker-side counters (runtime cache hits/misses) merge into
        the run's metrics.jsonl — flagged non-deterministic, so the
        parity-checked deterministic view never sees them."""
        with fleet_server(tmp_path) as server:
            job = run_fleet(server, n_workers=2)
            merged = run_store(server, job).read_metrics()
        shipped = {
            entry["name"]: entry
            for entry in merged
            if entry["name"].startswith("worker_runtime_cache_")
        }
        assert "worker_runtime_cache_misses_total" in shipped
        assert all(not entry["deterministic"] for entry in shipped.values())


class TestStragglerDetection:
    def _coordinator(self):
        reset_warn_once()
        coordinator = FleetCoordinator(
            metrics=MetricsRegistry(), events=EventBus()
        )
        return coordinator

    def test_flags_after_warmup_and_publishes(self):
        coordinator = self._coordinator()
        for _ in range(coordinator.straggler_min_samples):
            coordinator._note_roundtrip("w0", 0.1, "job-1", None)
        coordinator._note_roundtrip("w1", 1.0, "job-1", None)
        counter = coordinator.metrics.counter(
            FLEET_STRAGGLERS, deterministic=False, worker="w1"
        )
        assert counter.value == 1
        events = coordinator.events.events_after("job-1", 0)
        assert [event["type"] for _, event in events] == ["straggler"]
        (_, event), = events
        assert event["worker"] == "w1"
        assert event["roundtrip_s"] == 1.0

    def test_detector_is_disarmed_during_warmup(self):
        coordinator = self._coordinator()
        coordinator._note_roundtrip("w0", 50.0, "job-1", None)
        assert coordinator.events.events_after("job-1", 0) == []

    def test_normal_spread_is_not_flagged(self):
        coordinator = self._coordinator()
        for seconds in (0.10, 0.11, 0.09, 0.12, 0.10, 0.13, 0.11):
            coordinator._note_roundtrip("w0", seconds, "job-1", None)
        assert coordinator.events.events_after("job-1", 0) == []


class TestOutOfBandTelemetry:
    def test_post_telemetry_verb_accepts_for_active_run(self, tmp_path):
        """A worker whose lease died still gets its spans into the
        merged trace via POST /v1/telemetry."""
        import time

        with fleet_server(tmp_path) as server:
            client = ServiceClient(server.url)
            response = client.submit(SPEC)
            deadline = time.monotonic() + 30
            grant = client.lease("lonely")
            while grant.get("idle") and time.monotonic() < deadline:
                time.sleep(0.05)
                grant = client.lease("lonely")
            assert not grant.get("idle")
            answer = client.post_telemetry({
                "worker": "lonely",
                "job_id": grant["job_id"],
                "telemetry": {
                    "worker": "lonely",
                    "spans": [{"name": "chunk.evaluate", "start_s": 1.0,
                               "duration_s": 0.5,
                               "attrs": {"chunk": grant["chunk"]}}],
                },
            })
            assert answer == {"accepted": True}
            with workers(server.url, 2):
                wait_terminal(server.service, response["job_id"])
            job = server.service.get_job(response["job_id"])
            trace = run_store(server, job).read_fleet_trace()
        assert "worker lonely" in trace_lanes(trace).values()

    def test_unknown_job_is_a_polite_no(self, tmp_path):
        with fleet_server(tmp_path) as server:
            answer = ServiceClient(server.url).post_telemetry(
                {"worker": "w9", "job_id": "nope", "telemetry": {}}
            )
        assert answer["accepted"] is False
        assert "nope" in answer["reason"]

    def test_malformed_shipped_metrics_cannot_kill_the_run(self, tmp_path):
        """Garbage in a telemetry bundle is dropped, never fatal, and
        the campaign still completes bit-identically."""
        local_service, local_job = run_local_baseline(tmp_path, SPEC)
        with fleet_server(tmp_path) as server:
            client = ServiceClient(server.url)
            response = client.submit(SPEC)
            client.post_telemetry({
                "worker": "vandal",
                "job_id": response["job_id"],
                "telemetry": {
                    "spans": ["not-a-span", {"no-name": 1}],
                    "metrics": [{"name": 7}, "junk"],
                    "logs": ["junk", {"message": "ok"}],
                    "n_dropped": "many",
                },
            })
            with workers(server.url, 2):
                wait_terminal(server.service, response["job_id"])
            job = server.service.get_job(response["job_id"])
            assert job.state == "done"
            assert_bit_identical(
                local_service, local_job, server.service, job
            )
