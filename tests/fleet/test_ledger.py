"""ChunkLedger: lease lifecycle, expiry, late-result rejection, replay."""

import json

import pytest

from repro.campaign.scheduler import Chunk
from repro.errors import LeaseGone
from repro.fleet import ChunkLedger

CHUNKS = [Chunk(0, 10), Chunk(1, 10), Chunk(2, 5)]


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


@pytest.fixture()
def clock():
    return FakeClock()


def make_ledger(tmp_path, clock, **kw):
    kw.setdefault("ttl_s", 10.0)
    return ChunkLedger(
        tmp_path / "ledger.jsonl", CHUNKS, clock=clock, **kw
    )


class TestLeaseLifecycle:
    def test_grants_lowest_pending_chunk_first(self, tmp_path, clock):
        ledger = make_ledger(tmp_path, clock)
        assert ledger.lease("w1").chunk.index == 0
        assert ledger.lease("w2").chunk.index == 1
        assert ledger.lease("w1").chunk.index == 2
        assert ledger.lease("w1") is None  # everything out on lease

    def test_complete_retires_lease_and_marks_done(self, tmp_path, clock):
        ledger = make_ledger(tmp_path, clock)
        lease = ledger.lease("w1")
        chunk = ledger.complete(lease.lease_id, 0)
        assert chunk.n_samples == 10
        assert ledger.counts()["done"] == 1
        assert not ledger.all_done
        for _ in range(2):
            lease = ledger.lease("w1")
            ledger.complete(lease.lease_id, lease.chunk.index)
        assert ledger.all_done

    def test_renew_extends_expiry(self, tmp_path, clock):
        ledger = make_ledger(tmp_path, clock, ttl_s=10)
        lease = ledger.lease("w1")
        clock.advance(8)
        ledger.renew(lease.lease_id)
        clock.advance(8)  # 16s after grant: would be dead without renewal
        assert ledger.complete(lease.lease_id, 0).index == 0

    def test_complete_wrong_index_rejected(self, tmp_path, clock):
        ledger = make_ledger(tmp_path, clock)
        lease = ledger.lease("w1")
        with pytest.raises(LeaseGone):
            ledger.complete(lease.lease_id, 2)

    def test_unknown_lease_rejected(self, tmp_path, clock):
        ledger = make_ledger(tmp_path, clock)
        with pytest.raises(LeaseGone):
            ledger.complete("deadbeef", 0)


class TestExpiry:
    def test_expired_lease_returns_chunk_to_pending(self, tmp_path, clock):
        ledger = make_ledger(tmp_path, clock, ttl_s=5)
        first = ledger.lease("w1")
        clock.advance(6)
        due = ledger.expire_due()
        assert [l.lease_id for l in due] == [first.lease_id]
        # Chunk 0 is pending again and re-issues before chunk 1.
        second = ledger.lease("w2")
        assert second.chunk.index == 0
        assert second.reassigned is True

    def test_late_result_after_expiry_is_rejected(self, tmp_path, clock):
        ledger = make_ledger(tmp_path, clock, ttl_s=5)
        lease = ledger.lease("w1")
        clock.advance(6)
        # Even without a sweeper pass, completion checks the deadline.
        with pytest.raises(LeaseGone):
            ledger.complete(lease.lease_id, 0)
        # The replacement lease completes normally: no double-count path.
        replacement = ledger.lease("w2")
        assert replacement.chunk.index == 0
        assert ledger.complete(replacement.lease_id, 0).index == 0
        assert ledger.counts()["done"] == 1

    def test_late_heartbeat_is_rejected(self, tmp_path, clock):
        ledger = make_ledger(tmp_path, clock, ttl_s=5)
        lease = ledger.lease("w1")
        clock.advance(6)
        with pytest.raises(LeaseGone):
            ledger.renew(lease.lease_id)

    def test_completed_chunk_never_goes_back_to_pending(self, tmp_path, clock):
        ledger = make_ledger(tmp_path, clock, ttl_s=5)
        lease = ledger.lease("w1")
        ledger.complete(lease.lease_id, 0)
        clock.advance(100)
        ledger.expire_due()
        counts = ledger.counts()
        assert counts["done"] == 1
        assert counts["pending"] == 2  # chunks 1 and 2 only


class TestReplay:
    def test_restart_readopts_unexpired_leases(self, tmp_path, clock):
        ledger = make_ledger(tmp_path, clock, ttl_s=100)
        live = ledger.lease("w1")
        # A second coordinator instance over the same log (crash restart).
        reborn = make_ledger(tmp_path, clock, ttl_s=100)
        adopted = reborn.get_lease(live.lease_id)
        assert adopted is not None
        assert adopted.worker == "w1"
        assert adopted.chunk.index == 0
        # The surviving worker's result is accepted as if nothing happened.
        assert reborn.complete(live.lease_id, 0).index == 0

    def test_restart_drops_expired_leases(self, tmp_path, clock):
        ledger = make_ledger(tmp_path, clock, ttl_s=5)
        stale = ledger.lease("w1")
        clock.advance(6)
        reborn = make_ledger(tmp_path, clock, ttl_s=5)
        assert reborn.get_lease(stale.lease_id) is None
        assert reborn.lease("w2").chunk.index == 0

    def test_restart_ignores_consumed_chunks(self, tmp_path, clock):
        ledger = make_ledger(tmp_path, clock, ttl_s=100)
        lease = ledger.lease("w1")
        ledger.complete(lease.lease_id, 0)
        # Chunk 0 was consumed into the run log before the restart.
        reborn = ChunkLedger(
            tmp_path / "ledger.jsonl", CHUNKS, start_index=1, clock=clock
        )
        counts = reborn.counts()
        assert counts["total"] == 2
        assert counts["pending"] == 2

    def test_replay_tolerates_torn_final_line(self, tmp_path, clock):
        ledger = make_ledger(tmp_path, clock, ttl_s=100)
        ledger.lease("w1")
        path = tmp_path / "ledger.jsonl"
        path.write_text(path.read_text() + '{"event": "lea')
        reborn = make_ledger(tmp_path, clock, ttl_s=100)
        assert reborn.counts()["leased"] == 1

    def test_ledger_is_fsynced_jsonl(self, tmp_path, clock):
        ledger = make_ledger(tmp_path, clock)
        lease = ledger.lease("w1")
        ledger.renew(lease.lease_id)
        ledger.complete(lease.lease_id, 0)
        events = [
            json.loads(line)
            for line in (tmp_path / "ledger.jsonl").read_text().splitlines()
        ]
        assert [e["event"] for e in events] == ["lease", "renew", "release"]
        assert events[2]["reason"] == "complete"
