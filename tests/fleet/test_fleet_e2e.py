"""Fleet end-to-end over real HTTP: distributed runs are bit-identical
to single-node runs, workers are disposable, and progress streams live.

The decisive property (mirroring the campaign/service crash-resume
suites): for a fixed spec, the fleet-dispatched campaign must produce
the same SSF, the same durable chunk log (record for record), and the
same deterministic metric view as the in-process single-node run — for
any worker count, and even when a worker dies mid-chunk and its lease
is re-issued.
"""

import json
import time
import urllib.request

import pytest

from repro.campaign import CampaignSpec, StoppingConfig
from repro.service import ServiceClient

from tests.fleet.helpers import (
    assert_bit_identical,
    fleet_server,
    run_local_baseline,
    slow_stub_factory,
    wait_terminal,
    workers,
)

SPEC = CampaignSpec(
    seed=41, chunk_size=25, stopping=StoppingConfig(n_samples=150)
)


def submit_and_wait(server, spec=SPEC, n_workers=2, timeout_s=60.0,
                    engine_kw=None):
    client = ServiceClient(server.url)
    response = client.submit(spec)
    with workers(server.url, n_workers, **(engine_kw or {})):
        wait_terminal(server.service, response["job_id"], timeout_s)
    return response["job_id"]


class TestBitIdentical:
    def test_one_worker_matches_single_node(self, tmp_path):
        local_service, local_job = run_local_baseline(tmp_path, SPEC)
        with fleet_server(tmp_path) as server:
            job_id = submit_and_wait(server, n_workers=1)
            fleet_job = server.service.get_job(job_id)
            assert fleet_job.state == "done"
            assert_bit_identical(
                local_service, local_job, server.service, fleet_job
            )

    def test_four_workers_match_single_node(self, tmp_path):
        local_service, local_job = run_local_baseline(tmp_path, SPEC)
        with fleet_server(tmp_path) as server:
            job_id = submit_and_wait(server, n_workers=4)
            fleet_job = server.service.get_job(job_id)
            assert fleet_job.state == "done"
            assert_bit_identical(
                local_service, local_job, server.service, fleet_job
            )

    def test_kill_a_worker_mid_run_stays_bit_identical(self, tmp_path):
        """A worker that leases a chunk and dies silently (no heartbeat,
        no result) must not change the final estimate: its lease expires
        and the chunk re-runs elsewhere, bit-identically."""
        local_service, local_job = run_local_baseline(tmp_path, SPEC)
        with fleet_server(tmp_path, lease_ttl_s=0.4) as server:
            client = ServiceClient(server.url)
            response = client.submit(SPEC)
            # "doomed" takes the first chunk and is never heard from
            # again — exactly what SIGKILL on a worker host looks like
            # from the coordinator's side.
            deadline = time.monotonic() + 30
            grant = client.lease("doomed")
            while grant.get("idle") and time.monotonic() < deadline:
                time.sleep(0.05)
                grant = client.lease("doomed")
            assert not grant.get("idle"), "never got a lease"
            with workers(server.url, 2):
                wait_terminal(server.service, response["job_id"])
            fleet_job = server.service.get_job(response["job_id"])
            assert fleet_job.state == "done"
            assert_bit_identical(
                local_service, local_job, server.service, fleet_job
            )
            # The death was observed: the chunk was re-issued.
            text = client.metrics_text()
            assert "fleet_leases_expired_total" in text
            assert "fleet_chunks_reassigned_total" in text


class TestFleetVisibility:
    def test_fleet_status_reports_workers_and_progress(self, tmp_path):
        with fleet_server(tmp_path) as server:
            client = ServiceClient(server.url)
            assert client.fleet_status()["workers"] == []
            job_id = submit_and_wait(server, n_workers=2)
            status = client.fleet_status()
            assert status["dispatch"] == "fleet"
            names = {w["worker"] for w in status["workers"]}
            assert names == {"w0", "w1"}
            assert all(
                w["samples_total"] >= 0 for w in status["workers"]
            )
            # Finished run: no active fleet runs left.
            assert status["runs"] == []
            assert server.service.get_job(job_id).state == "done"

    def test_worker_throughput_gauge_exported(self, tmp_path):
        with fleet_server(tmp_path) as server:
            submit_and_wait(
                server,
                n_workers=1,
                engine_kw={"engine_factory": slow_stub_factory(0.01)},
            )
            text = ServiceClient(server.url).metrics_text()
            assert "fleet_worker_samples_per_second" in text
            assert "fleet_chunks_accepted_total" in text
            assert "fleet_workers" in text


class TestProgressEvents:
    def test_long_poll_streams_progress_to_end(self, tmp_path):
        with fleet_server(tmp_path) as server:
            client = ServiceClient(server.url)
            response = client.submit(SPEC)
            job_id = response["job_id"]
            seen = []
            after = 0
            deadline = time.monotonic() + 60
            with workers(server.url, 2):
                while time.monotonic() < deadline:
                    page = client.events(job_id, after=after, timeout_s=2)
                    seen.extend(e["event"] for e in page["events"])
                    after = page["next_after"]
                    if page["end"]:
                        break
            types = [e["type"] for e in seen]
            assert types[0] == "state"          # queued at submit
            assert "progress" in types
            assert types[-1] == "end"
            progress = [e for e in seen if e["type"] == "progress"]
            counts = [e["n_samples"] for e in progress]
            assert counts == sorted(counts)
            assert counts[-1] == 150
            states = [e["state"] for e in seen if e["type"] == "state"]
            assert states[-1] == "done"

    def test_sse_stream_over_raw_http(self, tmp_path):
        with fleet_server(tmp_path) as server:
            client = ServiceClient(server.url)
            response = client.submit(SPEC)
            job_id = response["job_id"]
            url = f"{server.url}/v1/campaigns/{job_id}/events"
            with workers(server.url, 2):
                with urllib.request.urlopen(url, timeout=30) as stream:
                    assert stream.headers["Content-Type"] == (
                        "text/event-stream"
                    )
                    events = []
                    for raw in stream:
                        line = raw.decode().strip()
                        if line.startswith("data: "):
                            events.append(json.loads(line[len("data: "):]))
                            if events[-1]["type"] == "end":
                                break
            assert any(e["type"] == "progress" for e in events)
            assert events[-1]["type"] == "end"
            assert events[-1]["state"] == "done"

    def test_events_unknown_job_404(self, tmp_path):
        with fleet_server(tmp_path) as server:
            from repro.errors import ServiceError

            with pytest.raises(ServiceError) as err:
                ServiceClient(server.url).events("nope")
            assert err.value.status == 404
