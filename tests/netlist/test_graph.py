"""Structural tests for the Netlist container."""

import pytest

from repro.errors import NetlistError
from repro.netlist.cells import GateKind
from repro.netlist.graph import Netlist


def make_counter_bit():
    """1-bit toggle: q' = q ^ 1."""
    nl = Netlist("toggle")
    q = nl.add_dff(name="q[0]", register="q", bit=0)
    one = nl.add_const(1)
    d = nl.add_gate(GateKind.XOR, q, one)
    nl.connect_dff(q, d)
    nl.mark_output("q", q)
    return nl


class TestConstruction:
    def test_basic_build_validates(self):
        nl = make_counter_bit()
        nl.validate()
        assert nl.stats()["dff"] == 1

    def test_duplicate_input_rejected(self):
        nl = Netlist()
        nl.add_input("a")
        with pytest.raises(NetlistError):
            nl.add_input("a")

    def test_wrong_arity_rejected(self):
        nl = Netlist()
        a = nl.add_input("a")
        with pytest.raises(NetlistError):
            nl.add_gate(GateKind.AND, a)
        with pytest.raises(NetlistError):
            nl.add_gate(GateKind.NOT, a, a)

    def test_missing_fanin_rejected(self):
        nl = Netlist()
        with pytest.raises(NetlistError):
            nl.add_gate(GateKind.NOT, 99)

    def test_dff_double_connect_rejected(self):
        nl = Netlist()
        q = nl.add_dff(name="q", register="q", bit=0)
        one = nl.add_const(1)
        nl.connect_dff(q, one)
        with pytest.raises(NetlistError):
            nl.connect_dff(q, one)

    def test_unconnected_dff_fails_validation(self):
        nl = Netlist()
        nl.add_dff(name="q", register="q", bit=0)
        with pytest.raises(NetlistError):
            nl.validate()

    def test_register_bit_bookkeeping(self):
        nl = Netlist()
        nl.add_dff(name="r[1]", register="r", bit=1)
        with pytest.raises(NetlistError):
            nl.validate()  # bit 0 missing
        nl2 = Netlist()
        nl2.add_dff(name="r[0]", register="r", bit=0)
        with pytest.raises(NetlistError):
            nl2.add_dff(name="dup", register="r", bit=0)

    def test_register_dff_lookup(self):
        nl = make_counter_bit()
        assert nl.register_dff("q", 0).register == "q"
        with pytest.raises(NetlistError):
            nl.register_dff("q", 3)
        with pytest.raises(NetlistError):
            nl.register_dff("nope", 0)

    def test_duplicate_output_rejected(self):
        nl = make_counter_bit()
        with pytest.raises(NetlistError):
            nl.mark_output("q", 0)


class TestTopology:
    def test_topo_order_respects_dependencies(self):
        nl = Netlist()
        a = nl.add_input("a")
        b = nl.add_input("b")
        g1 = nl.add_gate(GateKind.AND, a, b)
        g2 = nl.add_gate(GateKind.OR, g1, a)
        g3 = nl.add_gate(GateKind.NOT, g2)
        order = nl.topo_order()
        assert order.index(g1) < order.index(g2) < order.index(g3)

    def test_sequential_loop_is_not_a_cycle(self):
        make_counter_bit().topo_order()  # must not raise

    def test_combinational_cycle_detected(self):
        nl = Netlist()
        a = nl.add_input("a")
        # Build g1 = AND(a, g2), g2 = OR(g1, a) via manual patching.
        g1 = nl.add_gate(GateKind.AND, a, a)
        g2 = nl.add_gate(GateKind.OR, g1, a)
        nl.nodes[g1].fanins = (a, g2)
        nl._invalidate()
        with pytest.raises(NetlistError):
            nl.topo_order()

    def test_levels_monotone_along_edges(self):
        nl = Netlist()
        a = nl.add_input("a")
        g1 = nl.add_gate(GateKind.NOT, a)
        g2 = nl.add_gate(GateKind.NOT, g1)
        levels = nl.levels()
        assert levels[a] == 0
        assert levels[g1] == 1
        assert levels[g2] == 2

    def test_fanouts_inverse_of_fanins(self):
        nl = make_counter_bit()
        fanouts = nl.fanouts()
        for node in nl.nodes:
            for f in node.fanins:
                assert node.nid in fanouts[f]


class TestMetrics:
    def test_area_accumulates(self, mpu_netlist):
        assert mpu_netlist.area() > 0

    def test_hardened_area_increases(self, mpu_netlist):
        base = mpu_netlist.area()
        hardened = mpu_netlist.area(hardened={("viol_q", 0): 3.0})
        assert hardened > base
        # exactly one DFF grew by 2x its cell area
        from repro.netlist.cells import CELL_LIBRARY

        delta = CELL_LIBRARY[GateKind.DFF].area_um2 * 2.0
        assert hardened - base == pytest.approx(delta)

    def test_stats_totals(self, mpu_netlist):
        stats = mpu_netlist.stats()
        assert stats["total"] == len(mpu_netlist)
        assert stats["combinational"] + stats["dff"] <= stats["total"]

    def test_register_widths_manifest(self, mpu_netlist):
        widths = mpu_netlist.register_widths()
        assert widths["viol_q"] == 1
        assert widths["req_addr"] == 16
        assert widths["cfg_base0"] == 16

    def test_to_dot_smoke(self):
        dot = make_counter_bit().to_dot()
        assert dot.startswith("digraph")
        assert "->" in dot
