"""Tests for the cell library: logic functions scalar vs word-parallel."""

import itertools

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netlist.cells import (
    CELL_LIBRARY,
    GateKind,
    eval_gate,
    eval_gate_words,
    gate_sensitized,
)

TWO_INPUT = [
    GateKind.AND,
    GateKind.OR,
    GateKind.NAND,
    GateKind.NOR,
    GateKind.XOR,
    GateKind.XNOR,
]


class TestScalarEval:
    @pytest.mark.parametrize("kind", TWO_INPUT)
    def test_truth_tables(self, kind):
        reference = {
            GateKind.AND: lambda a, b: a & b,
            GateKind.OR: lambda a, b: a | b,
            GateKind.NAND: lambda a, b: 1 - (a & b),
            GateKind.NOR: lambda a, b: 1 - (a | b),
            GateKind.XOR: lambda a, b: a ^ b,
            GateKind.XNOR: lambda a, b: 1 - (a ^ b),
        }[kind]
        for a, b in itertools.product((0, 1), repeat=2):
            assert eval_gate(kind, [a, b]) == reference(a, b)

    def test_unary_and_mux(self):
        assert eval_gate(GateKind.NOT, [0]) == 1
        assert eval_gate(GateKind.BUF, [1]) == 1
        for sel, a, b in itertools.product((0, 1), repeat=3):
            assert eval_gate(GateKind.MUX, [sel, a, b]) == (b if sel else a)

    def test_constants(self):
        assert eval_gate(GateKind.CONST0, []) == 0
        assert eval_gate(GateKind.CONST1, []) == 1

    def test_dff_not_evaluable(self):
        with pytest.raises(ValueError):
            eval_gate(GateKind.DFF, [0])


class TestWordEval:
    @pytest.mark.parametrize(
        "kind", TWO_INPUT + [GateKind.NOT, GateKind.BUF, GateKind.MUX]
    )
    @given(data=st.data())
    def test_word_matches_scalar(self, kind, data):
        n_inputs = CELL_LIBRARY[kind].n_inputs
        words = [
            np.array(
                [data.draw(st.integers(0, (1 << 64) - 1))], dtype=np.uint64
            )
            for _ in range(n_inputs)
        ]
        out = eval_gate_words(kind, words)
        for bit in range(64):
            scalar_in = [int(w[0] >> bit) & 1 for w in words]
            assert (int(out[0]) >> bit) & 1 == eval_gate(kind, scalar_in)


class TestSensitization:
    def test_and_gate_masking(self):
        # side input 0 masks; side input 1 sensitizes
        assert not gate_sensitized(GateKind.AND, [1, 0], pin=0)
        assert gate_sensitized(GateKind.AND, [1, 1], pin=0)

    def test_xor_always_sensitized(self):
        for a, b in itertools.product((0, 1), repeat=2):
            assert gate_sensitized(GateKind.XOR, [a, b], pin=0)
            assert gate_sensitized(GateKind.XOR, [a, b], pin=1)

    def test_mux_select_masking(self):
        # sel=0 selects input a (pin 1): pin 2 is masked
        assert gate_sensitized(GateKind.MUX, [0, 0, 1], pin=1)
        assert not gate_sensitized(GateKind.MUX, [0, 0, 1], pin=2)


class TestLibraryMetadata:
    def test_every_kind_has_cell_info(self):
        for kind in GateKind:
            assert kind in CELL_LIBRARY
            info = CELL_LIBRARY[kind]
            assert info.delay_ps >= 0
            assert info.area_um2 >= 0

    def test_sources_have_no_delay(self):
        for kind in GateKind:
            if kind.is_source and kind is not GateKind.DFF:
                assert CELL_LIBRARY[kind].area_um2 == 0.0

    def test_comb_source_partition(self):
        for kind in GateKind:
            assert kind.is_combinational != kind.is_source
