"""Tests for unrolled cone extraction and its frame semantics."""

import pytest

from repro.errors import NetlistError
from repro.netlist.cells import GateKind
from repro.netlist.cones import ConeExtractor
from repro.netlist.graph import Netlist


def shift_register(n=3):
    """in -> r0 -> r1 -> ... -> r_{n-1}; returns (netlist, [reg ids])."""
    nl = Netlist("shift")
    src = nl.add_input("in")
    regs = []
    prev = src
    for i in range(n):
        q = nl.add_dff(name=f"r{i}[0]", register=f"r{i}", bit=0)
        buf = nl.add_gate(GateKind.BUF, prev)
        nl.connect_dff(q, buf)
        regs.append(q)
        prev = q
    nl.mark_output("out", prev)
    nl.validate()
    return nl, regs


class TestFaninFrames:
    def test_shift_register_frames(self):
        """In r0 -> r1 -> r2, a fault in r_{2-k} needs k cycles to reach r2."""
        nl, regs = shift_register(3)
        cones = ConeExtractor(nl).extract(regs[2], max_fanin_depth=5)
        assert regs[2] in cones.fanin[0]
        assert regs[1] in cones.fanin[1]
        assert regs[0] in cones.fanin[2]

    def test_comb_gate_shares_downstream_register_frame(self):
        """A transient in r2's D-cone latches the same cycle: frame 0."""
        nl, regs = shift_register(3)
        cones = ConeExtractor(nl).extract(regs[2], max_fanin_depth=5)
        d_pin = nl.node(regs[2]).fanins[0]  # the BUF before r2
        assert d_pin in cones.fanin[0]
        d_pin_r1 = nl.node(regs[1]).fanins[0]
        assert d_pin_r1 in cones.fanin[1]

    def test_depth_cap_respected(self):
        nl, regs = shift_register(4)
        cones = ConeExtractor(nl).extract(regs[3], max_fanin_depth=2)
        assert max(cones.fanin.keys()) <= 2
        assert regs[0] not in cones.all_nodes()

    def test_self_holding_register_in_all_frames(self, mpu_netlist):
        """MPU config registers hold themselves, so they stay attackable at
        every timing distance >= 1 — the unrolling must reflect that."""
        from repro.soc.mpu import default_responding_signals

        responding = default_responding_signals(mpu_netlist)
        cones = ConeExtractor(mpu_netlist).extract_many(
            responding, max_fanin_depth=10
        )
        cfg_bit = mpu_netlist.register_dff("cfg_top0", 12).nid
        for frame in range(1, 11):
            assert cfg_bit in cones.fanin[frame]
        assert cfg_bit not in cones.fanin[0]

    def test_unknown_node_rejected(self, mpu_netlist):
        with pytest.raises(NetlistError):
            ConeExtractor(mpu_netlist).extract(10**6)

    def test_extract_many_requires_nodes(self, mpu_netlist):
        with pytest.raises(NetlistError):
            ConeExtractor(mpu_netlist).extract_many([])


class TestFanoutFrames:
    def test_fanout_crosses_registers_negatively(self):
        nl, regs = shift_register(3)
        cones = ConeExtractor(nl).extract(regs[0], max_fanout_depth=5)
        depths_r1 = cones.depths_of(regs[1])
        depths_r2 = cones.depths_of(regs[2])
        assert -1 in depths_r1
        assert -2 in depths_r2

    def test_sticky_flag_in_viol_q_fanout(self, mpu_netlist):
        from repro.soc.mpu import default_responding_signals

        viol_q = mpu_netlist.register_dff("viol_q", 0).nid
        cones = ConeExtractor(mpu_netlist).extract(viol_q, max_fanout_depth=3)
        sticky = mpu_netlist.register_dff("sticky_flag", 0).nid
        assert -1 in cones.depths_of(sticky)


class TestConeAlgebra:
    def test_merge_unions_frames(self):
        nl, regs = shift_register(3)
        ce = ConeExtractor(nl)
        a = ce.extract(regs[1], max_fanin_depth=4)
        b = ce.extract(regs[2], max_fanin_depth=4)
        merged = a.merge(b)
        assert merged.all_nodes() == a.all_nodes() | b.all_nodes()

    def test_frames_listing(self):
        nl, regs = shift_register(2)
        cones = ConeExtractor(nl).extract(regs[1], max_fanin_depth=3, max_fanout_depth=2)
        frames = cones.frames()
        assert frames == sorted(frames)

    def test_nodes_at_missing_frame_empty(self):
        nl, regs = shift_register(2)
        cones = ConeExtractor(nl).extract(regs[1], max_fanin_depth=1)
        assert cones.nodes_at(99) == set()
        assert cones.nodes_at(-99) == set()


class TestLatchingHelpers:
    def test_latching_registers_simple(self):
        nl, regs = shift_register(3)
        d_pin = nl.node(regs[1]).fanins[0]
        assert ConeExtractor(nl).latching_registers(d_pin) == {regs[1]}

    def test_max_over_latching(self):
        nl, regs = shift_register(3)
        ce = ConeExtractor(nl)
        lifetimes = {regs[0]: 5.0, regs[1]: 50.0, regs[2]: 1.0}
        result = ce.max_over_latching(lifetimes)
        # The BUF feeding r1 can only latch into r1.
        d_pin_r1 = nl.node(regs[1]).fanins[0]
        assert result[d_pin_r1] == 50.0
        # DFFs report their own lifetime.
        assert result[regs[0]] == 5.0

    def test_max_over_latching_fans_out(self):
        nl = Netlist()
        a = nl.add_input("a")
        g = nl.add_gate(GateKind.BUF, a)
        q1 = nl.add_dff(g, name="q1[0]", register="q1", bit=0)
        q2 = nl.add_dff(g, name="q2[0]", register="q2", bit=0)
        nl.mark_output("o", q1)
        nl.validate()
        result = ConeExtractor(nl).max_over_latching({q1: 3.0, q2: 9.0})
        assert result[g] == 9.0
        assert result[a] == 9.0
