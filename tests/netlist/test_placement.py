"""Tests for grid placement."""

import numpy as np
import pytest

from repro.errors import NetlistError
from repro.netlist.placement import GridPlacer
from repro.soc.mpu import build_mpu_netlist


class TestGridPlacer:
    def test_deterministic_given_seed(self, mpu_netlist):
        a = GridPlacer(seed=3, jitter=0.2).place(mpu_netlist)
        b = GridPlacer(seed=3, jitter=0.2).place(mpu_netlist)
        assert np.array_equal(a.x, b.x) and np.array_equal(a.y, b.y)

    def test_all_cells_placed_distinctly(self, mpu_placement):
        coords = set(zip(mpu_placement.x.round(3), mpu_placement.y.round(3)))
        # jitter < 0.5 pitch keeps grid slots distinct
        assert len(coords) == len(mpu_placement.netlist)

    def test_bounding_box_scales_with_pitch(self, mpu_netlist):
        small = GridPlacer(pitch_um=1.0).place(mpu_netlist)
        large = GridPlacer(pitch_um=4.0).place(mpu_netlist)
        assert large.bounding_box()[2] > small.bounding_box()[2]

    def test_invalid_parameters(self):
        with pytest.raises(NetlistError):
            GridPlacer(pitch_um=0.0)
        with pytest.raises(NetlistError):
            GridPlacer(jitter=0.7)


class TestRadiusQueries:
    def test_within_radius_includes_centre(self, mpu_placement):
        centre = mpu_placement.netlist.register_dff("viol_q", 0).nid
        hit = mpu_placement.within_radius(centre, 0.1)
        assert centre in hit

    def test_within_radius_monotone(self, mpu_placement):
        centre = mpu_placement.netlist.register_dff("viol_q", 0).nid
        small = set(mpu_placement.within_radius(centre, 3.0))
        large = set(mpu_placement.within_radius(centre, 9.0))
        assert small <= large
        assert len(large) > len(small)

    def test_within_radius_excludes_virtual_cells(self, mpu_placement):
        centre = mpu_placement.netlist.register_dff("viol_q", 0).nid
        for nid in mpu_placement.within_radius(centre, 50.0):
            kind = mpu_placement.netlist.node(nid).kind.value
            assert kind not in ("input", "const0", "const1")

    def test_distance_symmetric(self, mpu_placement):
        nl = mpu_placement.netlist
        a = nl.register_dff("viol_q", 0).nid
        b = nl.register_dff("grant_q", 0).nid
        assert mpu_placement.distance(a, b) == pytest.approx(
            mpu_placement.distance(b, a)
        )

    def test_locality_of_adjacent_register_bits(self, mpu_placement):
        """Levelized placement keeps a register bank physically together:
        the multi-bit upsets of the radiation model depend on this."""
        nl = mpu_placement.netlist
        bits = [nl.register_dff("cfg_base0", i).nid for i in range(16)]
        dists = [
            mpu_placement.distance(bits[i], bits[i + 1]) for i in range(15)
        ]
        assert np.median(dists) <= 3 * mpu_placement.pitch_um
