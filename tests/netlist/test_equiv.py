"""Tests for the simulation-based equivalence checker, including mutation
coverage: a single-gate functional change must be caught."""

import numpy as np
import pytest

from repro.errors import NetlistError
from repro.hdl import Module
from repro.netlist.cells import GateKind
from repro.netlist.equiv import check_against_reference, check_equivalence


def alu_design(buggy=False):
    m = Module("alu")
    a = m.input("a", 8)
    b = m.input("b", 8)
    op = m.input("op", 1)
    acc = m.register("acc", 8, init=1)
    result = op.mux(a + b, a ^ b) if not buggy else op.mux(a + b, a | b)
    m.connect(acc, result)
    m.output("res", result)
    m.output("zero", result.eq(0))
    return m.finalize()


class TestCheckEquivalence:
    def test_identical_designs_pass(self):
        result = check_equivalence(alu_design(), alu_design(), seed=1)
        assert result
        assert result.vectors_run > 0
        assert result.mismatch is None

    def test_functional_bug_caught(self):
        result = check_equivalence(alu_design(), alu_design(buggy=True), seed=1)
        assert not result
        assert result.mismatch is not None
        assert "golden" in str(result.mismatch)

    def test_port_mismatch_rejected(self):
        m = Module("other")
        a = m.input("a", 8)
        r = m.register("acc", 8)
        m.connect(r, a)
        with pytest.raises(NetlistError):
            check_equivalence(alu_design(), m.finalize())

    def test_mutation_coverage(self):
        """Flip one random gate's kind; the checker must notice."""
        rng = np.random.default_rng(3)
        caught = 0
        trials = 8
        for _ in range(trials):
            mutant = alu_design()
            comb = [n for n in mutant.nodes if n.kind in (GateKind.AND, GateKind.OR, GateKind.XOR)]
            victim = comb[rng.integers(0, len(comb))]
            victim.kind = (
                GateKind.OR if victim.kind is not GateKind.OR else GateKind.AND
            )
            mutant._invalidate()
            if not check_equivalence(alu_design(), mutant, seed=5):
                caught += 1
        assert caught >= trials - 1  # a masked redundancy may survive rarely

    def test_mpu_variant_rails_not_comparable(self, mpu_netlist):
        """Different register manifests (baseline vs dual) are rejected —
        the checker is for same-interface rewrites."""
        from repro.soc.mpu import MpuVariant, build_mpu_netlist

        dual = build_mpu_netlist(variant=MpuVariant(redundancy="dual"))
        with pytest.raises(NetlistError):
            check_equivalence(mpu_netlist, dual)

    def test_mpu_self_equivalence(self, mpu_netlist):
        from repro.soc.mpu import build_mpu_netlist

        rebuilt = build_mpu_netlist()
        assert check_equivalence(mpu_netlist, rebuilt, n_vectors=120, seed=2)


class TestCheckAgainstReference:
    def test_behavioural_reference_matches(self):
        nl = alu_design()

        def reference(inputs, state):
            a, b, op = inputs["a"], inputs["b"], inputs["op"]
            result = (a + b) & 0xFF if op else (a ^ b)
            return (
                {"res": result, "zero": int(result == 0)},
                {"acc": result},
            )

        assert check_against_reference(nl, reference, n_vectors=200, seed=4)

    def test_wrong_reference_caught(self):
        nl = alu_design()

        def wrong(inputs, state):
            return ({"res": 0, "zero": 1}, {"acc": 0})

        result = check_against_reference(nl, wrong, n_vectors=50, seed=4)
        assert not result

    def test_mpu_behavioural_reference(self, mpu_netlist):
        """The cross-level contract, phrased through the checker."""
        from repro.soc.mpu import MpuBehavioral, MpuInputs

        def reference(inputs, state):
            beh = MpuBehavioral()
            beh.set_registers(state)
            outs = beh.outputs()
            beh.step(MpuInputs(**inputs))
            return (
                {"grant_q": outs.grant_q, "viol_q": outs.viol_q},
                beh.get_registers(),
            )

        assert check_against_reference(
            mpu_netlist, reference, n_vectors=150, seed=6
        )
