"""Tests for the structural Verilog emitter."""

import io
import re

import pytest

from repro.hdl import Module
from repro.netlist.verilog import VerilogEmitter, _sanitize, write_verilog


def small_design():
    m = Module("demo")
    a = m.input("a", 4)
    b = m.input("b", 4)
    acc = m.register("acc", 4, init=0b0101)
    m.connect(acc, acc ^ (a & b))
    m.output("acc_out", acc)
    m.output("flag", a.ge(b))
    return m.finalize()


class TestSanitize:
    def test_passthrough(self):
        assert _sanitize("cfg_base0") == "cfg_base0"

    def test_brackets_replaced(self):
        assert _sanitize("a[3]") == "a_3_"

    def test_leading_digit(self):
        assert _sanitize("3x") == "n_3x"

    def test_empty(self):
        assert _sanitize("") == "n_"


class TestEmission:
    def test_module_structure(self):
        text = VerilogEmitter(small_design()).emit()
        assert text.startswith("module demo (")
        assert text.rstrip().endswith("endmodule")
        assert "input clk;" in text
        assert "input [3:0] a;" in text
        assert "output [3:0] acc_out_o;" in text
        assert "output flag_o;" in text
        assert "reg [3:0] acc;" in text
        assert "always @(posedge clk or negedge rst_n)" in text

    def test_reset_values(self):
        text = VerilogEmitter(small_design()).emit()
        assert "acc <= 4'd5;" in text  # init 0b0101

    def test_every_gate_assigned_once(self):
        nl = small_design()
        text = VerilogEmitter(nl).emit()
        n_comb = sum(1 for node in nl.nodes if node.kind.is_combinational)
        assert len(re.findall(r"assign n\d+ =", text)) == n_comb

    def test_mux_and_negated_ops_render(self):
        from repro.netlist.cells import GateKind
        from repro.netlist.graph import Netlist

        nl = Netlist("ops")
        s = nl.add_input("s")
        a = nl.add_input("x")
        b = nl.add_input("y")
        nand = nl.add_gate(GateKind.NAND, a, b)
        xnor = nl.add_gate(GateKind.XNOR, a, b)
        mux = nl.add_gate(GateKind.MUX, s, nand, xnor)
        q = nl.add_dff(mux, name="r[0]", register="r", bit=0)
        nl.mark_output("o", q)
        nl.validate()
        text = VerilogEmitter(nl).emit()
        assert "?" in text
        assert "~(x & y)" in text
        assert "~(x ^ y)" in text

    def test_no_dangling_identifiers(self):
        """Every identifier used in an expression must be declared."""
        text = VerilogEmitter(small_design()).emit()
        declared = set(re.findall(r"(?:wire|reg|input|output)(?: \[\d+:0\])? (\w+);", text))
        declared |= {"clk", "rst_n"}
        used = set(re.findall(r"\bn\d+\b", text))
        for ident in used:
            assert ident in declared, ident

    def test_write_to_stream_and_file(self, tmp_path):
        buffer = io.StringIO()
        text = write_verilog(small_design(), buffer)
        assert buffer.getvalue() == text
        path = tmp_path / "demo.v"
        write_verilog(small_design(), path, module_name="renamed")
        assert path.read_text().startswith("module renamed")


class TestMpuEmission:
    def test_mpu_emits_and_is_selfconsistent(self, mpu_netlist):
        text = VerilogEmitter(mpu_netlist, "mpu").emit()
        assert "module mpu (" in text
        # register manifest appears
        assert "reg [15:0] cfg_base0;" in text
        assert "reg viol_q;" in text
        # port groups from the word-level elaboration
        assert "input [15:0] in_addr;" in text
        assert "output viol_q_o;" in text
        # scale sanity: thousands of assigns
        assert text.count("assign n") > 1500
