"""Tests for SCOAP testability metrics."""

import pytest

from repro.errors import NetlistError
from repro.netlist.cells import GateKind
from repro.netlist.graph import Netlist
from repro.netlist.scoap import INF, compute_scoap


def chain(*kinds):
    """in0, in1 -> gate chain; returns (netlist, [gate ids])."""
    nl = Netlist("chain")
    a = nl.add_input("a")
    b = nl.add_input("b")
    gates = []
    prev = (a, b)
    for kind in kinds:
        arity = 1 if kind in (GateKind.NOT, GateKind.BUF) else 2
        g = nl.add_gate(kind, *prev[:arity])
        gates.append(g)
        prev = (g, b)
    nl.mark_output("o", gates[-1])
    nl.validate()
    return nl, gates


class TestControllability:
    def test_inputs_are_unit(self):
        nl, _ = chain(GateKind.AND)
        result = compute_scoap(nl)
        assert result.cc0[nl.inputs["a"]] == 1.0
        assert result.cc1[nl.inputs["a"]] == 1.0

    def test_and_gate_rule(self):
        nl, gates = chain(GateKind.AND)
        result = compute_scoap(nl)
        # CC0 = min(1,1)+1 = 2 ; CC1 = 1+1+1 = 3
        assert result.cc0[gates[0]] == 2.0
        assert result.cc1[gates[0]] == 3.0

    def test_not_swaps(self):
        nl, gates = chain(GateKind.AND, GateKind.NOT)
        result = compute_scoap(nl)
        assert result.cc0[gates[1]] == result.cc1[gates[0]] + 1
        assert result.cc1[gates[1]] == result.cc0[gates[0]] + 1

    def test_xor_rule(self):
        nl, gates = chain(GateKind.XOR)
        result = compute_scoap(nl)
        assert result.cc0[gates[0]] == 3.0  # equal inputs
        assert result.cc1[gates[0]] == 3.0

    def test_constants(self):
        nl = Netlist()
        zero = nl.add_const(0)
        one = nl.add_const(1)
        g = nl.add_gate(GateKind.OR, zero, one)
        nl.mark_output("o", g)
        result = compute_scoap(nl)
        assert result.cc0[zero] == 0.0 and result.cc0[one] == INF
        assert result.cc1[one] == 0.0 and result.cc1[zero] == INF

    def test_depth_increases_controllability_cost(self):
        nl, gates = chain(GateKind.AND, GateKind.AND, GateKind.AND)
        result = compute_scoap(nl)
        costs = [result.cc1[g] for g in gates]
        assert costs == sorted(costs)


class TestObservability:
    def test_output_is_zero(self):
        nl, gates = chain(GateKind.AND)
        result = compute_scoap(nl)
        assert result.co[gates[0]] == 0.0

    def test_deeper_nets_harder_to_observe(self):
        nl, gates = chain(GateKind.AND, GateKind.AND, GateKind.AND)
        result = compute_scoap(nl)
        assert result.co[gates[0]] > result.co[gates[1]] > result.co[gates[2]]

    def test_custom_observation_points(self, mpu_netlist):
        from repro.soc.mpu import default_responding_signals

        responding = default_responding_signals(mpu_netlist)
        result = compute_scoap(mpu_netlist, observe=responding)
        for rs in responding:
            assert result.co[rs] == 0.0
        # nets feeding the decision are more observable than far-away
        # configuration bits of a disabled region
        viol_d = mpu_netlist.node(
            mpu_netlist.register_dff("viol_q", 0).nid
        ).fanins[0]
        far = mpu_netlist.register_dff("cfg_base7", 3).nid
        assert result.co[viol_d] < result.co[far]

    def test_invalid_observation_point(self, mpu_netlist):
        with pytest.raises(NetlistError):
            compute_scoap(mpu_netlist, observe=[10**7])

    def test_hardest_to_observe_ranking(self, mpu_netlist):
        result = compute_scoap(mpu_netlist)
        ranked = result.hardest_to_observe(5)
        assert len(ranked) == 5
        values = [v for _n, v in ranked]
        assert values == sorted(values, reverse=True)


class TestScoapSampler:
    def test_baseline_runs_and_is_unbiased_support(self, small_context):
        import numpy as np

        from repro import default_attack_spec
        from repro.sampling.scoap_sampler import ScoapConeSampler

        spec = default_attack_spec(small_context, window=10)
        sampler = ScoapConeSampler(spec, small_context.characterization)
        rng = np.random.default_rng(0)
        for _ in range(100):
            s = sampler.sample(rng)
            assert spec.density(s.t, s.centre, s.radius_um) > 0
            assert s.weight > 0

    def test_prefers_observable_nodes(self, small_context):
        import numpy as np

        from repro import default_attack_spec
        from repro.sampling.scoap_sampler import ScoapConeSampler
        from repro.netlist.scoap import compute_scoap

        spec = default_attack_spec(small_context, window=10)
        sampler = ScoapConeSampler(
            spec, small_context.characterization, sharpness=2.0
        )
        scoap = compute_scoap(
            small_context.netlist, observe=small_context.characterization.responding
        )
        rng = np.random.default_rng(1)
        draws = [sampler.sample(rng).centre for _ in range(400)]
        mean_co = np.mean([min(scoap.co[c], 1e6) for c in draws])
        uniform_nodes = list(
            small_context.characterization.omega_nodes(1)
            & set(spec.spatial.universe)
        )
        uniform_co = np.mean([min(scoap.co[c], 1e6) for c in uniform_nodes])
        assert mean_co < uniform_co
