"""Tests for the two-pass assembler."""

import pytest

from repro.errors import AssemblyError
from repro.soc.assembler import assemble
from repro.soc.isa import Opcode, decode


class TestBasics:
    def test_simple_program(self):
        prog = assemble("""
            li r1, 42
            addi r2, r1, -1
            halt
        """)
        assert len(prog.words) == 3
        i0 = decode(prog.words[0])
        assert i0.opcode == Opcode.LI and i0.rd == 1 and i0.imm == 42
        i1 = decode(prog.words[1])
        assert i1.opcode == Opcode.ADDI and i1.imm == -1

    def test_comments_and_blank_lines(self):
        prog = assemble("""
            ; leading comment
            nop   # trailing comment
            nop   // also a comment

            halt
        """)
        assert len(prog.words) == 3

    def test_hex_and_decimal_immediates(self):
        prog = assemble("li r1, 0x1F\nli r2, 31\nhalt")
        assert decode(prog.words[0]).imm == decode(prog.words[1]).imm == 31

    def test_empty_program_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("; nothing\n")


class TestLabels:
    def test_forward_and_backward_references(self):
        prog = assemble("""
        start:
            jmp end
            nop
        end:
            jmp start
            halt
        """)
        assert decode(prog.words[0]).imm == prog.label("end") == 2
        assert decode(prog.words[2]).imm == 0

    def test_label_as_immediate(self):
        prog = assemble("""
            li r1, =target
            halt
        target:
            nop
        """)
        assert decode(prog.words[0]).imm == 2

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("x:\nnop\nx:\nhalt")

    def test_unknown_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("jmp nowhere\nhalt")

    def test_unknown_label_lookup(self):
        prog = assemble("halt")
        with pytest.raises(AssemblyError):
            prog.label("missing")

    def test_label_on_same_line_as_instruction(self):
        prog = assemble("loop: jmp loop\nhalt")
        assert prog.label("loop") == 0


class TestDirectives:
    def test_org_moves_location(self):
        prog = assemble("""
            nop
            .org 0x10
            halt
        """)
        assert len(prog.words) == 0x11
        assert decode(prog.words[0x10]).opcode == Opcode.HALT

    def test_word_directive(self):
        prog = assemble("""
            .word 0xDEADBEEF, 7
            halt
        """)
        assert prog.words[0] == 0xDEADBEEF
        assert prog.words[1] == 7

    def test_word_with_label_value(self):
        prog = assemble("""
            jmp main
        data:
            .word =main
        main:
            halt
        """)
        assert prog.words[1] == prog.label("main")

    def test_overlap_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("nop\n.org 0\nhalt")


class TestOperandParsing:
    def test_register_validation(self):
        with pytest.raises(AssemblyError):
            assemble("add r8, r0, r0\nhalt")
        with pytest.raises(AssemblyError):
            assemble("add rx, r0, r0\nhalt")

    def test_operand_count_validation(self):
        with pytest.raises(AssemblyError):
            assemble("add r1, r2\nhalt")
        with pytest.raises(AssemblyError):
            assemble("nop r1\nhalt")

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError):
            assemble("frobnicate r1\nhalt")

    def test_sw_operand_order(self):
        # sw rs2, rs1, imm : store rs2 at [rs1 + imm]
        prog = assemble("sw r3, r5, 7\nhalt")
        instr = decode(prog.words[0])
        assert instr.rs2 == 3 and instr.rs1 == 5 and instr.imm == 7

    def test_mov_pseudo_instruction(self):
        prog = assemble("mov r2, r6\nhalt")
        instr = decode(prog.words[0])
        assert instr.opcode == Opcode.ADD
        assert instr.rd == 2 and instr.rs1 == 6 and instr.rs2 == 0

    def test_imm_overflow_reported_with_line(self):
        with pytest.raises(AssemblyError, match="line 1"):
            assemble("li r1, 9999999\nhalt")
