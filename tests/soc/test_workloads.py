"""Tests for the parameterized workload generator."""

import pytest

from repro.core.context import find_violation_cycles
from repro.errors import AssemblyError
from repro.soc.soc import Soc
from repro.soc.workloads import WorkloadParams, generate_workload


def run(bench):
    soc = Soc()
    soc.load_program(bench.program.words)
    soc.reset()
    soc.record_mpu_trace = True
    soc.run_until_halt(60000)
    return soc


class TestParams:
    def test_validation(self):
        with pytest.raises(AssemblyError):
            WorkloadParams(kind="erase")
        with pytest.raises(AssemblyError):
            WorkloadParams(n_attacks=0)
        with pytest.raises(AssemblyError):
            WorkloadParams(benign_intensity=-1)

    def test_name_encodes_parameters(self):
        bench = generate_workload(WorkloadParams(n_attacks=2, dma_background=True))
        assert "a2" in bench.name and "dma" in bench.name


class TestGeneratedWorkloads:
    @pytest.mark.parametrize("kind", ["write", "read"])
    def test_golden_blocked_and_detected(self, kind):
        bench = generate_workload(WorkloadParams(kind=kind))
        soc = run(bench)
        assert bench.detected(soc)
        assert not bench.attack_succeeded(soc)

    def test_attack_count_matches_violations(self):
        for n_attacks in (1, 2, 4):
            bench = generate_workload(WorkloadParams(n_attacks=n_attacks))
            soc = run(bench)
            checks = find_violation_cycles(soc.mpu_trace, 8)
            assert len(checks) == n_attacks
            assert soc.memory.read(bench.counter_addr) == n_attacks

    def test_benign_intensity_scales_runtime(self):
        light = generate_workload(WorkloadParams(benign_intensity=1))
        heavy = generate_workload(WorkloadParams(benign_intensity=12))
        soc_light, soc_heavy = run(light), run(heavy)
        assert soc_heavy._cycle > soc_light._cycle

    def test_dma_background_traffic_is_legal(self):
        bench = generate_workload(WorkloadParams(dma_background=True))
        soc = run(bench)
        assert soc.dma.regs["dma_error"] == 0
        # the copy made progress
        assert soc.dma.regs["dma_cnt"] > 0 or soc.dma.regs["dma_active"] == 0
        assert soc.memory.read(0x0600) == soc.memory.read(0x0400)

    def test_deterministic_given_seed(self):
        a = generate_workload(WorkloadParams(seed=5))
        b = generate_workload(WorkloadParams(seed=5))
        assert a.program.words == b.program.words
        c = generate_workload(WorkloadParams(seed=6))
        assert c.program.words != a.program.words

    def test_usable_in_full_context(self):
        """Generated workloads plug into the evaluation pipeline."""
        from repro.core.context import build_context

        bench = generate_workload(WorkloadParams(benign_intensity=2))
        context = build_context(bench, characterize=False)
        assert context.target_cycle > 0
