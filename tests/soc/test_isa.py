"""Tests for instruction encoding/decoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AssemblyError
from repro.soc.isa import (
    IMM_MAX,
    IMM_MIN,
    Csr,
    Instruction,
    Opcode,
    csr_is_privileged,
    decode,
    encode,
)

instructions = st.builds(
    Instruction,
    opcode=st.sampled_from(list(Opcode)),
    rd=st.integers(0, 7),
    rs1=st.integers(0, 7),
    rs2=st.integers(0, 7),
    imm=st.integers(IMM_MIN, IMM_MAX),
)


class TestEncoding:
    @given(instructions)
    def test_roundtrip(self, instr):
        assert decode(encode(instr)) == instr

    def test_encoding_is_32_bit(self):
        word = encode(Instruction(Opcode.SW, rs1=7, rs2=7, imm=-1))
        assert 0 <= word < (1 << 32)

    def test_unknown_opcode_decodes_as_nop(self):
        assert decode(0x3F << 26).opcode == Opcode.NOP

    def test_negative_imm_sign_extended(self):
        instr = Instruction(Opcode.ADDI, rd=1, rs1=1, imm=-5)
        assert decode(encode(instr)).imm == -5

    def test_field_validation(self):
        with pytest.raises(AssemblyError):
            Instruction(Opcode.ADD, rd=8)
        with pytest.raises(AssemblyError):
            Instruction(Opcode.LI, imm=IMM_MAX + 1)


class TestCsrPrivileges:
    def test_mpu_config_is_privileged(self):
        assert csr_is_privileged(Csr.MPU_CFG_BASE, n_regions=8)
        assert csr_is_privileged(Csr.MPU_CFG_BASE + 4 * 8 - 1, n_regions=8)
        assert not csr_is_privileged(Csr.MPU_CFG_BASE + 4 * 8, n_regions=8)

    def test_system_csrs_privileged(self):
        for csr in (Csr.TRAPVEC, Csr.EPC, Csr.CAUSE, Csr.VIOLFLAG):
            assert csr_is_privileged(csr, n_regions=8)

    def test_unknown_csr_unprivileged(self):
        assert not csr_is_privileged(0x0F, n_regions=8)
