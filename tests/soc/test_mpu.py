"""Tests for the MPU: decision semantics and cross-level equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gatesim.logic import LogicEvaluator
from repro.soc.memmap import DEFAULT_MEMORY_MAP, MpuRegionInit
from repro.soc.mpu import (
    MpuBehavioral,
    MpuConfigView,
    MpuInputs,
    default_responding_signals,
    mpu_decision,
    mpu_register_specs,
)


def default_config() -> MpuConfigView:
    return MpuConfigView.from_regions(DEFAULT_MEMORY_MAP.default_regions())


class TestDecisionFunction:
    def test_user_ram_allowed(self):
        cfg = default_config()
        assert not mpu_decision(cfg, 0x0200, write=True, priv=False)
        assert not mpu_decision(cfg, 0x0200, write=False, priv=False)

    def test_protected_window_user_blocked(self):
        cfg = default_config()
        assert mpu_decision(cfg, 0x1050, write=True, priv=False)
        assert mpu_decision(cfg, 0x1050, write=False, priv=False)

    def test_protected_window_priv_allowed(self):
        cfg = default_config()
        assert not mpu_decision(cfg, 0x1050, write=True, priv=True)

    def test_background_priv_only(self):
        cfg = default_config()
        assert mpu_decision(cfg, 0xF000, write=False, priv=False)
        assert not mpu_decision(cfg, 0xF000, write=False, priv=True)

    def test_lowest_region_wins(self):
        regions = [
            MpuRegionInit(base=0x0, top=0xFF, read=True, write=True),
            MpuRegionInit(base=0x0, top=0xFF, privileged_only=True),
        ]
        cfg = MpuConfigView.from_regions(
            regions
            + [MpuRegionInit(0, 0, read=False, write=False, enabled=False)] * 6
        )
        assert not mpu_decision(cfg, 0x10, write=True, priv=False)

    def test_disabled_region_ignored(self):
        regions = DEFAULT_MEMORY_MAP.default_regions()
        regions[1] = MpuRegionInit(
            base=regions[1].base,
            top=regions[1].top,
            privileged_only=True,
            enabled=False,
        )
        cfg = MpuConfigView.from_regions(regions)
        # region 1 disabled: protected window falls to background (priv-only)
        assert mpu_decision(cfg, 0x1050, write=True, priv=False)

    def test_read_write_permissions_distinct(self):
        regions = [MpuRegionInit(base=0, top=0xFF, read=True, write=False)]
        cfg = MpuConfigView.from_regions(
            regions
            + [MpuRegionInit(0, 0, read=False, write=False, enabled=False)] * 7
        )
        assert not mpu_decision(cfg, 0x10, write=False, priv=False)
        assert mpu_decision(cfg, 0x10, write=True, priv=False)

    def test_critical_single_bit_flip_grants(self):
        """The classic attack: growing region 0's top over the protected
        window legalizes the illegal write.  Keeps the threat model honest."""
        cfg = default_config()
        assert mpu_decision(cfg, 0x1050, write=True, priv=False)
        bases, tops, perms = list(cfg.bases), list(cfg.tops), list(cfg.perms)
        tops[0] ^= 1 << 12
        flipped = MpuConfigView(tuple(bases), tuple(tops), tuple(perms))
        assert not mpu_decision(flipped, 0x1050, write=True, priv=False)


class TestBehavioralModel:
    def test_request_capture_and_decision_pipeline(self):
        mpu = MpuBehavioral()
        for i, region in enumerate(DEFAULT_MEMORY_MAP.default_regions()):
            mpu.set_registers(
                {
                    f"cfg_base{i}": region.base,
                    f"cfg_top{i}": region.top,
                    f"cfg_perm{i}": region.perm_bits(),
                }
            )
        mpu.step(MpuInputs(in_addr=0x1050, in_write=1, in_priv=0, in_valid=1))
        assert mpu.regs["req_addr"] == 0x1050
        assert mpu.outputs().viol_q == 0  # decision not latched yet
        mpu.step(MpuInputs())
        out = mpu.outputs()
        assert out.viol_q == 1 and out.grant_q == 0
        mpu.step(MpuInputs())
        assert mpu.outputs().sticky_flag == 1
        assert mpu.regs["viol_addr"] == 0x1050

    def test_grant_pipeline(self):
        mpu = MpuBehavioral()
        mpu.set_registers({"cfg_base0": 0, "cfg_top0": 0xFF, "cfg_perm0": 0b1011})
        mpu.step(MpuInputs(in_addr=0x10, in_write=1, in_priv=0, in_valid=1))
        mpu.step(MpuInputs())
        out = mpu.outputs()
        assert out.grant_q == 1 and out.viol_q == 0

    def test_flag_clear(self):
        mpu = MpuBehavioral()
        mpu.set_registers({"sticky_flag": 1})
        mpu.step(MpuInputs(flag_clear=1))
        assert mpu.outputs().sticky_flag == 0

    def test_cfg_write_port(self):
        mpu = MpuBehavioral()
        mpu.step(MpuInputs(cfg_we=1, cfg_index=3, cfg_field=1, cfg_wdata=0xABCD))
        assert mpu.regs["cfg_top3"] == 0xABCD
        assert mpu.regs["cfg_base3"] == 0

    def test_register_manifest_total(self):
        specs = mpu_register_specs()
        total = sum(s.width for s in specs.values())
        # 8 regions x (16+16+4) + req(19) + outputs(19)
        assert total == 8 * 36 + 19 + 19


mpu_stimulus = st.builds(
    MpuInputs,
    in_addr=st.integers(0, 0xFFFF),
    in_write=st.integers(0, 1),
    in_priv=st.integers(0, 1),
    in_valid=st.integers(0, 1),
    cfg_we=st.integers(0, 1),
    cfg_index=st.integers(0, 7),
    cfg_field=st.integers(0, 2),
    cfg_wdata=st.integers(0, 0xFFFF),
    flag_clear=st.integers(0, 1),
)


class TestCrossLevelEquivalence:
    """The cross-level contract: behavioural MPU == elaborated netlist."""

    @given(stimulus=st.lists(mpu_stimulus, min_size=1, max_size=25))
    @settings(max_examples=30, deadline=None)
    def test_bit_exact_next_state(self, stimulus, mpu_netlist, mpu_evaluator):
        beh = MpuBehavioral()
        for inp in stimulus:
            _outs, nxt = mpu_evaluator.step(
                inp.as_port_dict(), beh.get_registers()
            )
            beh.step(inp)
            assert beh.get_registers() == nxt

    def test_register_manifests_agree(self, mpu_netlist):
        beh_specs = MpuBehavioral().register_specs()
        net_widths = mpu_netlist.register_widths()
        assert {n: s.width for n, s in beh_specs.items()} == net_widths

    def test_responding_signals_are_decision_registers(self, mpu_netlist):
        responding = default_responding_signals(mpu_netlist)
        names = {mpu_netlist.node(nid).register for nid in responding}
        assert names == {"viol_q", "grant_q"}
