"""Tests for the RAM model."""

import pytest

from repro.errors import SimulationError
from repro.soc.memmap import MemoryMap
from repro.soc.memory import Memory


class TestMemory:
    def test_read_write_roundtrip(self):
        mem = Memory()
        mem.write(0x100, 0xDEADBEEF)
        assert mem.read(0x100) == 0xDEADBEEF

    def test_data_masked_to_width(self):
        mem = Memory()
        mem.write(0x10, 0x1_0000_0001)
        assert mem.read(0x10) == 1

    def test_unmapped_access_quiet(self):
        mem = Memory()
        mem.write(0xFFFF, 42)  # beyond RAM: dropped
        assert mem.read(0xFFFF) == 0
        assert mem.read(-1) == 0

    def test_reset_clears(self):
        mem = Memory()
        mem.write(5, 9)
        mem.reset()
        assert mem.read(5) == 0

    def test_load_image_and_fetch(self):
        mem = Memory()
        mem.load_image([1, 2, 3], base=0x20)
        assert mem.fetch(0x21) == 2

    def test_image_overflow_rejected(self):
        memmap = MemoryMap()
        mem = Memory(memmap)
        with pytest.raises(SimulationError):
            mem.load_image([0] * 10, base=memmap.ram_words - 5)

    def test_snapshot_restore(self):
        mem = Memory()
        mem.write(3, 7)
        snap = mem.snapshot()
        mem.write(3, 8)
        mem.restore(snap)
        assert mem.read(3) == 7

    def test_restore_size_checked(self):
        mem = Memory()
        with pytest.raises(SimulationError):
            mem.restore([0, 1, 2])

    def test_snapshot_is_a_copy(self):
        mem = Memory()
        snap = mem.snapshot()
        snap[0] = 999
        assert mem.read(0) == 0


class TestMemoryMap:
    def test_protected_window(self):
        memmap = MemoryMap()
        assert memmap.is_protected(memmap.protected_base)
        assert memmap.is_protected(memmap.protected_top)
        assert not memmap.is_protected(memmap.protected_base - 1)

    def test_dma_mmio_window(self):
        memmap = MemoryMap()
        assert memmap.is_dma_mmio(memmap.dma_mmio_base)
        assert not memmap.is_dma_mmio(memmap.dma_mmio_top + 1)

    def test_default_regions_cover_policy(self):
        memmap = MemoryMap()
        regions = memmap.default_regions()
        assert len(regions) == memmap.n_mpu_regions
        assert regions[1].privileged_only
        assert regions[1].base == memmap.protected_base
        disabled = [r for r in regions if not r.enabled]
        assert len(disabled) == memmap.n_mpu_regions - 4

    def test_perm_bits_packing(self):
        from repro.soc.memmap import MpuRegionInit

        region = MpuRegionInit(0, 0, read=True, write=False,
                               privileged_only=True, enabled=True)
        assert region.perm_bits() == 0b1101
