"""Tests for the countermeasure variants of the MPU.

Each variant must (a) stay bit-exact between the behavioural model and the
elaborated netlist, (b) behave identically to the baseline in fault-free
operation, and (c) show its documented security property under the
corresponding fault class.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.gatesim.logic import LogicEvaluator
from repro.soc.mpu import (
    MpuBehavioral,
    MpuInputs,
    MpuSemantics,
    MpuVariant,
    build_mpu_netlist,
    combine_decision_rails,
    default_responding_signals,
    mpu_register_specs,
)
from repro.soc.programs import illegal_write_benchmark
from repro.soc.soc import Soc

VARIANTS = [
    MpuVariant(cfg_parity=True),
    MpuVariant(redundancy="dual"),
    MpuVariant(redundancy="tmr"),
    MpuVariant(redundancy="tmr", cfg_parity=True),
]

mpu_stimulus = st.builds(
    MpuInputs,
    in_addr=st.integers(0, 0xFFFF),
    in_write=st.integers(0, 1),
    in_priv=st.integers(0, 1),
    in_valid=st.integers(0, 1),
    cfg_we=st.integers(0, 1),
    cfg_index=st.integers(0, 7),
    cfg_field=st.integers(0, 2),
    cfg_wdata=st.integers(0, 0xFFFF),
    flag_clear=st.integers(0, 1),
)


class TestVariantDefinition:
    def test_rail_suffixes(self):
        assert MpuVariant().rails == ("",)
        assert MpuVariant(redundancy="dual").rails == ("", "_b")
        assert MpuVariant(redundancy="tmr").rails == ("", "_b", "_c")

    def test_unknown_redundancy_rejected(self):
        with pytest.raises(SimulationError):
            MpuVariant(redundancy="quad")

    def test_manifest_grows_with_variant(self):
        base = sum(s.width for s in mpu_register_specs().values())
        parity = sum(
            s.width
            for s in mpu_register_specs(
                variant=MpuVariant(cfg_parity=True)
            ).values()
        )
        tmr = sum(
            s.width
            for s in mpu_register_specs(
                variant=MpuVariant(redundancy="tmr")
            ).values()
        )
        assert parity == base + 3 * 8  # one parity bit per cfg field
        assert tmr == base + 4         # two extra rails x two bits

    def test_responding_signals_cover_all_rails(self):
        nl = build_mpu_netlist(variant=MpuVariant(redundancy="tmr"))
        names = {
            nl.node(nid).register for nid in default_responding_signals(nl)
        }
        assert names == {
            "viol_q", "viol_q_b", "viol_q_c",
            "grant_q", "grant_q_b", "grant_q_c",
        }


class TestRailCombination:
    def test_single_rail_passthrough(self):
        assert combine_decision_rails([1], [0]) == (1, 0)

    def test_dual_disagreement_fails_secure(self):
        # grant rails disagree -> treated as violation, no grant
        assert combine_decision_rails([0, 0], [1, 0]) == (1, 0)
        # both rails healthy grant
        assert combine_decision_rails([0, 0], [1, 1]) == (0, 1)
        # one rail violating
        assert combine_decision_rails([1, 0], [0, 0]) == (1, 0)

    def test_tmr_outvotes_single_rail(self):
        assert combine_decision_rails([1, 0, 0], [0, 1, 1]) == (0, 1)
        assert combine_decision_rails([1, 1, 0], [0, 0, 1]) == (1, 0)


@pytest.mark.parametrize("variant", VARIANTS, ids=lambda v: v.name)
class TestCrossLevelEquivalence:
    @given(stimulus=st.lists(mpu_stimulus, min_size=1, max_size=15))
    @settings(max_examples=10, deadline=None)
    def test_bit_exact_next_state(self, variant, stimulus):
        nl = build_mpu_netlist(variant=variant)
        ev = LogicEvaluator(nl)
        beh = MpuBehavioral(variant=variant)
        for inp in stimulus:
            outs, nxt = ev.step(inp.as_port_dict(), beh.get_registers())
            prev = beh.outputs()
            assert outs["grant_q"] == prev.grant_q
            assert outs["viol_q"] == prev.viol_q
            beh.step(inp)
            assert beh.get_registers() == nxt


class TestGoldenBehaviourUnchanged:
    @pytest.mark.parametrize("variant", VARIANTS, ids=lambda v: v.name)
    def test_benchmark_golden_run_identical(self, variant):
        """Fault-free, every variant must block and detect exactly like the
        baseline (countermeasures are transparent to correct operation)."""
        bench = illegal_write_benchmark()
        base = Soc()
        base.load_program(bench.program.words)
        base.reset()
        n = base.run_until_halt()
        hardened = Soc(mpu_variant=variant)
        hardened.load_program(bench.program.words)
        hardened.reset()
        assert hardened.run_until_halt() == n
        assert bench.detected(hardened)
        assert not bench.attack_succeeded(hardened)
        assert hardened.memory.snapshot() == base.memory.snapshot()


class TestParitySemantics:
    def setup_mpu(self):
        beh = MpuBehavioral(variant=MpuVariant(cfg_parity=True))
        beh.step(MpuInputs(cfg_we=1, cfg_index=0, cfg_field=1, cfg_wdata=0x0FFF))
        beh.step(MpuInputs(cfg_we=1, cfg_index=0, cfg_field=2, cfg_wdata=0b1011))
        return beh

    def test_written_config_has_consistent_parity(self):
        beh = self.setup_mpu()
        assert not beh.semantics.parity_error(beh.regs)

    def test_single_bit_upset_forces_violation(self):
        beh = self.setup_mpu()
        beh.set_registers({"cfg_top0": 0x1FFF})
        beh.step(MpuInputs(in_addr=0x10, in_write=0, in_priv=1, in_valid=1))
        assert beh.check_violation()  # even privileged access fails secure

    def test_matched_double_flip_evades_parity(self):
        """Flipping a value bit AND its parity bit defeats the scheme — the
        residual vulnerability the SSF evaluation should still find."""
        beh = self.setup_mpu()
        beh.set_registers(
            {"cfg_top0": 0x1FFF, "cfg_top0_par": beh.regs["cfg_top0_par"] ^ 1}
        )
        assert not beh.semantics.parity_error(beh.regs)

    def test_parity_only_flip_detected(self):
        beh = self.setup_mpu()
        beh.set_registers({"cfg_top0_par": beh.regs["cfg_top0_par"] ^ 1})
        assert beh.semantics.parity_error(beh.regs)


class TestVariantFaultResilience:
    def run_with_flips(self, variant, flips, at_cycle, bench, total):
        soc = Soc(mpu_variant=variant)
        soc.load_program(bench.program.words)
        soc.reset()
        for _ in range(at_cycle):
            soc.step()
        for reg, bit in flips:
            soc.flip_register_bit(reg, bit)
        for _ in range(total - at_cycle):
            soc.step()
        return soc

    @pytest.fixture(scope="class")
    def bench_setup(self):
        bench = illegal_write_benchmark()
        soc = Soc()
        soc.load_program(bench.program.words)
        soc.reset()
        soc.record_mpu_trace = True
        n = soc.run_until_halt()
        from repro.core.context import find_violation_cycles

        target = find_violation_cycles(soc.mpu_trace, 8)[0]
        return bench, target, n + 40

    def test_parity_blocks_single_cfg_upset(self, bench_setup):
        bench, target, total = bench_setup
        variant = MpuVariant(cfg_parity=True)
        soc = self.run_with_flips(variant, [("cfg_top0", 12)], 60, bench, total)
        assert not bench.attack_succeeded(soc)
        assert bench.detected(soc)  # fail-secure violations fire the handler

    def test_parity_evaded_by_matched_double_flip(self, bench_setup):
        bench, target, total = bench_setup
        variant = MpuVariant(cfg_parity=True)
        soc = self.run_with_flips(
            variant,
            [("cfg_top0", 12), ("cfg_top0_par", 0)],
            60,
            bench,
            total,
        )
        assert bench.attack_succeeded(soc)

    def test_dual_blocks_single_rail_pair_flip(self, bench_setup):
        """The baseline's viol+grant double flip only corrupts one rail of
        the dual variant — fail-secure combination blocks the access."""
        bench, target, total = bench_setup
        variant = MpuVariant(redundancy="dual")
        soc = self.run_with_flips(
            variant, [("viol_q", 0), ("grant_q", 0)], target + 1, bench, total
        )
        assert not bench.attack_succeeded(soc)

    def test_dual_defeated_by_both_rails(self, bench_setup):
        bench, target, total = bench_setup
        variant = MpuVariant(redundancy="dual")
        soc = self.run_with_flips(
            variant,
            [("viol_q", 0), ("grant_q", 0), ("viol_q_b", 0), ("grant_q_b", 0)],
            target + 1,
            bench,
            total,
        )
        assert bench.attack_succeeded(soc)

    def test_tmr_outvotes_full_rail_corruption(self, bench_setup):
        bench, target, total = bench_setup
        variant = MpuVariant(redundancy="tmr")
        soc = self.run_with_flips(
            variant,
            [("viol_q", 0), ("grant_q", 0)],
            target + 1,
            bench,
            total,
        )
        assert not bench.attack_succeeded(soc)
        # majority voting: the other two rails carry the correct decision,
        # so the system still detects the attempt
        assert bench.detected(soc)
