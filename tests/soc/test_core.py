"""Per-instruction semantics of the behavioural core.

Each test assembles a tiny program, runs the full SoC to halt, and checks
architectural state — so these double as ISA conformance tests for the
fetch/decode/execute path including the 4-cycle memory pipeline.
"""

import pytest

from repro.soc.assembler import assemble
from repro.soc.core import CoreState
from repro.soc.isa import Csr, TrapCause
from repro.soc.soc import Soc


def run_program(source: str, max_cycles: int = 5000) -> Soc:
    soc = Soc()
    soc.load_program(assemble(source).words)
    soc.reset()
    soc.run_until_halt(max_cycles)
    return soc


def gpr(soc: Soc, index: int) -> int:
    return soc.core.regs[f"core_gpr{index}"]


class TestAluOps:
    def test_li_lui(self):
        soc = run_program("li r1, -2\nlui r2, 0x8001\nhalt")
        assert gpr(soc, 1) == 0xFFFFFFFE
        assert gpr(soc, 2) == 0x80010000

    def test_arith(self):
        soc = run_program("""
            li r1, 7
            li r2, 3
            add r3, r1, r2
            sub r4, r1, r2
            sub r5, r2, r1
            halt
        """)
        assert gpr(soc, 3) == 10
        assert gpr(soc, 4) == 4
        assert gpr(soc, 5) == (3 - 7) & 0xFFFFFFFF

    def test_logic(self):
        soc = run_program("""
            li r1, 0xFF0
            li r2, 0x0FF
            and r3, r1, r2
            or  r4, r1, r2
            xor r5, r1, r2
            halt
        """)
        assert gpr(soc, 3) == 0x0F0
        assert gpr(soc, 4) == 0xFFF
        assert gpr(soc, 5) == 0xF0F

    def test_shifts(self):
        soc = run_program("""
            li r1, 0x81
            li r2, 4
            shl r3, r1, r2
            shr r4, r1, r2
            halt
        """)
        assert gpr(soc, 3) == 0x810
        assert gpr(soc, 4) == 0x8

    def test_r0_hardwired_zero(self):
        soc = run_program("li r0, 99\nadd r1, r0, r0\nhalt")
        assert gpr(soc, 1) == 0

    def test_addi_negative(self):
        soc = run_program("li r1, 5\naddi r2, r1, -9\nhalt")
        assert gpr(soc, 2) == (5 - 9) & 0xFFFFFFFF


class TestControlFlow:
    def test_branches(self):
        soc = run_program("""
            li r1, 1
            li r2, 1
            beq r1, r2, equal
            li r3, 111
            halt
        equal:
            li r3, 222
            bne r1, r0, done
            li r3, 333
        done:
            halt
        """)
        assert gpr(soc, 3) == 222

    def test_jal_links(self):
        soc = run_program("""
            jal r7, sub
            halt
        sub:
            li r1, 5
            jmp back
        back:
            halt
        """)
        assert gpr(soc, 7) == 1
        assert gpr(soc, 1) == 5

    def test_loop(self):
        soc = run_program("""
            li r1, 5
            li r2, 0
        loop:
            add r2, r2, r1
            addi r1, r1, -1
            bne r1, r0, loop
            halt
        """)
        assert gpr(soc, 2) == 15


class TestMemoryOps:
    def test_store_load_roundtrip(self):
        soc = run_program("""
            li r1, 0x0300
            li r2, 12345
            sw r2, r1, 0
            lw r3, r1, 0
            halt
        """)
        assert gpr(soc, 3) == 12345
        assert soc.memory.read(0x0300) == 12345

    def test_offset_addressing(self):
        soc = run_program("""
            li r1, 0x0300
            li r2, 7
            sw r2, r1, 5
            lw r3, r1, 5
            halt
        """)
        assert soc.memory.read(0x0305) == 7
        assert gpr(soc, 3) == 7

    def test_memory_op_takes_four_cycles(self):
        soc = Soc()
        soc.load_program(assemble("li r1, 0x300\nsw r1, r1, 0\nhalt").words)
        soc.reset()
        soc.step()  # li
        assert soc.core.regs["core_state"] == CoreState.RUN
        soc.step()  # sw issue
        assert soc.core.regs["core_state"] == CoreState.MEM1
        soc.step()
        assert soc.core.regs["core_state"] == CoreState.MEM2
        soc.step()
        assert soc.core.regs["core_state"] == CoreState.MEM3
        soc.step()
        assert soc.core.regs["core_state"] == CoreState.RUN


class TestPrivilegeAndTraps:
    def test_boot_mode_is_privileged(self):
        soc = Soc()
        soc.load_program(assemble("halt").words)
        soc.reset()
        assert soc.core.regs["core_mode"] == 1

    def test_eret_drops_privilege(self):
        soc = run_program(f"""
            li r1, =target
            csrw {int(Csr.EPC)}, r1
            eret
        target:
            halt
        """)
        assert soc.core.regs["core_mode"] == 0

    def test_svc_raises_privilege_and_returns(self):
        soc = run_program(f"""
            li r1, =handler
            csrw {int(Csr.TRAPVEC)}, r1
            li r1, =user
            csrw {int(Csr.EPC)}, r1
            eret
        user:
            svc
            li r2, 1
            halt
        handler:
            li r3, 9
            eret
        """)
        assert gpr(soc, 3) == 9  # handler ran
        assert gpr(soc, 2) == 1  # resumed after svc
        assert soc.core.regs["core_cause"] == TrapCause.SVC

    def test_unprivileged_csrw_traps(self):
        soc = run_program(f"""
            li r1, =handler
            csrw {int(Csr.TRAPVEC)}, r1
            li r1, =user
            csrw {int(Csr.EPC)}, r1
            eret
        user:
            csrw {int(Csr.TRAPVEC)}, r1    ; privileged CSR from user mode
            li r2, 5
            halt
        handler:
            li r3, 7
            eret
        """)
        assert gpr(soc, 3) == 7
        assert gpr(soc, 2) == 5  # execution resumed past the faulting csrw
        assert soc.core.regs["core_cause"] == TrapCause.ILLEGAL_CSR

    def test_csr_read_violation_status(self):
        from repro.soc.programs import illegal_write_benchmark

        # After the benchmark's violation, VIOLFLAG/VIOLADDR are readable.
        bench = illegal_write_benchmark()
        soc = Soc()
        soc.load_program(bench.program.words)
        soc.reset()
        soc.run_until_halt()
        assert soc.mpu.regs["sticky_flag"] == 1
        assert soc.mpu.regs["viol_addr"] == bench.protected_addr
