"""System-level tests of the Soc device: checkpoints, determinism, traces."""

import pytest

from repro.errors import SimulationError
from repro.rtl.checkpoint import Checkpoint
from repro.rtl.simulator import RtlSimulator
from repro.soc.programs import illegal_write_benchmark, synthetic_workload
from repro.soc.soc import Soc


@pytest.fixture()
def soc():
    device = Soc()
    device.load_program(illegal_write_benchmark().program.words)
    device.reset()
    return device


class TestDeviceProtocol:
    def test_register_manifest_covers_all_parts(self, soc):
        specs = soc.register_specs()
        prefixes = {name.split("_")[0] for name in specs}
        assert {"core", "bus", "dma"} <= prefixes
        assert "cfg_base0" in specs and "viol_q" in specs

    def test_no_register_name_collisions(self, soc):
        specs = soc.register_specs()
        assert len(specs) == sum(
            len(part.register_specs())
            for part in (soc.core, soc.mpu, soc.bus, soc.dma)
        )

    def test_get_set_registers_roundtrip(self, soc):
        soc.run_until_halt()
        snapshot = soc.get_registers()
        soc.reset()
        soc.set_registers(snapshot)
        assert soc.get_registers() == snapshot

    def test_arrays_roundtrip(self, soc):
        soc.run_until_halt()
        arrays = soc.get_arrays()
        soc.reset()
        soc.set_arrays(arrays)
        assert soc.memory.snapshot() == arrays["ram"]

    def test_program_survives_reset(self, soc):
        word0 = soc.memory.read(0)
        soc.run_until_halt()
        soc.reset()
        assert soc.memory.read(0) == word0
        assert not soc.halted

    def test_run_until_halt_bound(self):
        device = Soc()
        # empty program: NOPs forever, never halts
        device.load_program([0])
        device.reset()
        with pytest.raises(SimulationError):
            device.run_until_halt(max_cycles=50)


class TestCheckpointFidelity:
    def test_restart_reproduces_full_state(self, soc):
        sim = RtlSimulator(soc)
        golden = sim.golden_run(200, checkpoint_interval=30)
        sim.restart_from(golden, 145)
        mid = Checkpoint.capture(soc, 145)
        sim.run_to(200)
        end_a = soc.get_registers()
        ram_a = soc.memory.snapshot()
        # do it again from the captured mid-state
        mid.restore(soc)
        sim.cycle = 145
        sim.run_to(200)
        assert soc.get_registers() == end_a
        assert soc.memory.snapshot() == ram_a

    def test_fault_then_restart_is_clean(self, soc):
        sim = RtlSimulator(soc)
        golden = sim.golden_run(200, checkpoint_interval=25)
        sim.restart_from(golden, 100)
        soc.flip_register_bit("cfg_top0", 12)
        sim.run_to(200)
        corrupted = soc.get_registers()
        sim.restart_from(golden, 200)
        assert soc.get_registers() == golden.final.registers
        assert soc.get_registers() != corrupted


class TestMpuTraceRecording:
    def test_trace_disabled_by_default(self, soc):
        soc.run_until_halt()
        assert soc.mpu_trace == []

    def test_trace_entries_are_snapshots(self, soc):
        soc.record_mpu_trace = True
        for _ in range(30):
            soc.step()
        trace = soc.mpu_trace
        assert len(trace) == 30
        # mutating the device afterwards must not alter recorded entries
        before = dict(trace[10].state)
        soc.flip_register_bit("req_addr", 0)
        assert trace[10].state == before

    def test_trace_inputs_have_all_ports(self, soc):
        soc.record_mpu_trace = True
        soc.step()
        entry = soc.mpu_trace[0]
        assert {
            "in_addr", "in_valid", "cfg_we", "cfg_wdata", "flag_clear"
        } <= set(entry.inputs)


class TestSyntheticDeterminism:
    def test_synthetic_runs_are_reproducible(self):
        results = []
        for _ in range(2):
            device = Soc()
            device.load_program(synthetic_workload(5).program.words)
            device.reset()
            device.run_until_halt()
            results.append((device.get_registers(), device.memory.snapshot()))
        assert results[0] == results[1]
