"""Golden behaviour of the attacker workloads, and fault ground truths.

These are the system-level sanity anchors: in a fault-free run every
malicious operation must be blocked *and* detected; under specific
hand-placed register faults the documented bypass paths must succeed.
"""

import pytest

from repro.core.context import find_violation_cycles
from repro.soc.programs import (
    dma_exfiltration_benchmark,
    illegal_read_benchmark,
    illegal_write_benchmark,
    reconfig_workload,
    synthetic_workload,
)
from repro.soc.soc import Soc


def fresh_soc(bench):
    soc = Soc()
    soc.load_program(bench.program.words)
    soc.reset()
    return soc


ALL_BENCHMARKS = [
    illegal_write_benchmark,
    illegal_read_benchmark,
    dma_exfiltration_benchmark,
]


class TestGoldenRuns:
    @pytest.mark.parametrize("maker", ALL_BENCHMARKS)
    def test_attack_blocked_and_detected(self, maker):
        bench = maker()
        soc = fresh_soc(bench)
        soc.run_until_halt(20000)
        assert not bench.malicious_op_committed(soc)
        assert bench.detected(soc)
        assert not bench.attack_succeeded(soc)

    @pytest.mark.parametrize("maker", ALL_BENCHMARKS)
    def test_exactly_one_violation_check(self, maker):
        bench = maker()
        soc = fresh_soc(bench)
        soc.record_mpu_trace = True
        soc.run_until_halt(20000)
        cycles = find_violation_cycles(soc.mpu_trace, 8)
        assert len(cycles) == 1

    def test_secret_planted_in_protected_memory(self):
        bench = illegal_read_benchmark()
        soc = fresh_soc(bench)
        soc.run_until_halt(20000)
        assert soc.memory.read(bench.secret_addr) == bench.secret_value

    def test_synthetic_workloads_halt_and_probe(self):
        for seed in (0, 3, 9):
            bench = synthetic_workload(seed)
            soc = fresh_soc(bench)
            soc.record_mpu_trace = True
            n = soc.run_until_halt(40000)
            assert n > 100
            assert any(e.inputs["in_valid"] for e in soc.mpu_trace)

    def test_reconfig_workload_toggles_critical_bits(self):
        bench = reconfig_workload(2)
        soc = fresh_soc(bench)
        soc.record_mpu_trace = True
        soc.run_until_halt(40000)
        top0_values = {e.state["cfg_top0"] for e in soc.mpu_trace}
        perm1_values = {e.state["cfg_perm1"] for e in soc.mpu_trace}
        assert len(top0_values & {0x0FFF, 0xFFFF}) == 2
        assert len(perm1_values & {0b1111, 0b1011}) == 2

    def test_determinism(self):
        bench = illegal_write_benchmark()
        a, b = fresh_soc(bench), fresh_soc(bench)
        a.run_until_halt()
        b.run_until_halt()
        assert a.get_registers() == b.get_registers()
        assert a.memory.snapshot() == b.memory.snapshot()


def run_with_flips(bench, flips, at_cycle, total):
    soc = fresh_soc(bench)
    for _ in range(at_cycle):
        soc.step()
    for reg, bit in flips:
        soc.flip_register_bit(reg, bit)
    for _ in range(total - at_cycle):
        soc.step()
    return soc


class TestKnownBypassPaths:
    """Ground truths for the documented fault-attack bypass paths."""

    @pytest.fixture(scope="class")
    def write_setup(self):
        bench = illegal_write_benchmark()
        soc = fresh_soc(bench)
        soc.record_mpu_trace = True
        n = soc.run_until_halt()
        target = find_violation_cycles(soc.mpu_trace, 8)[0]
        return bench, target, n + 40

    def test_cfg_top0_extension_bypasses(self, write_setup):
        bench, target, total = write_setup
        soc = run_with_flips(bench, [("cfg_top0", 12)], 60, total)
        assert bench.attack_succeeded(soc)

    def test_perm_priv_bit_clear_bypasses(self, write_setup):
        bench, target, total = write_setup
        soc = run_with_flips(bench, [("cfg_perm1", 2)], 60, total)
        assert bench.attack_succeeded(soc)

    def test_req_addr_corruption_bypasses(self, write_setup):
        bench, target, total = write_setup
        soc = run_with_flips(bench, [("req_addr", 12)], target, total)
        assert bench.attack_succeeded(soc)

    def test_decision_pair_flip_bypasses(self, write_setup):
        bench, target, total = write_setup
        soc = run_with_flips(
            bench, [("viol_q", 0), ("grant_q", 0)], target + 1, total
        )
        assert bench.attack_succeeded(soc)

    def test_viol_q_alone_blocks_silently(self, write_setup):
        bench, target, total = write_setup
        soc = run_with_flips(bench, [("viol_q", 0)], target + 1, total)
        assert not bench.attack_succeeded(soc)
        assert not bench.detected(soc)  # silent: suppressed but not committed
        assert not bench.malicious_op_committed(soc)

    def test_grant_q_alone_is_detected(self, write_setup):
        bench, target, total = write_setup
        soc = run_with_flips(bench, [("grant_q", 0)], target + 1, total)
        assert bench.malicious_op_committed(soc)
        assert bench.detected(soc)
        assert not bench.attack_succeeded(soc)

    def test_flip_after_commit_is_too_late(self, write_setup):
        bench, target, total = write_setup
        soc = run_with_flips(bench, [("cfg_top0", 12)], target + 3, total)
        assert not bench.attack_succeeded(soc)

    def test_irrelevant_register_flip_harmless(self, write_setup):
        bench, target, total = write_setup
        soc = run_with_flips(bench, [("viol_addr", 5)], 60, total)
        assert not bench.attack_succeeded(soc)
        # benchmark still behaves like golden apart from the flipped bit
        assert bench.detected(soc)
