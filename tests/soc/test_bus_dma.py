"""Tests for the bus protocol and the DMA engine."""

import pytest

from repro.soc.assembler import assemble
from repro.soc.bus import Bus, BusRequest, SRC_CORE, SRC_DMA
from repro.soc.dma import Dma, DmaState
from repro.soc.memmap import (
    DMA_REG_CTRL,
    DMA_REG_DST,
    DMA_REG_LEN,
    DMA_REG_SRC,
    DEFAULT_MEMORY_MAP,
)
from repro.soc.programs import dma_exfiltration_benchmark
from repro.soc.soc import Soc


class TestBusPipeline:
    def test_three_stage_lifecycle(self):
        bus = Bus()
        req = BusRequest(addr=0x100, write=True, wdata=5, priv=True, src=SRC_CORE)
        assert bus.status().free
        bus.step(req, None)
        assert not bus.status().free and bus.status().stage == 1
        bus.step(None, None)
        assert bus.status().stage == 2
        bus.step(None, None)
        assert bus.status().free

    def test_read_data_latched_at_commit(self):
        bus = Bus()
        bus.step(BusRequest(addr=0x10, write=False), None)
        bus.step(None, None)
        bus.step(None, 0xCAFE)  # commit cycle returns data
        assert bus.status().rdata_q == 0xCAFE

    def test_request_ignored_while_pending(self):
        bus = Bus()
        bus.step(BusRequest(addr=1, write=False), None)
        bus.step(BusRequest(addr=2, write=False), None)  # should be dropped
        assert bus.regs["bus_addr"] == 1


class TestDmaMmio:
    def test_register_readback(self):
        dma = Dma()
        dma.mmio_write(DMA_REG_SRC, 0x1111)
        dma.step(Bus().status(), None, False, None)
        assert dma.mmio_read(DMA_REG_SRC) == 0x1111

    def test_ctrl_start_resets_engine(self):
        dma = Dma()
        dma.set_registers({"dma_error": 1, "dma_cnt": 5})
        dma.mmio_write(DMA_REG_CTRL, 1)
        dma.step(Bus().status(), None, False, None)
        assert dma.regs["dma_active"] == 1
        assert dma.regs["dma_error"] == 0
        assert dma.regs["dma_cnt"] == 0

    def test_ctrl_read_encodes_active_and_error(self):
        dma = Dma()
        dma.set_registers({"dma_active": 1, "dma_error": 1})
        assert dma.mmio_read(DMA_REG_CTRL) == 0b11


def dma_copy_program(src, dst, length):
    """Privileged program (open MMIO is not needed in privileged mode);
    configures the default MPU regions first, since DMA transfers are
    checked against the user-mode rules."""
    from repro.soc.programs import _region_setup_asm

    mmio = DEFAULT_MEMORY_MAP.dma_mmio_base
    return f"""
{_region_setup_asm(DEFAULT_MEMORY_MAP.default_regions())}
        li r1, {src}
        li r2, {mmio + DMA_REG_SRC}
        sw r1, r2, 0
        li r1, {dst}
        li r2, {mmio + DMA_REG_DST}
        sw r1, r2, 0
        li r1, {length}
        li r2, {mmio + DMA_REG_LEN}
        sw r1, r2, 0
        li r1, 1
        li r2, {mmio + DMA_REG_CTRL}
        sw r1, r2, 0
        li r3, 1
    poll:
        lw r5, r2, 0
        and r5, r5, r3
        bne r5, r0, poll
        halt
    """


class TestDmaTransfers:
    def test_legal_copy_completes(self):
        soc = Soc()
        prog = assemble(dma_copy_program(0x0400, 0x0500, 3))
        soc.load_program(prog.words)
        soc.reset()
        for i in range(3):
            soc.memory.write(0x0400 + i, 100 + i)
        soc.run_until_halt(20000)
        assert [soc.memory.read(0x0500 + i) for i in range(3)] == [100, 101, 102]
        assert soc.dma.regs["dma_error"] == 0
        assert soc.dma.regs["dma_active"] == 0

    def test_dma_read_of_protected_region_blocked(self):
        """DMA transfers run unprivileged: the protected source aborts the
        engine with the error flag, and nothing is copied."""
        soc = Soc()
        secret_addr = DEFAULT_MEMORY_MAP.protected_base + 8
        prog = assemble(dma_copy_program(secret_addr, 0x0500, 1))
        soc.load_program(prog.words)
        soc.reset()
        soc.memory.write(secret_addr, 0x5EC)
        soc.run_until_halt(20000)
        assert soc.dma.regs["dma_error"] == 1
        assert soc.memory.read(0x0500) != 0x5EC
        assert soc.mpu.regs["sticky_flag"] == 1

    def test_zero_length_transfer_finishes_immediately(self):
        soc = Soc()
        prog = assemble(dma_copy_program(0x0400, 0x0500, 0))
        soc.load_program(prog.words)
        soc.reset()
        soc.run_until_halt(20000)
        assert soc.dma.regs["dma_active"] == 0
        assert soc.dma.regs["dma_error"] == 0


class TestDmaBenchmarkGolden:
    def test_exfiltration_blocked_and_detected(self):
        bench = dma_exfiltration_benchmark()
        soc = Soc()
        soc.load_program(bench.program.words)
        soc.reset()
        soc.run_until_halt(20000)
        assert not bench.attack_succeeded(soc)
        assert bench.detected(soc)
        assert soc.memory.read(bench.leak_addr) != bench.secret_value
