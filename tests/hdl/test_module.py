"""Tests for the module builder: registers, finalization, helpers."""

import pytest

from repro.errors import ElaborationError
from repro.gatesim.logic import LogicEvaluator
from repro.hdl import Module


class TestRegisters:
    def test_register_feedback_counter(self):
        m = Module("counter")
        count = m.register("count", 8, init=0)
        m.connect(count, count + 1)
        m.output("count", count)
        nl = m.finalize()
        ev = LogicEvaluator(nl)
        state = {"count": 0}
        for expected in range(1, 10):
            _outs, state = ev.step({}, state)
            assert state["count"] == expected

    def test_register_init_recorded(self):
        m = Module("t")
        r = m.register("r", 4, init=0b1010)
        m.connect(r, r)
        nl = m.finalize()
        assert nl.register_dff("r", 1).init == 1
        assert nl.register_dff("r", 0).init == 0

    def test_duplicate_register_rejected(self):
        m = Module("t")
        m.register("r", 4)
        with pytest.raises(ElaborationError):
            m.register("r", 4)

    def test_unconnected_register_fails_finalize(self):
        m = Module("t")
        m.register("r", 4)
        with pytest.raises(ElaborationError):
            m.finalize()

    def test_double_connect_rejected(self):
        m = Module("t")
        r = m.register("r", 4)
        m.connect(r, r)
        with pytest.raises(ElaborationError):
            m.connect(r, r)

    def test_width_mismatch_on_connect(self):
        m = Module("t")
        r = m.register("r", 4)
        with pytest.raises(ElaborationError):
            m.connect(r, m.const(0, 5))

    def test_connect_rejects_non_register_wire(self):
        m = Module("t")
        a = m.input("a", 4)
        with pytest.raises(ElaborationError):
            m.connect(a, m.const(0, 4))

    def test_connect_rejects_partial_register_slice(self):
        m = Module("t")
        r = m.register("r", 4)
        with pytest.raises(ElaborationError):
            m.connect(r[0:2], m.const(0, 2))


class TestFinalization:
    def test_no_edits_after_finalize(self):
        m = Module("t")
        r = m.register("r", 2)
        m.connect(r, r)
        m.finalize()
        with pytest.raises(ElaborationError):
            m.input("late", 1)
        with pytest.raises(ElaborationError):
            m.finalize()

    def test_const_bounds(self):
        m = Module("t")
        with pytest.raises(ElaborationError):
            m.const(16, 4)
        with pytest.raises(ElaborationError):
            m.const(-1, 4)


class TestHelpers:
    def test_priority_encode_lowest_wins(self):
        m = Module("t")
        reqs = [m.input(f"r{i}", 1) for i in range(3)]
        grants = m.priority_encode(reqs)
        for i, g in enumerate(grants):
            m.output(f"g{i}", g)
        ev = LogicEvaluator(m.finalize())
        outs, _ = ev.step({"r0": 0, "r1": 1, "r2": 1}, {})
        assert (outs["g0"], outs["g1"], outs["g2"]) == (0, 1, 0)
        outs, _ = ev.step({"r0": 1, "r1": 1, "r2": 1}, {})
        assert (outs["g0"], outs["g1"], outs["g2"]) == (1, 0, 0)
        outs, _ = ev.step({"r0": 0, "r1": 0, "r2": 0}, {})
        assert (outs["g0"], outs["g1"], outs["g2"]) == (0, 0, 0)

    def test_one_hot_select(self):
        m = Module("t")
        sels = [m.input(f"s{i}", 1) for i in range(2)]
        vals = [m.const(0xA, 4), m.const(0x5, 4)]
        m.output("y", m.one_hot_select(sels, vals))
        ev = LogicEvaluator(m.finalize())
        assert ev.step({"s0": 1, "s1": 0}, {})[0]["y"] == 0xA
        assert ev.step({"s0": 0, "s1": 1}, {})[0]["y"] == 0x5
        assert ev.step({"s0": 0, "s1": 0}, {})[0]["y"] == 0

    def test_one_hot_select_validation(self):
        m = Module("t")
        with pytest.raises(ElaborationError):
            m.one_hot_select([], [])
        with pytest.raises(ElaborationError):
            m.one_hot_select([m.input("s", 2)], [m.const(1, 4)])
