"""Property tests: elaborated word-level operators match Python integers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ElaborationError
from repro.gatesim.logic import LogicEvaluator
from repro.hdl import Module

WIDTH = 12
MASK = (1 << WIDTH) - 1
words = st.integers(0, MASK)


def eval_unary_design(build, a):
    """Elaborate y = build(wire_a) and evaluate with input a."""
    m = Module("t")
    wa = m.input("a", WIDTH)
    m.output("y", build(wa))
    nl = m.finalize()
    outs, _ = LogicEvaluator(nl).step({"a": a}, {})
    return outs["y"]


def eval_binary_design(build, a, b, width=WIDTH):
    m = Module("t")
    wa = m.input("a", width)
    wb = m.input("b", width)
    m.output("y", build(wa, wb))
    nl = m.finalize()
    outs, _ = LogicEvaluator(nl).step({"a": a, "b": b}, {})
    return outs["y"]


class TestBitwise:
    @given(words, words)
    @settings(max_examples=25, deadline=None)
    def test_and_or_xor(self, a, b):
        assert eval_binary_design(lambda x, y: x & y, a, b) == (a & b)
        assert eval_binary_design(lambda x, y: x | y, a, b) == (a | b)
        assert eval_binary_design(lambda x, y: x ^ y, a, b) == (a ^ b)

    @given(words)
    @settings(max_examples=15, deadline=None)
    def test_invert(self, a):
        assert eval_unary_design(lambda x: ~x, a) == (~a) & MASK

    def test_width_mismatch_rejected(self):
        m = Module("t")
        a = m.input("a", 4)
        b = m.input("b", 5)
        with pytest.raises(ElaborationError):
            _ = a & b

    def test_int_coercion(self):
        assert eval_unary_design(lambda x: x & 0x0F0, 0xABC) == 0xABC & 0x0F0


class TestArithmetic:
    @given(words, words)
    @settings(max_examples=25, deadline=None)
    def test_add_modular(self, a, b):
        assert eval_binary_design(lambda x, y: x + y, a, b) == (a + b) & MASK

    @given(words, words)
    @settings(max_examples=25, deadline=None)
    def test_sub_modular(self, a, b):
        assert eval_binary_design(lambda x, y: x - y, a, b) == (a - b) & MASK


class TestComparisons:
    @given(words, words)
    @settings(max_examples=25, deadline=None)
    def test_all_relations(self, a, b):
        assert eval_binary_design(lambda x, y: x.eq(y), a, b) == int(a == b)
        assert eval_binary_design(lambda x, y: x.ne(y), a, b) == int(a != b)
        assert eval_binary_design(lambda x, y: x.ge(y), a, b) == int(a >= b)
        assert eval_binary_design(lambda x, y: x.le(y), a, b) == int(a <= b)
        assert eval_binary_design(lambda x, y: x.lt(y), a, b) == int(a < b)
        assert eval_binary_design(lambda x, y: x.gt(y), a, b) == int(a > b)


class TestStructure:
    @given(words)
    @settings(max_examples=15, deadline=None)
    def test_slicing(self, a):
        assert eval_unary_design(lambda x: x[3], a) == (a >> 3) & 1
        assert eval_unary_design(lambda x: x[2:7], a) == (a >> 2) & 0x1F

    @given(words, st.integers(0, WIDTH + 2))
    @settings(max_examples=20, deadline=None)
    def test_const_shifts(self, a, n):
        assert eval_unary_design(lambda x: x.shl_const(n), a) == (a << n) & MASK
        assert eval_unary_design(lambda x: x.shr_const(n), a) == (a >> n) & MASK

    @given(words)
    @settings(max_examples=15, deadline=None)
    def test_zext_trunc(self, a):
        assert eval_unary_design(lambda x: x.zext(WIDTH + 4).trunc(WIDTH), a) == a

    def test_cat_order(self):
        # low word stays least significant
        m = Module("t")
        lo = m.input("lo", 4)
        hi = m.input("hi", 4)
        m.output("y", lo.cat(hi))
        outs, _ = LogicEvaluator(m.finalize()).step({"lo": 0xA, "hi": 0x5}, {})
        assert outs["y"] == 0x5A

    def test_zext_shrink_rejected(self):
        m = Module("t")
        a = m.input("a", 8)
        with pytest.raises(ElaborationError):
            a.zext(4)

    @given(words)
    @settings(max_examples=15, deadline=None)
    def test_reductions(self, a):
        assert eval_unary_design(lambda x: x.reduce_or(), a) == int(a != 0)
        assert eval_unary_design(lambda x: x.reduce_and(), a) == int(a == MASK)

    @given(st.integers(0, 1), words, words)
    @settings(max_examples=20, deadline=None)
    def test_mux(self, sel, a, b):
        m = Module("t")
        ws = m.input("s", 1)
        wa = m.input("a", WIDTH)
        wb = m.input("b", WIDTH)
        m.output("y", ws.mux(wa, wb))
        outs, _ = LogicEvaluator(m.finalize()).step(
            {"s": sel, "a": a, "b": b}, {}
        )
        assert outs["y"] == (a if sel else b)

    def test_mux_selector_must_be_single_bit(self):
        m = Module("t")
        s = m.input("s", 2)
        a = m.input("a", 4)
        with pytest.raises(ElaborationError):
            s.mux(a, a)
