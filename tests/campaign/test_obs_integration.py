"""Observability integration with the campaign runner: merged-metric
determinism across worker counts and interruption, hook-chain ordering,
the stopping-rule overlap warning, and the metrics exports."""

import io
import logging
import multiprocessing

import pytest

from repro.campaign import (
    CampaignHooks,
    CampaignRunner,
    CampaignSpec,
    ConsoleProgress,
    HookChain,
    ObsHooks,
    RunStore,
    StoppingConfig,
)
from repro.core.engine import EngineConfig
from repro.obs import (
    MetricsRegistry,
    Tracer,
    deterministic_view,
    load_metrics_jsonl,
    reset_warn_once,
)

from tests.campaign.stubs import BernoulliEngine, InstrumentedEngine, StubSampler

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)

SPEC = CampaignSpec(
    seed=5,
    chunk_size=40,
    stopping=StoppingConfig(mode="fixed", n_samples=400),
)


def run_spec(spec=SPEC, store=None, hooks=None, n_workers=1, engine=None,
             tracer=None):
    return CampaignRunner(
        spec,
        store=store,
        hooks=hooks,
        engine=engine or InstrumentedEngine(p=0.3),
        sampler=StubSampler(),
        n_workers=n_workers,
        poll_interval_s=0.1,
        tracer=tracer,
    ).run()


class TestMergedMetrics:
    def test_result_carries_merged_snapshot(self):
        result = run_spec()
        registry = MetricsRegistry.from_snapshot(result.metrics)
        assert registry.value("engine_samples_total") == 400
        assert registry.value("campaign_samples_merged_total") == 400
        assert registry.value("campaign_chunks_merged_total") == 10
        assert registry.value("campaign_ssf") == result.ssf
        # Wall-clock metrics came along too (non-deterministic).
        assert "engine_stage_seconds" in registry

    def test_uninstrumented_engine_rebuilds_from_records(self):
        """Chunks without serialized metrics still contribute the full
        deterministic subset, rebuilt from their records."""
        instrumented = run_spec(engine=InstrumentedEngine(p=0.3))
        plain = run_spec(engine=BernoulliEngine(p=0.3))
        assert deterministic_view(plain.metrics) == deterministic_view(
            instrumented.metrics
        )

    @needs_fork
    def test_worker_count_does_not_change_merged_metrics(self):
        """The tentpole determinism property: 1 worker and 4 workers
        produce identical merged deterministic metrics."""
        sequential = run_spec(n_workers=1)
        parallel = run_spec(n_workers=4)
        assert deterministic_view(parallel.metrics) == deterministic_view(
            sequential.metrics
        )

    def test_histograms_survive_the_worker_roundtrip(self):
        result = run_spec()
        registry = MetricsRegistry.from_snapshot(result.metrics)
        hist = [
            d for d in result.metrics if d["name"] == "engine_flipped_bits"
        ]
        assert hist and hist[0]["count"] > 0
        assert registry.value("engine_success_total") == sum(
            r.e for r in result.records
        )


class InterruptAfter(CampaignHooks):
    def __init__(self, chunks):
        self.remaining = chunks

    def on_batch(self, chunk_index, n_new, estimator, decision=None):
        self.remaining -= 1
        if self.remaining <= 0:
            raise KeyboardInterrupt


class TestResumeMetricsEquality:
    @pytest.mark.parametrize("engine_cls", [InstrumentedEngine, BernoulliEngine])
    def test_interrupted_resume_matches_uninterrupted(self, tmp_path, engine_cls):
        """Acceptance criterion: a resumed campaign's merged metrics
        (deterministic view) equal an uninterrupted run's."""
        baseline = run_spec(engine=engine_cls(p=0.3))

        store = RunStore.create(tmp_path, SPEC, run_id="kill")
        with pytest.raises(KeyboardInterrupt):
            run_spec(store=store, hooks=InterruptAfter(4),
                     engine=engine_cls(p=0.3))
        resumed = CampaignRunner.resume(
            store, engine=engine_cls(p=0.3), sampler=StubSampler(),
            n_workers=1,
        )
        assert deterministic_view(resumed.metrics) == deterministic_view(
            baseline.metrics
        )

    def test_exported_metrics_jsonl_matches_result(self, tmp_path):
        store = RunStore.create(tmp_path, SPEC, run_id="export")
        result = run_spec(store=store)
        exported = load_metrics_jsonl(store.path / "metrics.jsonl")
        assert exported == result.metrics
        assert (store.path / "metrics.prom").read_text().startswith("# TYPE")


class OrderRecorder(CampaignHooks):
    def __init__(self, name, trace):
        self.name = name
        self.trace = trace

    def bind(self, metrics, tracer=None):
        self.trace.append((self.name, "bind"))

    def on_batch(self, chunk_index, n_new, estimator, decision=None):
        self.trace.append((self.name, "batch"))

    def on_checkpoint(self, snapshot):
        self.trace.append((self.name, "checkpoint"))

    def on_stop(self, decision, estimator):
        self.trace.append((self.name, "stop"))


class TestHookChainOrdering:
    def test_every_event_fires_hooks_in_chain_order(self):
        trace = []
        chain = HookChain(
            OrderRecorder("a", trace), None, OrderRecorder("b", trace)
        )
        chain.bind(MetricsRegistry())
        chain.on_batch(0, 10, None)
        chain.on_checkpoint({})
        chain.on_stop(None, None)
        assert trace == [
            ("a", "bind"), ("b", "bind"),
            ("a", "batch"), ("b", "batch"),
            ("a", "checkpoint"), ("b", "checkpoint"),
            ("a", "stop"), ("b", "stop"),
        ]

    def test_obs_hook_updates_registry_before_user_hooks_run(self):
        """The runner chains ObsHooks ahead of user hooks, so a display
        hook reading the registry sees the *current* chunk merged."""
        registry = MetricsRegistry()
        seen = []

        class Reader(CampaignHooks):
            def on_batch(self, chunk_index, n_new, estimator, decision=None):
                seen.append(registry.value("campaign_samples_merged_total"))

        CampaignRunner(
            CampaignSpec(
                seed=5, chunk_size=40,
                stopping=StoppingConfig(mode="fixed", n_samples=120),
            ),
            hooks=Reader(),
            engine=BernoulliEngine(p=0.3),
            sampler=StubSampler(),
            n_workers=1,
            metrics=registry,
        ).run()
        assert seen == [40, 80, 120]

    def test_console_progress_reads_registry_and_shows_rate(self):
        stream = io.StringIO()
        run_spec(hooks=ConsoleProgress(stream=stream))
        text = stream.getvalue()
        assert "n=400" in text          # from the merged registry
        assert "rate=" in text          # samples/sec between renders
        assert "stop:" in text


class TestStoppingOverlapWarning:
    @pytest.fixture(autouse=True)
    def _fresh(self):
        reset_warn_once()
        yield
        reset_warn_once()

    def test_engine_stop_under_campaign_warns_once(self, caplog):
        engine = BernoulliEngine(p=0.3)
        engine.config = EngineConfig(stop_on_convergence=True)
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            run_spec(engine=engine)
            run_spec(engine=engine)
        assert caplog.text.count("active under campaign orchestration") == 1

    def test_no_warning_without_overlap(self, caplog):
        engine = BernoulliEngine(p=0.3)
        engine.config = EngineConfig(stop_on_convergence=False)
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            run_spec(engine=engine)
        assert "stop_on_convergence" not in caplog.text


class TestTracing:
    def test_runner_spans_exported_to_chrome_trace(self, tmp_path):
        store = RunStore.create(tmp_path, SPEC, run_id="traced")
        tracer = Tracer()
        run_spec(store=store, tracer=tracer)
        names = {event.name for event in tracer.events}
        assert {"chunk.run", "chunk.append", "chunk.merge"} <= names
        trace_file = store.path / "trace.json"
        assert trace_file.exists()

    def test_spec_trace_flag_enables_recording(self, tmp_path):
        spec = CampaignSpec(
            seed=5, chunk_size=40, trace=True,
            stopping=StoppingConfig(mode="fixed", n_samples=80),
        )
        store = RunStore.create(tmp_path, spec, run_id="flag")
        runner = CampaignRunner(
            spec, store=store, engine=BernoulliEngine(p=0.3),
            sampler=StubSampler(), n_workers=1,
        )
        assert runner.tracer.enabled
        runner.run()
        assert (store.path / "trace.json").exists()

    def test_no_trace_file_without_tracer(self, tmp_path):
        store = RunStore.create(tmp_path, SPEC, run_id="untraced")
        run_spec(store=store)
        assert not (store.path / "trace.json").exists()
        assert (store.path / "metrics.jsonl").exists()
