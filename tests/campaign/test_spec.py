"""Tests for the declarative campaign spec."""

import pytest

from repro.campaign import CampaignSpec, StoppingConfig, load_spec
from repro.errors import EvaluationError


class TestStoppingConfig:
    def test_defaults_are_fixed_mode(self):
        config = StoppingConfig()
        assert config.mode == "fixed"
        assert config.sample_cap == config.n_samples

    def test_adaptive_cap_is_max_samples(self):
        config = StoppingConfig(mode="risk", max_samples=7000)
        assert config.sample_cap == 7000

    def test_unknown_mode_rejected(self):
        with pytest.raises(EvaluationError):
            StoppingConfig(mode="vibes")

    def test_bad_budgets_rejected(self):
        with pytest.raises(EvaluationError):
            StoppingConfig(mode="fixed", n_samples=0)
        with pytest.raises(EvaluationError):
            StoppingConfig(mode="risk", max_samples=0)


class TestCampaignSpec:
    def test_json_roundtrip(self):
        spec = CampaignSpec(
            benchmark="read",
            variant="dual+parity",
            sampler="cone",
            window=30,
            seed=99,
            chunk_size=25,
            stopping=StoppingConfig(mode="ci", ci_width=0.03, max_samples=4000),
        )
        restored = CampaignSpec.from_json(spec.to_json())
        assert restored == spec

    def test_load_spec_from_file(self, tmp_path):
        spec = CampaignSpec(seed=4)
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        assert load_spec(path) == spec

    def test_load_spec_bad_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("{nope")
        with pytest.raises(EvaluationError):
            load_spec(path)

    def test_invalid_fields_rejected(self):
        with pytest.raises(EvaluationError):
            CampaignSpec(chunk_size=0)
        with pytest.raises(EvaluationError):
            CampaignSpec(sampler="quantum")


class TestChunkPlan:
    def test_plan_covers_cap_exactly(self):
        spec = CampaignSpec(
            chunk_size=30,
            stopping=StoppingConfig(mode="fixed", n_samples=100),
        )
        sizes = spec.chunk_sizes()
        assert sizes == (30, 30, 30, 10)
        assert sum(sizes) == 100

    def test_plan_is_pure_function_of_spec(self):
        spec = CampaignSpec(
            chunk_size=7,
            stopping=StoppingConfig(mode="risk", max_samples=50),
        )
        assert spec.chunk_sizes() == spec.chunk_sizes()
        assert sum(spec.chunk_sizes()) == 50
