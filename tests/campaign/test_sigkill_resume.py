"""The acceptance scenario: SIGKILL a campaign process mid-run, then
``campaign resume`` continues it to the exact same final estimate.

The child process runs a real :class:`CampaignRunner` against a durable
:class:`RunStore`; the parent waits for the append-only log to accumulate
a few chunks and delivers ``SIGKILL`` (no cleanup handlers run, exactly
like an OOM-kill).  The resumed run must be bit-identical to an
uninterrupted one.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign import CampaignRunner, CampaignSpec, RunStore, StoppingConfig

from tests.campaign.stubs import BernoulliEngine, StubSampler

pytestmark = pytest.mark.skipif(
    not hasattr(signal, "SIGKILL"), reason="needs POSIX SIGKILL"
)

SPEC = CampaignSpec(
    seed=21,
    chunk_size=40,
    stopping=StoppingConfig(
        mode="risk", epsilon=0.05, delta=0.2, min_samples=80, max_samples=4000
    ),
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent

CHILD_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
sys.path.insert(0, {root!r})
from repro.campaign import CampaignRunner, RunStore
from tests.campaign.stubs import BernoulliEngine, StubSampler

store = RunStore.open({runs_dir!r}, {run_id!r})
runner = CampaignRunner(
    store.load_spec(),
    store=store,
    engine=BernoulliEngine(p=0.3, delay_s=0.3),
    sampler=StubSampler(),
    n_workers=1,
)
runner.run()
"""


def wait_for_chunks(store: RunStore, n: int, timeout_s: float = 30.0) -> int:
    log = store.path / "log.jsonl"
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if log.exists():
            lines = [l for l in log.read_text().splitlines() if l]
            if len(lines) >= n:
                return len(lines)
        time.sleep(0.05)
    raise AssertionError(f"campaign never reached {n} logged chunks")


class TestSigkillResume:
    def test_sigkilled_run_resumes_to_identical_estimate(self, tmp_path):
        baseline = CampaignRunner(
            SPEC,
            engine=BernoulliEngine(p=0.3),
            sampler=StubSampler(),
            n_workers=1,
        ).run()

        store = RunStore.create(tmp_path, SPEC, run_id="victim")
        script = CHILD_SCRIPT.format(
            src=str(REPO_ROOT / "src"),
            root=str(REPO_ROOT),
            runs_dir=str(tmp_path),
            run_id="victim",
        )
        child = subprocess.Popen([sys.executable, "-c", script])
        try:
            wait_for_chunks(store, 2)
            os.kill(child.pid, signal.SIGKILL)
        finally:
            child.wait(timeout=30)
        assert child.returncode == -signal.SIGKILL

        # The kill landed mid-campaign: some chunks logged, not all.
        total_chunks = -(-baseline.n_samples // SPEC.chunk_size)
        logged = [
            line
            for line in (store.path / "log.jsonl").read_text().splitlines()
            if line
        ]
        assert 0 < len(logged) < total_chunks
        first = json.loads(logged[0])
        assert first["chunk"] == 0

        resumed = CampaignRunner.resume(
            store,
            engine=BernoulliEngine(p=0.3),
            sampler=StubSampler(),
            n_workers=1,
        )
        assert resumed.n_samples == baseline.n_samples
        assert resumed.ssf == baseline.ssf
        assert [r.e for r in resumed.records] == [
            r.e for r in baseline.records
        ]
        assert store.read_checkpoint()["status"] == "complete"

        # Acceptance criterion: the SIGKILL-resumed campaign's merged
        # metrics (deterministic view — counters, histograms, progress
        # gauges) equal the uninterrupted run's, and the exported
        # metrics.jsonl agrees with the in-memory result.
        from repro.obs import deterministic_view, load_metrics_jsonl

        assert deterministic_view(resumed.metrics) == deterministic_view(
            baseline.metrics
        )
        exported = load_metrics_jsonl(store.path / "metrics.jsonl")
        assert deterministic_view(exported) == deterministic_view(
            baseline.metrics
        )
