"""Tests for the work-stealing shard scheduler and its seed policy."""

import multiprocessing
import os

import numpy as np
import pytest

from repro.campaign import Chunk, WorkStealingScheduler, chunk_seed_sequence
from repro.errors import EvaluationError
from repro.utils.rng import as_generator, spawn_seed_sequences

from tests.campaign.stubs import BernoulliEngine, StubSampler

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)


class TestSeedPolicy:
    def test_matches_seed_sequence_spawn(self):
        """chunk_seed_sequence(s, i) is SeedSequence(s).spawn(i+1)[i]."""
        children = np.random.SeedSequence(7).spawn(5)
        for index, child in enumerate(children):
            direct = chunk_seed_sequence(7, index)
            assert (
                direct.generate_state(4).tolist()
                == child.generate_state(4).tolist()
            )

    def test_no_cross_campaign_collision(self):
        """The old ``seed + index`` scheme made (seed=0, chunk=1) reuse
        (seed=1, chunk=0)'s stream.  Spawned sequences must not."""
        a = as_generator(chunk_seed_sequence(0, 1)).random(8)
        b = as_generator(chunk_seed_sequence(1, 0)).random(8)
        assert not np.allclose(a, b)

    def test_spawn_seed_sequences_helper(self):
        streams = spawn_seed_sequences(3, 4)
        assert len(streams) == 4
        draws = [as_generator(s).random() for s in streams]
        assert len(set(draws)) == 4


class TestSequentialPath:
    def test_runs_all_chunks_in_order(self):
        scheduler = WorkStealingScheduler(
            BernoulliEngine(), StubSampler(), seed=1, n_workers=1
        )
        seen = []
        scheduler.run(
            [Chunk(0, 5), Chunk(1, 5), Chunk(2, 3)],
            lambda result: seen.append(result.index) or True,
        )
        assert seen == [0, 1, 2]
        assert scheduler.n_workers_used == 1

    def test_cancellation_stops_immediately(self):
        scheduler = WorkStealingScheduler(
            BernoulliEngine(), StubSampler(), seed=1, n_workers=1
        )
        seen = []

        def consume(result):
            seen.append(result.index)
            return result.index < 1

        scheduler.run([Chunk(i, 2) for i in range(10)], consume)
        assert seen == [0, 1]

    def test_start_index_skips_prefix(self):
        scheduler = WorkStealingScheduler(
            BernoulliEngine(), StubSampler(), seed=1, n_workers=1
        )
        seen = []
        scheduler.run(
            [Chunk(i, 2) for i in range(4)],
            lambda result: seen.append(result.index) or True,
            start_index=2,
        )
        assert seen == [2, 3]


@needs_fork
class TestPoolPath:
    def test_all_chunks_complete(self):
        scheduler = WorkStealingScheduler(
            BernoulliEngine(), StubSampler(), seed=5, n_workers=2,
            poll_interval_s=0.1,
        )
        results = {}
        scheduler.run(
            [Chunk(i, 4) for i in range(6)],
            lambda r: results.update({r.index: r.records}) or True,
        )
        assert sorted(results) == list(range(6))
        assert all(len(records) == 4 for records in results.values())
        assert scheduler.n_workers_used == 2

    def test_results_identical_to_sequential(self):
        """Work stealing must not change the sample streams."""
        chunks = [Chunk(i, 5) for i in range(5)]

        def collect(n_workers):
            scheduler = WorkStealingScheduler(
                BernoulliEngine(), StubSampler(), seed=11,
                n_workers=n_workers, poll_interval_s=0.1,
            )
            out = {}
            scheduler.run(
                chunks, lambda r: out.update({r.index: r.records}) or True
            )
            return {
                i: [rec.e for rec in records] for i, records in out.items()
            }

        assert collect(1) == collect(3)

    def test_worker_death_raises_instead_of_hanging(self):
        class DyingEngine:
            def evaluate(self, sampler, n_samples, seed=None, progress=None):
                os._exit(3)

        scheduler = WorkStealingScheduler(
            DyingEngine(), StubSampler(), seed=1, n_workers=2,
            poll_interval_s=0.1,
        )
        with pytest.raises(EvaluationError, match="died"):
            scheduler.run(
                [Chunk(i, 2) for i in range(4)], lambda r: True
            )

    def test_worker_exception_surfaced(self):
        class FailingEngine:
            def evaluate(self, sampler, n_samples, seed=None, progress=None):
                raise ValueError("boom")

        scheduler = WorkStealingScheduler(
            FailingEngine(), StubSampler(), seed=1, n_workers=2,
            poll_interval_s=0.1,
        )
        with pytest.raises(EvaluationError, match="boom"):
            scheduler.run(
                [Chunk(i, 2) for i in range(4)], lambda r: True
            )

    def test_cancellation_tears_pool_down(self):
        scheduler = WorkStealingScheduler(
            BernoulliEngine(delay_s=0.05), StubSampler(), seed=1,
            n_workers=2, poll_interval_s=0.1,
        )
        seen = []
        scheduler.run(
            [Chunk(i, 2) for i in range(50)],
            lambda r: seen.append(r.index) or len(seen) < 3,
        )
        # Far fewer than 50 chunks consumed: the pool stopped early.
        assert len(seen) <= 10
