"""Tests for the adaptive stopping rules."""

import pytest

from repro.attack.spec import AttackSample
from repro.campaign import (
    BoundedRule,
    CiWidthRule,
    FixedSampleRule,
    RiskTargetRule,
    StoppingConfig,
    build_stopping_rule,
)
from repro.errors import EvaluationError
from repro.sampling.estimator import SsfEstimator
from repro.utils.stats import samples_for_risk


def estimator_with(successes: int, total: int) -> SsfEstimator:
    estimator = SsfEstimator()
    sample = AttackSample(t=0, centre=0, radius_um=3.0, weight=1.0)
    for i in range(total):
        estimator.push(sample, 1 if i < successes else 0)
    return estimator


class TestFixedSampleRule:
    def test_stops_exactly_at_budget(self):
        rule = FixedSampleRule(100)
        assert not rule.check(estimator_with(5, 99)).stop
        decision = rule.check(estimator_with(5, 100))
        assert decision.stop
        assert decision.target_samples == 100


class TestRiskTargetRule:
    def test_warmup_blocks_early_stop(self):
        # All-zero prefix has sigma^2 = 0; without the warm-up the bound
        # would be met after a single sample.
        rule = RiskTargetRule(epsilon=0.1, delta=0.1, min_samples=50)
        assert not rule.check(estimator_with(0, 10)).stop

    def test_stops_when_chebyshev_bound_met(self):
        rule = RiskTargetRule(epsilon=0.1, delta=0.25, min_samples=10)
        estimator = estimator_with(30, 100)
        needed = samples_for_risk(estimator.variance, 0.1, 0.25)
        decision = rule.check(estimator)
        assert needed <= 100
        assert decision.stop
        assert decision.target_samples == max(needed, 10)

    def test_reports_target_while_running(self):
        rule = RiskTargetRule(epsilon=0.01, delta=0.05, min_samples=10)
        decision = rule.check(estimator_with(30, 100))
        assert not decision.stop
        assert decision.target_samples > 100


class TestCiWidthRule:
    def test_stops_on_narrow_interval(self):
        rule = CiWidthRule(width=0.5, min_samples=10)
        assert rule.check(estimator_with(5, 100)).stop

    def test_keeps_going_on_wide_interval(self):
        rule = CiWidthRule(width=0.001, min_samples=10)
        assert not rule.check(estimator_with(5, 100)).stop


class TestBoundedRule:
    def test_cap_fires_when_inner_never_converges(self):
        rule = BoundedRule(CiWidthRule(width=1e-9, min_samples=1), 50)
        decision = rule.check(estimator_with(10, 50))
        assert decision.stop
        assert "cap" in decision.reason

    def test_inner_decision_wins_before_cap(self):
        rule = BoundedRule(FixedSampleRule(20), 100)
        assert rule.check(estimator_with(2, 20)).stop


class TestBuildStoppingRule:
    @pytest.mark.parametrize("mode", ["fixed", "risk", "ci"])
    def test_all_modes_build(self, mode):
        rule = build_stopping_rule(StoppingConfig(mode=mode))
        assert isinstance(rule, BoundedRule)
        assert rule.describe()

    def test_unknown_mode_rejected(self):
        class Broken:
            mode = "nope"

        with pytest.raises(EvaluationError):
            build_stopping_rule(Broken())
