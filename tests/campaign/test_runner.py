"""End-to-end tests for the campaign runner: determinism, durability,
adaptive stopping."""

import multiprocessing

import pytest

from repro.campaign import (
    CampaignHooks,
    CampaignRunner,
    CampaignSpec,
    ConsoleProgress,
    HookChain,
    RunStore,
    StoppingConfig,
)
from repro.errors import EvaluationError
from repro.utils.stats import samples_for_risk

from tests.campaign.stubs import BernoulliEngine, StubSampler

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)

EPSILON, DELTA = 0.05, 0.2

ADAPTIVE_SPEC = CampaignSpec(
    seed=3,
    chunk_size=50,
    stopping=StoppingConfig(
        mode="risk",
        epsilon=EPSILON,
        delta=DELTA,
        min_samples=100,
        max_samples=5000,
    ),
)

FIXED_SPEC = CampaignSpec(
    seed=3,
    chunk_size=50,
    stopping=StoppingConfig(mode="fixed", n_samples=5000),
)


def run_spec(spec, store=None, hooks=None, n_workers=1, engine=None):
    runner = CampaignRunner(
        spec,
        store=store,
        hooks=hooks,
        engine=engine or BernoulliEngine(p=0.3),
        sampler=StubSampler(),
        n_workers=n_workers,
        poll_interval_s=0.1,
    )
    return runner.run()


class TestAdaptiveStopping:
    def test_high_ssf_scenario_stops_early(self):
        """The acceptance scenario: a high-SSF workload converges in
        measurably fewer samples than the fixed-N baseline while meeting
        the same (eps, delta) Chebyshev target."""
        adaptive = run_spec(ADAPTIVE_SPEC)
        fixed = run_spec(FIXED_SPEC)
        assert fixed.n_samples == 5000
        assert adaptive.n_samples < fixed.n_samples / 2
        # The target is actually met at the stop point.
        bound = samples_for_risk(adaptive.variance, EPSILON, DELTA)
        assert adaptive.n_samples >= bound
        # Same engine, same seed policy: the adaptive run's samples are a
        # prefix of the fixed run's.
        prefix = [r.e for r in fixed.records][: adaptive.n_samples]
        assert [r.e for r in adaptive.records] == prefix

    def test_low_ssf_scenario_hits_the_cap(self):
        spec = CampaignSpec(
            seed=3,
            chunk_size=50,
            stopping=StoppingConfig(
                mode="risk",
                epsilon=0.0001,
                delta=0.01,
                min_samples=100,
                max_samples=500,
            ),
        )
        result = run_spec(spec)
        assert result.n_samples == 500
        assert "cap" in result.strategy


class InterruptAfter(CampaignHooks):
    """Simulate dying mid-run after N consumed chunks."""

    def __init__(self, chunks: int):
        self.remaining = chunks

    def on_batch(self, chunk_index, n_new, estimator, decision=None):
        self.remaining -= 1
        if self.remaining <= 0:
            raise KeyboardInterrupt


class TestResume:
    def test_interrupted_run_resumes_to_identical_result(self, tmp_path):
        baseline = run_spec(ADAPTIVE_SPEC)

        store = RunStore.create(tmp_path, ADAPTIVE_SPEC, run_id="kill")
        with pytest.raises(KeyboardInterrupt):
            run_spec(ADAPTIVE_SPEC, store=store, hooks=InterruptAfter(3))
        checkpoint = store.read_checkpoint()
        assert checkpoint["status"] == "interrupted"
        assert 0 < checkpoint["n_samples"] < baseline.n_samples

        resumed = CampaignRunner.resume(
            store,
            engine=BernoulliEngine(p=0.3),
            sampler=StubSampler(),
            n_workers=1,
        )
        assert resumed.n_samples == baseline.n_samples
        assert resumed.ssf == baseline.ssf
        assert [r.e for r in resumed.records] == [
            r.e for r in baseline.records
        ]
        assert store.read_checkpoint()["status"] == "complete"

    def test_resume_of_finished_run_is_a_noop(self, tmp_path):
        store = RunStore.create(tmp_path, ADAPTIVE_SPEC, run_id="done")
        finished = run_spec(ADAPTIVE_SPEC, store=store)

        class NoMoreWork:
            def evaluate(self, *args, **kwargs):
                raise AssertionError("resume of a finished run ran samples")

        resumed = CampaignRunner.resume(
            store, engine=NoMoreWork(), sampler=StubSampler(), n_workers=1
        )
        assert resumed.ssf == finished.ssf
        assert resumed.n_samples == finished.n_samples

    def test_resume_without_store_rejected(self):
        runner = CampaignRunner(
            ADAPTIVE_SPEC, engine=BernoulliEngine(), sampler=StubSampler()
        )
        with pytest.raises(EvaluationError):
            runner.run(resume=True)


@needs_fork
class TestParallelDeterminism:
    def test_worker_count_does_not_change_the_estimate(self, tmp_path):
        sequential = run_spec(ADAPTIVE_SPEC, n_workers=1)
        parallel = run_spec(ADAPTIVE_SPEC, n_workers=3)
        assert parallel.n_samples == sequential.n_samples
        assert parallel.ssf == sequential.ssf
        assert [r.e for r in parallel.records] == [
            r.e for r in sequential.records
        ]

    def test_interrupt_then_parallel_resume(self, tmp_path):
        baseline = run_spec(ADAPTIVE_SPEC)
        store = RunStore.create(tmp_path, ADAPTIVE_SPEC, run_id="pkill")
        with pytest.raises(KeyboardInterrupt):
            run_spec(ADAPTIVE_SPEC, store=store, hooks=InterruptAfter(2))
        resumed = CampaignRunner.resume(
            store,
            engine=BernoulliEngine(p=0.3),
            sampler=StubSampler(),
            n_workers=3,
        )
        assert resumed.ssf == baseline.ssf
        assert resumed.n_samples == baseline.n_samples


class Recorder(CampaignHooks):
    def __init__(self):
        self.batches = []
        self.checkpoints = []
        self.stops = []

    def on_batch(self, chunk_index, n_new, estimator, decision=None):
        self.batches.append((chunk_index, n_new, estimator.n_samples))

    def on_checkpoint(self, snapshot):
        self.checkpoints.append(snapshot)

    def on_stop(self, decision, estimator):
        self.stops.append(decision)


class TestHooksAndCheckpoints:
    def test_hooks_fire_in_order(self, tmp_path):
        store = RunStore.create(tmp_path, ADAPTIVE_SPEC, run_id="hooks")
        recorder = Recorder()
        result = run_spec(ADAPTIVE_SPEC, store=store, hooks=recorder)
        assert [b[0] for b in recorder.batches] == list(
            range(len(recorder.batches))
        )
        assert sum(b[1] for b in recorder.batches) == result.n_samples
        assert len(recorder.stops) == 1
        assert recorder.stops[0].stop
        assert recorder.checkpoints[-1]["status"] == "complete"
        assert recorder.checkpoints[-1]["n_samples"] == result.n_samples

    def test_console_progress_renders(self, tmp_path, capsys):
        import io

        stream = io.StringIO()
        hooks = HookChain(ConsoleProgress(stream=stream), Recorder())
        run_spec(ADAPTIVE_SPEC, hooks=hooks)
        text = stream.getvalue()
        assert "ssf=" in text
        assert "stop:" in text

    def test_store_log_is_contiguous_prefix(self, tmp_path):
        store = RunStore.create(tmp_path, ADAPTIVE_SPEC, run_id="log")
        result = run_spec(ADAPTIVE_SPEC, store=store)
        replayed = list(store.replay())
        assert [index for index, _ in replayed] == list(range(len(replayed)))
        assert sum(len(records) for _, records in replayed) == result.n_samples
