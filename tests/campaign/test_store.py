"""Tests for the durable run store."""

import json

import pytest

from repro.attack.spec import AttackSample
from repro.campaign import (
    CampaignSpec,
    RunStore,
    record_from_dict,
    record_to_dict,
)
from repro.core.results import OutcomeCategory, SampleRecord
from repro.errors import EvaluationError


def make_record(e=1, weight=2.5):
    return SampleRecord(
        sample=AttackSample(t=3, centre=17, radius_um=5.0, weight=weight),
        e=e,
        category=OutcomeCategory.NEEDS_RTL if e else OutcomeCategory.MASKED,
        flipped_bits=frozenset({("viol_q", 0), ("cfg_top0", 3)}),
        injection_cycle=42,
        n_pulses_injected=7,
        n_pulses_latched=2,
        analytical=bool(e),
    )


class TestRecordSerialization:
    def test_roundtrip_preserves_everything(self):
        record = make_record()
        restored = record_from_dict(record_to_dict(record))
        assert restored == record
        assert restored.contribution == record.contribution

    def test_json_compatible(self):
        payload = json.dumps(record_to_dict(make_record()))
        assert record_from_dict(json.loads(payload)) == make_record()


class TestRunStoreLifecycle:
    def test_create_persists_spec(self, tmp_path):
        spec = CampaignSpec(seed=17, chunk_size=10)
        store = RunStore.create(tmp_path, spec, run_id="alpha")
        assert store.run_id == "alpha"
        assert RunStore.open(tmp_path, "alpha").load_spec() == spec

    def test_create_rejects_duplicate(self, tmp_path):
        RunStore.create(tmp_path, CampaignSpec(), run_id="dup")
        with pytest.raises(EvaluationError):
            RunStore.create(tmp_path, CampaignSpec(), run_id="dup")

    def test_open_missing_run(self, tmp_path):
        with pytest.raises(EvaluationError):
            RunStore.open(tmp_path, "ghost")

    def test_list_runs(self, tmp_path):
        assert RunStore.list_runs(tmp_path / "void") == []
        RunStore.create(tmp_path, CampaignSpec(), run_id="b")
        RunStore.create(tmp_path, CampaignSpec(), run_id="a")
        assert RunStore.list_runs(tmp_path) == ["a", "b"]


class TestLogReplay:
    def test_append_then_replay(self, tmp_path):
        store = RunStore.create(tmp_path, CampaignSpec(), run_id="r")
        store.append_chunk(0, [make_record(1), make_record(0)])
        store.append_chunk(1, [make_record(0)])
        replayed = list(store.replay())
        assert [index for index, _ in replayed] == [0, 1]
        assert [len(records) for _, records in replayed] == [2, 1]
        assert replayed[0][1][0] == make_record(1)

    def test_empty_log(self, tmp_path):
        store = RunStore.create(tmp_path, CampaignSpec(), run_id="r")
        assert list(store.replay()) == []

    def test_torn_final_append_discarded(self, tmp_path):
        """A crash mid-append leaves a truncated last line; replay must
        recover the intact prefix."""
        store = RunStore.create(tmp_path, CampaignSpec(), run_id="r")
        store.append_chunk(0, [make_record()])
        store.append_chunk(1, [make_record()])
        log = store.path / "log.jsonl"
        text = log.read_text()
        log.write_text(text + '{"chunk": 2, "records": [{"t"')
        assert [index for index, _ in store.replay()] == [0, 1]

    def test_non_contiguous_log_rejected(self, tmp_path):
        store = RunStore.create(tmp_path, CampaignSpec(), run_id="r")
        store.append_chunk(0, [make_record()])
        store.append_chunk(2, [make_record()])
        with pytest.raises(EvaluationError):
            list(store.replay())

    def test_corrupt_interior_line_rejected(self, tmp_path):
        store = RunStore.create(tmp_path, CampaignSpec(), run_id="r")
        store.append_chunk(0, [make_record()])
        log = store.path / "log.jsonl"
        log.write_text("garbage\n" + log.read_text())
        with pytest.raises(EvaluationError):
            list(store.replay())


class TestMetricsPersistence:
    def chunk_metrics(self, records):
        from repro.obs import metrics_from_records

        return metrics_from_records(records).snapshot()

    def test_chunk_metrics_roundtrip_through_log(self, tmp_path):
        store = RunStore.create(tmp_path, CampaignSpec(), run_id="r")
        records = [make_record(1), make_record(0)]
        snapshot = self.chunk_metrics(records)
        store.append_chunk(0, records, metrics=snapshot)
        (entry,) = store.replay_chunks()
        assert entry.index == 0
        assert entry.metrics == snapshot
        assert entry.records == records

    def test_metricless_log_lines_replay_as_none(self, tmp_path):
        """Lines written before observability existed (or by unobserved
        engines) must still replay."""
        store = RunStore.create(tmp_path, CampaignSpec(), run_id="r")
        store.append_chunk(0, [make_record()])
        (entry,) = store.replay_chunks()
        assert entry.metrics is None

    def test_write_then_read_metrics(self, tmp_path):
        from repro.obs import MetricsRegistry

        store = RunStore.create(tmp_path, CampaignSpec(), run_id="r")
        assert store.read_metrics() == []
        registry = MetricsRegistry()
        registry.counter("engine_samples_total").inc(12)
        store.write_metrics(registry)
        assert store.read_metrics() == registry.snapshot()
        assert "engine_samples_total 12" in (
            store.path / "metrics.prom"
        ).read_text()

    def test_write_trace(self, tmp_path):
        from repro.obs import Tracer

        store = RunStore.create(tmp_path, CampaignSpec(), run_id="r")
        tracer = Tracer()
        tracer.add_event("chunk.run", 0.0, 0.5, chunk=0)
        store.write_trace(tracer)
        trace = json.loads((store.path / "trace.json").read_text())
        assert trace["traceEvents"][0]["name"] == "chunk.run"


class TestCheckpoints:
    def test_roundtrip(self, tmp_path):
        store = RunStore.create(tmp_path, CampaignSpec(), run_id="r")
        store.write_checkpoint({"status": "running", "n_samples": 120})
        assert store.read_checkpoint()["n_samples"] == 120

    def test_torn_checkpoint_recovers(self, tmp_path):
        store = RunStore.create(tmp_path, CampaignSpec(), run_id="r")
        (store.path / "checkpoint.json").write_text('{"status": "ru')
        assert store.read_checkpoint()["status"] == "interrupted"

    def test_missing_checkpoint_recovers(self, tmp_path):
        store = RunStore.create(tmp_path, CampaignSpec(), run_id="r")
        (store.path / "checkpoint.json").unlink()
        assert store.read_checkpoint()["status"] == "interrupted"
