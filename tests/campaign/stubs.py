"""Deterministic stub engine/sampler for campaign-subsystem tests.

The orchestration layer only needs the engine's ``evaluate(sampler, n,
seed)`` contract, so tests drive it with a cheap Bernoulli engine instead
of the full cross-level stack: seeds still flow through ``as_generator``,
so the per-chunk seed policy (and therefore resume determinism) is
exercised exactly as with the real engine.
"""

from __future__ import annotations

import time

from repro.attack.spec import AttackSample
from repro.core.results import CampaignResult, OutcomeCategory, SampleRecord
from repro.sampling.estimator import SsfEstimator
from repro.utils.rng import as_generator


class StubSampler:
    name = "stub"


class BernoulliEngine:
    """Attack succeeds with probability ``p``; optional per-chunk delay."""

    def __init__(self, p: float = 0.3, delay_s: float = 0.0):
        self.p = p
        self.delay_s = delay_s

    def evaluate(self, sampler, n_samples, seed=None, progress=None):
        if self.delay_s:
            time.sleep(self.delay_s)
        rng = as_generator(seed)
        estimator = SsfEstimator()
        records = []
        for _ in range(n_samples):
            e = int(rng.random() < self.p)
            sample = AttackSample(
                t=int(rng.integers(0, 50)),
                centre=int(rng.integers(0, 100)),
                radius_um=float(rng.choice((3.0, 5.0))),
                weight=1.0,
            )
            records.append(
                SampleRecord(
                    sample=sample,
                    e=e,
                    category=(
                        OutcomeCategory.NEEDS_RTL
                        if e
                        else OutcomeCategory.MASKED
                    ),
                    flipped_bits=frozenset({("viol_q", 0)}) if e else frozenset(),
                    injection_cycle=10,
                )
            )
            estimator.push(sample, e)
        return CampaignResult(
            strategy="stub", records=records, estimator=estimator
        )


class InstrumentedEngine(BernoulliEngine):
    """Bernoulli engine that ships a per-chunk metrics snapshot, like the
    real engine with ``observe=True``: deterministic outcome metrics from
    the records plus (non-deterministic) synthetic stage timings."""

    def evaluate(self, sampler, n_samples, seed=None, progress=None):
        from repro.obs import MetricsRegistry, observe_record, observe_timing

        result = super().evaluate(sampler, n_samples, seed=seed)
        registry = MetricsRegistry()
        for record in result.records:
            observe_record(registry, record)
            observe_timing(
                registry,
                record,
                {"restart": 5e-4, "transient": 2e-3},
                2.5e-3,
            )
        result.metrics = registry.snapshot()
        return result
