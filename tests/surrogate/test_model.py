"""Unit + property tests for the SEU-pattern surrogate model."""

import pytest
from hypothesis import given

from repro.errors import EvaluationError
from repro.netlist.cells import GateKind
from repro.netlist.graph import Netlist
from repro.surrogate.model import (
    PatternCell,
    SurrogateModel,
    canonical_pattern,
    register_footprints,
)

from tests.strategies import surrogate_models

P_A = (("acc", 0),)
P_B = (("pc", 1), ("viol_addr", 3))


class TestCanonicalPattern:
    def test_sorts_and_normalizes(self):
        got = canonical_pattern(frozenset({("pc", 3), ("acc", 0), ("pc", 1)}))
        assert got == (("acc", 0), ("pc", 1), ("pc", 3))

    def test_coerces_types(self):
        assert canonical_pattern({("acc", True)}) == (("acc", 1),)

    def test_empty(self):
        assert canonical_pattern(frozenset()) == ()


def _chained_netlist():
    """in → BUF → r0; (r0 AND in) → r1 → out."""
    nl = Netlist("tiny")
    a = nl.add_input("a")
    buf = nl.add_gate(GateKind.BUF, a)
    r0 = nl.add_dff(name="r0[0]", register="r0", bit=0)
    nl.connect_dff(r0, buf)
    g = nl.add_gate(GateKind.AND, r0, a)
    r1 = nl.add_dff(name="r1[0]", register="r1", bit=0)
    nl.connect_dff(r1, g)
    nl.mark_output("out", r1)
    nl.validate()
    return nl, a, buf, r0, g, r1


class TestRegisterFootprints:
    def test_chained_design(self):
        nl, a, buf, r0, g, r1 = _chained_netlist()
        fp = register_footprints(nl)
        # The input reaches r0 (via BUF) and r1 (via AND).
        assert fp[a] == ("r0", "r1")
        assert fp[buf] == ("r0",)
        assert fp[g] == ("r1",)
        # A struck flop flips its own bit *and* can propagate downstream.
        assert fp[r0] == ("r0", "r1")
        # r1 feeds only the output: its footprint is itself.
        assert fp[r1] == ("r1",)

    def test_cached_per_netlist_identity(self):
        nl, *_ = _chained_netlist()
        assert register_footprints(nl) is register_footprints(nl)


class TestPatternCell:
    def test_fresh_cell_is_fully_masked(self):
        cell = PatternCell()
        assert cell.p_masked == 1.0
        assert cell.draw(0.999, 0.5) is None

    def test_observe_and_p_masked(self):
        cell = PatternCell()
        cell.observe(None)
        cell.observe(())          # an empty pattern counts as masked
        cell.observe(P_A)
        cell.observe(P_A)
        assert cell.n_observations == 4
        assert cell.n_masked == 2
        assert cell.p_masked == 0.5
        assert cell.pattern_counts == {P_A: 2}

    def test_draw_respects_masking_threshold(self):
        cell = PatternCell()
        cell.observe(None)
        cell.observe(P_A)
        assert cell.draw(0.1, 0.5) is None       # below p_masked → masked
        assert cell.draw(0.9, 0.5) == P_A        # above → the lone pattern

    def test_draw_over_multiple_patterns_stays_in_support(self):
        cell = PatternCell()
        cell.observe(P_A)
        for _ in range(3):
            cell.observe(P_B)
        for u in (0.0, 0.3, 0.7, 0.999):
            assert cell.draw(0.999, u) in (P_A, P_B)

    def test_draw_accepts_both_variates_when_masked(self):
        # The two-variate contract: a masked outcome still consumes (and
        # tolerates) the pattern variate, keeping stream layouts fixed.
        cell = PatternCell()
        cell.observe(None)
        assert cell.draw(0.0, 0.0) is None
        assert cell.draw(0.0, 0.999) is None


class TestSurrogateModel:
    def test_cycle_class_buckets(self):
        model = SurrogateModel(cycle_class_width=8)
        assert model.cycle_class(0) == 0
        assert model.cycle_class(7) == 0
        assert model.cycle_class(8) == 1

    def test_observe_routes_to_cells(self):
        model = SurrogateModel(cycle_class_width=8, min_observations=1)
        model.observe(("acc",), 3, P_A)
        model.observe(("acc",), 5, None)
        model.observe(("acc",), 9, P_A)
        assert model.n_cells == 2
        cell = model.cell_for(("acc",), 0)
        assert cell is not None and cell.n_observations == 2

    def test_cell_for_declines_sparse_cells(self):
        model = SurrogateModel(min_observations=4)
        for _ in range(3):
            model.observe(("acc",), 0, P_A)
        assert model.cell_for(("acc",), 0) is None   # 3 < min_observations
        model.observe(("acc",), 0, P_A)
        assert model.cell_for(("acc",), 0) is not None

    def test_cell_for_unknown_key(self):
        assert SurrogateModel().cell_for(("nope",), 0) is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cycle_class_width": 0},
            {"cycle_class_width": -4},
            {"fnr": 1.0},
            {"fnr": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(EvaluationError):
            SurrogateModel(**kwargs)

    @given(surrogate_models())
    def test_dict_round_trip(self, model):
        restored = SurrogateModel.from_dict(model.to_dict())
        assert restored.to_dict() == model.to_dict()
        assert restored.cycle_class_width == model.cycle_class_width
        assert restored.min_observations == model.min_observations
        assert restored.fnr == model.fnr
        assert restored.n_cells == model.n_cells

    @given(surrogate_models())
    def test_round_trip_preserves_draws(self, model):
        restored = SurrogateModel.from_dict(model.to_dict())
        for (cone, cycle_class), cell in model.cells.items():
            twin = restored.cells[(cone, cycle_class)]
            for u in (0.0, 0.25, 0.5, 0.75, 0.999):
                assert cell.draw(u, u) == twin.draw(u, u)
