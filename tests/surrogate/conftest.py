"""Surrogate-suite fixtures.

The integration tests run against the ``write-cfg`` conformance design
built on the session-scoped small context: its pinpoint fault space is
tiny, so calibration and MC runs finish in well under a second while
still exercising the real RTL checkpoint/writeback path.
"""

from __future__ import annotations

import pytest

from repro.conformance.differential import build_samplers
from repro.conformance.registry import get_design
from repro.surrogate import CalibrationConfig, calibrate


@pytest.fixture(scope="package")
def write_cfg(small_context):
    """The write-cfg pinpoint design built on the shared small context."""
    return get_design("write-cfg").build(context=small_context)


@pytest.fixture(scope="package")
def uniform_sampler(write_cfg):
    return build_samplers(write_cfg)[0][1]


CAL_CONFIG = CalibrationConfig(n_samples=240, seed=3)


@pytest.fixture(scope="package")
def calibrated(write_cfg, uniform_sampler):
    """(model, report) fitted once and shared read-only by the suite."""
    return calibrate(write_cfg.engine, uniform_sampler, CAL_CONFIG)
