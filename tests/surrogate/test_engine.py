"""Surrogate / two-stage engine integration tests (real RTL path)."""

import types

import numpy as np
import pytest

from repro.attack.spec import AttackSample
from repro.campaign.scheduler import chunk_seed_sequence
from repro.core.results import OutcomeCategory
from repro.errors import EvaluationError
from repro.netlist.cells import GateKind
from repro.netlist.graph import Netlist
from repro.surrogate import SurrogateEngine, SurrogateModel, TwoStageEngine

N = 150


def _signature(result):
    return [
        (r.e, r.sample.t, r.sample.centre, r.sample.weight, r.category)
        for r in result.records
    ]


def _copy_with_fnr(model, fnr):
    clone = SurrogateModel.from_dict(model.to_dict())
    clone.fnr = fnr
    return clone


class TestSurrogateEngine:
    def test_rejects_multi_cycle_attacks(self):
        nl = Netlist("stub")
        a = nl.add_input("a")
        d = nl.add_dff(name="r[0]", register="r", bit=0)
        nl.connect_dff(d, a)
        nl.mark_output("o", d)
        nl.validate()
        fake = types.SimpleNamespace(
            spec=types.SimpleNamespace(
                technique=types.SimpleNamespace(impact_cycles=2)
            ),
            context=types.SimpleNamespace(netlist=nl),
        )
        with pytest.raises(EvaluationError, match="impact_cycles"):
            SurrogateEngine(fake, SurrogateModel())

    def test_deterministic_under_seed_sequence(self, write_cfg,
                                               uniform_sampler, calibrated):
        model, _ = calibrated
        engine = SurrogateEngine(write_cfg.engine, model, observe=False)
        seed = chunk_seed_sequence(5, 0)
        first = engine.evaluate(uniform_sampler, N, seed=seed)
        second = engine.evaluate(uniform_sampler, N, seed=seed)
        assert _signature(first) == _signature(second)

    def test_screens_most_samples(self, write_cfg, uniform_sampler,
                                  calibrated):
        model, _ = calibrated
        engine = SurrogateEngine(write_cfg.engine, model, observe=False)
        engine.evaluate(uniform_sampler, N, seed=chunk_seed_sequence(5, 0))
        # Uncovered-cell fallbacks are the only exact spend here.
        assert 0 <= engine.exact_invocations < N

    def test_out_of_range_sample(self, write_cfg, calibrated):
        model, _ = calibrated
        engine = SurrogateEngine(write_cfg.engine, model, observe=False)
        sample = AttackSample(
            t=write_cfg.engine.context.target_cycle + 10,
            centre=next(iter(write_cfg.bit_of_cell)),
            radius_um=1.0,
            weight=1.0,
        )
        record = engine.run_sample(sample, np.random.default_rng(0))
        assert record.e == 0
        assert record.category is OutcomeCategory.OUT_OF_RANGE

    def test_rejects_non_positive_budget(self, write_cfg, uniform_sampler,
                                         calibrated):
        model, _ = calibrated
        engine = SurrogateEngine(write_cfg.engine, model, observe=False)
        with pytest.raises(EvaluationError):
            engine.evaluate(uniform_sampler, 0)

    def test_observe_publishes_stage_metrics(self, write_cfg,
                                             uniform_sampler, calibrated):
        model, _ = calibrated
        engine = SurrogateEngine(write_cfg.engine, model, observe=True)
        result = engine.evaluate(
            uniform_sampler, 40, seed=chunk_seed_sequence(5, 0)
        )
        names = {m["name"] for m in result.metrics}
        assert "surrogate_stage_samples_total" in names
        assert "surrogate_hit_rate" in names


class TestTwoStageEngine:
    def test_deterministic_under_seed_sequence(self, write_cfg,
                                               uniform_sampler, calibrated):
        model, _ = calibrated
        engine = TwoStageEngine(
            SurrogateEngine(write_cfg.engine, model, observe=False)
        )
        seed = chunk_seed_sequence(9, 0)
        first = engine.evaluate(uniform_sampler, N, seed=seed)
        second = engine.evaluate(uniform_sampler, N, seed=seed)
        assert _signature(first) == _signature(second)

    def test_fnr_correction_inflates_confirmed_weights(self, write_cfg,
                                                       uniform_sampler,
                                                       calibrated):
        """With fnr=0.5 every confirmed hit's persisted weight doubles;
        screens and fallbacks are untouched, e-streams are identical."""
        model, _ = calibrated
        seed = chunk_seed_sequence(9, 0)
        runs = {}
        for fnr in (0.0, 0.5):
            engine = TwoStageEngine(
                SurrogateEngine(
                    write_cfg.engine, _copy_with_fnr(model, fnr),
                    observe=False,
                )
            )
            runs[fnr] = engine.evaluate(uniform_sampler, N, seed=seed)
        base, corrected = runs[0.0].records, runs[0.5].records
        assert [r.e for r in base] == [r.e for r in corrected]
        doubled = 0
        for a, b in zip(base, corrected):
            ratio = b.sample.weight / a.sample.weight
            assert ratio in (1.0, 2.0)
            if ratio == 2.0:
                # Only confirmed hits carry the correction.
                assert b.e == 1
                doubled += 1
        assert doubled > 0
        # The corrected estimator is scaled accordingly.
        assert runs[0.5].estimator.ssf > runs[0.0].estimator.ssf

    def test_exact_spend_is_fallbacks_plus_confirmations(self, write_cfg,
                                                         uniform_sampler,
                                                         calibrated):
        model, _ = calibrated
        engine = TwoStageEngine(
            SurrogateEngine(write_cfg.engine, model, observe=False)
        )
        result = engine.evaluate(
            uniform_sampler, N, seed=chunk_seed_sequence(9, 0)
        )
        n_hits = sum(r.e for r in result.records)
        # Every hit was confirmed exactly, so spend >= hits; screening
        # must still have saved samples versus a pure exact run.
        assert n_hits <= engine.exact_invocations < N

    def test_agrees_with_exact_on_enumerated_truth(self, write_cfg,
                                                   uniform_sampler,
                                                   calibrated):
        """Two-stage confirmed hits are exact-engine verdicts: each hit
        record must match the exhaustive oracle at its (t, centre)."""
        from repro.core.exhaustive import enumerate_single_bit_faults

        model, _ = calibrated
        oracle = enumerate_single_bit_faults(
            write_cfg.engine,
            bits=list(write_cfg.bits),
            timing_distances=list(range(write_cfg.window)),
        )
        engine = TwoStageEngine(
            SurrogateEngine(write_cfg.engine, model, observe=False)
        )
        result = engine.evaluate(
            uniform_sampler, N, seed=chunk_seed_sequence(9, 0)
        )
        for record in result.records:
            if record.e:
                bit = write_cfg.bit_of_cell[record.sample.centre]
                assert oracle.outcomes[(bit, record.sample.t)] == 1
