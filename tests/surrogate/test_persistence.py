"""Artifact persistence: versioning, fingerprinting, round-trips."""

import json
import tempfile

import pytest
from hypothesis import given

from repro.errors import EvaluationError
from repro.netlist.cells import GateKind
from repro.netlist.graph import Netlist
from repro.surrogate import (
    SurrogateModel,
    load_report,
    load_surrogate_model,
    save_surrogate_model,
)
from repro.surrogate.persistence import FORMAT_VERSION

from tests.strategies import surrogate_models


def _netlist(n_regs=2):
    nl = Netlist("persist")
    a = nl.add_input("a")
    prev = a
    for i in range(n_regs):
        d = nl.add_dff(name=f"r{i}[0]", register=f"r{i}", bit=0)
        nl.connect_dff(d, prev)
        prev = d
    nl.mark_output("out", prev)
    nl.validate()
    return nl


def _model():
    model = SurrogateModel(cycle_class_width=4, min_observations=2, fnr=0.125)
    model.observe(("r0",), 3, (("r0", 0),))
    model.observe(("r0",), 3, None)
    model.observe(("r0", "r1"), 9, (("r0", 0), ("r1", 0)))
    return model


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        nl = _netlist()
        model = _model()
        path = tmp_path / "cal.json"
        save_surrogate_model(model, nl, path)
        restored = load_surrogate_model(path, nl)
        assert restored.to_dict() == model.to_dict()

    def test_report_dataclass_and_dict_both_accepted(self, tmp_path):
        nl = _netlist()

        class FakeReport:
            def to_dict(self):
                return {"fnr": 0.125, "n_cells": 2}

        for name, report in (("a.json", FakeReport()),
                             ("b.json", {"fnr": 0.125, "n_cells": 2})):
            path = tmp_path / name
            save_surrogate_model(_model(), nl, path, report=report)
            assert load_report(path) == {"fnr": 0.125, "n_cells": 2}

    def test_report_defaults_to_none(self, tmp_path):
        path = tmp_path / "cal.json"
        save_surrogate_model(_model(), _netlist(), path)
        assert load_report(path) is None

    @given(surrogate_models())
    def test_any_model_survives_the_artifact(self, model):
        nl = _netlist()
        with tempfile.TemporaryDirectory() as tmp:
            path = f"{tmp}/cal.json"
            save_surrogate_model(model, nl, path)
            restored = load_surrogate_model(path, nl)
        assert restored.to_dict() == model.to_dict()


class TestGuards:
    def test_fingerprint_mismatch(self, tmp_path):
        path = tmp_path / "cal.json"
        save_surrogate_model(_model(), _netlist(n_regs=2), path)
        with pytest.raises(EvaluationError, match="different netlist"):
            load_surrogate_model(path, _netlist(n_regs=3))

    def test_missing_file(self, tmp_path):
        with pytest.raises(EvaluationError, match="cannot load"):
            load_surrogate_model(tmp_path / "absent.json", _netlist())

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "cal.json"
        path.write_text("{not json")
        with pytest.raises(EvaluationError, match="cannot load"):
            load_surrogate_model(path, _netlist())
        with pytest.raises(EvaluationError, match="cannot load"):
            load_report(path)

    def test_unsupported_version(self, tmp_path):
        nl = _netlist()
        path = tmp_path / "cal.json"
        save_surrogate_model(_model(), nl, path)
        payload = json.loads(path.read_text())
        payload["version"] = FORMAT_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(EvaluationError, match="unsupported"):
            load_surrogate_model(path, nl)

    def test_write_is_atomic(self, tmp_path):
        path = tmp_path / "cal.json"
        save_surrogate_model(_model(), _netlist(), path)
        assert not path.with_suffix(".json.tmp").exists()
