"""CLI surfaces of the surrogate subsystem: flags, errors, exit codes."""

from repro import cli


class TestEngineFlagValidation:
    def test_unknown_engine_fails_fast(self, capsys):
        # Must error before the expensive context build: exit 2 with one
        # clean ``error:`` line naming the valid variants.
        code = cli.main(["evaluate", "--engine", "warp"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "valid variants" in err
        assert "exact" in err and "surrogate" in err

    def test_two_stage_requires_surrogate_engine(self, capsys):
        code = cli.main(["evaluate", "--fidelity", "two-stage"])
        assert code == 2
        assert "surrogate" in capsys.readouterr().err

    def test_campaign_run_rejects_unknown_engine(self, capsys, tmp_path):
        code = cli.main(
            ["campaign", "run", "--engine", "warp",
             "--runs-dir", str(tmp_path)]
        )
        assert code == 2
        assert "valid variants" in capsys.readouterr().err

    def test_submit_rejects_unknown_engine(self, capsys):
        code = cli.main(["submit", "--engine", "warp"])
        assert code == 2
        assert "valid variants" in capsys.readouterr().err


class TestParsers:
    def test_evaluate_engine_defaults(self):
        args = cli.build_parser().parse_args(["evaluate"])
        assert args.engine == "exact"
        assert args.fidelity == "single"
        assert args.calibration is None

    def test_fidelity_accepts_both_spellings(self):
        assert cli._normalize_fidelity("two-stage") == "two_stage"
        assert cli._normalize_fidelity("two_stage") == "two_stage"
        assert cli._normalize_fidelity("single") == "single"

    def test_calibrate_defaults(self):
        args = cli.build_parser().parse_args(["calibrate"])
        assert args.func.__name__ == "cmd_calibrate"
        assert args.out == "calibration.json"
        assert args.holdout == 0.2
        assert args.class_width == 8
        assert args.min_observations == 4

    def test_conformance_surrogate_flags(self):
        args = cli.build_parser().parse_args(
            ["conformance", "--surrogate", "--surrogate-samples", "500",
             "--calibration-samples", "200", "--tolerance", "0.1",
             "--report-out", "report.json"]
        )
        assert args.surrogate
        assert args.surrogate_samples == 500
        assert args.calibration_samples == 200
        assert args.tolerance == 0.1
        assert args.report_out == "report.json"
