"""Surrogate campaigns through the orchestration stack.

The runner, scheduler, durable store, and stopping rules must treat the
surrogate-family engines as just another ``evaluate``/``run_sample``
implementation: same chunk plan, same resume bit-identity, same spec
semantics.  Runtime here is the real two-stage engine on the write-cfg
pinpoint design, so the whole chunked path (including the FNR-corrected
weights baked into the durable log) is exercised end to end.
"""

import pytest
from hypothesis import given

from repro.campaign import CampaignRunner, CampaignSpec, RunStore, StoppingConfig
from repro.campaign.spec_hash import canonical_spec_dict, spec_hash
from repro.errors import EvaluationError
from repro.surrogate import SurrogateEngine, TwoStageEngine

from tests.campaign.test_runner import InterruptAfter
from tests.strategies import campaign_specs

SPEC = CampaignSpec(
    sampler="random",
    window=12,
    engine="surrogate",
    fidelity="two_stage",
    seed=17,
    chunk_size=30,
    stopping=StoppingConfig(mode="fixed", n_samples=120),
)


def _two_stage(write_cfg, model):
    return TwoStageEngine(
        SurrogateEngine(write_cfg.engine, model, observe=False)
    )


class TestSpecValidation:
    def test_unknown_engine_names_valid_variants(self):
        with pytest.raises(EvaluationError, match="valid variants"):
            CampaignSpec(engine="quantum")

    def test_unknown_fidelity(self):
        with pytest.raises(EvaluationError, match="fidelity"):
            CampaignSpec(engine="surrogate", fidelity="three_stage")

    def test_two_stage_requires_surrogate(self):
        with pytest.raises(EvaluationError, match="surrogate"):
            CampaignSpec(engine="exact", fidelity="two_stage")

    def test_surrogate_is_single_cycle_only(self):
        with pytest.raises(EvaluationError, match="impact_cycles"):
            CampaignSpec(engine="surrogate", impact_cycles=2)

    def test_round_trip_preserves_surrogate_fields(self):
        spec = CampaignSpec(
            engine="surrogate", fidelity="two_stage", calibration="cal.json"
        )
        restored = CampaignSpec.from_dict(spec.to_dict())
        assert restored == spec

    def test_engine_does_not_change_the_chunk_plan(self):
        exact = CampaignSpec(chunk_size=30)
        surrogate = CampaignSpec(chunk_size=30, engine="surrogate")
        assert exact.chunk_sizes() == surrogate.chunk_sizes()


class TestSpecHashProperties:
    @given(campaign_specs())
    def test_hash_is_stable_and_json_safe(self, spec):
        digest = spec_hash(spec)
        assert digest == spec_hash(CampaignSpec.from_dict(spec.to_dict()))
        assert len(digest) == 64

    @given(campaign_specs())
    def test_calibration_path_never_splits_the_cache(self, spec):
        import dataclasses

        moved = dataclasses.replace(spec, calibration="/elsewhere/cal.json")
        assert spec_hash(moved) == spec_hash(spec)
        assert "calibration" not in canonical_spec_dict(spec)

    @given(campaign_specs())
    def test_engine_and_fidelity_are_semantic(self, spec):
        canonical = canonical_spec_dict(spec)
        assert canonical["engine"] == spec.engine
        assert canonical["fidelity"] == spec.fidelity


class TestCampaignIntegration:
    def test_two_stage_runs_through_the_scheduler(self, tmp_path, write_cfg,
                                                  uniform_sampler, calibrated):
        model, _ = calibrated
        store = RunStore.create(tmp_path, SPEC, run_id="two-stage")
        runner = CampaignRunner(
            SPEC,
            store=store,
            engine=_two_stage(write_cfg, model),
            sampler=uniform_sampler,
            n_workers=1,
        )
        result = runner.run()
        assert result.n_samples == 120
        assert store.read_checkpoint()["status"] == "complete"
        assert store.load_spec() == SPEC

    def test_interrupted_two_stage_resumes_bit_identically(
        self, tmp_path, write_cfg, uniform_sampler, calibrated
    ):
        model, _ = calibrated
        baseline = CampaignRunner(
            SPEC,
            engine=_two_stage(write_cfg, model),
            sampler=uniform_sampler,
            n_workers=1,
        ).run()

        store = RunStore.create(tmp_path, SPEC, run_id="kill")
        with pytest.raises(KeyboardInterrupt):
            CampaignRunner(
                SPEC,
                store=store,
                hooks=InterruptAfter(2),
                engine=_two_stage(write_cfg, model),
                sampler=uniform_sampler,
                n_workers=1,
            ).run()
        assert store.read_checkpoint()["status"] == "interrupted"

        resumed = CampaignRunner.resume(
            store,
            engine=_two_stage(write_cfg, model),
            sampler=uniform_sampler,
            n_workers=1,
        )
        assert resumed.n_samples == baseline.n_samples
        assert resumed.ssf == baseline.ssf
        # Bit-identity includes the FNR-corrected persisted weights: the
        # replayed prefix came from the durable log, not a re-run.
        assert [
            (r.e, r.sample.t, r.sample.centre, r.sample.weight)
            for r in resumed.records
        ] == [
            (r.e, r.sample.t, r.sample.centre, r.sample.weight)
            for r in baseline.records
        ]
