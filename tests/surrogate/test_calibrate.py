"""Calibration-pass integration tests (real engine, tiny design)."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.surrogate import CalibrationConfig, calibrate
from repro.surrogate.calibrate import CALIBRATION_SPAWN_KEY

from tests.surrogate.conftest import CAL_CONFIG


class TestCalibrationConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_samples": 0},
            {"holdout_fraction": 0.0},
            {"holdout_fraction": 1.0},
            {"cycle_class_width": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(EvaluationError):
            CalibrationConfig(**kwargs)

    def test_dict_round_trip(self):
        config = CalibrationConfig(n_samples=99, seed=42, max_fnr=0.5)
        assert CalibrationConfig.from_dict(config.to_dict()) == config


class TestCalibrationPass:
    def test_report_invariants(self, calibrated):
        model, report = calibrated
        assert report.n_samples == CAL_CONFIG.n_samples
        assert report.n_fit + report.n_holdout == report.n_samples
        assert report.n_cells == model.n_cells > 0
        assert 0.0 <= report.holdout_coverage <= 1.0
        assert 0.0 <= report.fnr < 1.0
        assert model.fnr == report.fnr
        assert 0.0 <= report.multiplicity_ks_p_value <= 1.0
        assert 0.0 <= report.category_chi2_p_value <= 1.0
        assert model.n_calibration_samples == CAL_CONFIG.n_samples

    def test_model_echoes_config(self, calibrated):
        model, _ = calibrated
        assert model.cycle_class_width == CAL_CONFIG.cycle_class_width
        assert model.min_observations == CAL_CONFIG.min_observations

    def test_deterministic_given_seed(self, write_cfg, uniform_sampler,
                                      calibrated):
        model, report = calibrated
        again, report2 = calibrate(
            write_cfg.engine, uniform_sampler, CAL_CONFIG
        )
        assert again.to_dict() == model.to_dict()
        assert report2.to_dict() == report.to_dict()

    def test_seed_changes_the_fit(self, write_cfg, uniform_sampler,
                                  calibrated):
        model, _ = calibrated
        other, _ = calibrate(
            write_cfg.engine,
            uniform_sampler,
            CalibrationConfig(n_samples=CAL_CONFIG.n_samples, seed=99),
        )
        assert other.to_dict() != model.to_dict()

    def test_calibration_streams_are_namespaced(self):
        """The calibration seed tree stays clear of early chunk streams."""
        from repro.campaign.scheduler import chunk_seed_sequence

        seed = CAL_CONFIG.seed
        cal = np.random.SeedSequence(
            entropy=seed, spawn_key=(CALIBRATION_SPAWN_KEY,)
        )
        assert cal.spawn_key == (CALIBRATION_SPAWN_KEY,)
        for index in range(8):
            chunk = chunk_seed_sequence(seed, index)
            assert (
                np.random.default_rng(cal).random()
                != np.random.default_rng(chunk).random()
            )
