"""Documentation consistency guards.

Cheap protection against doc drift: every benchmark and example a document
references must exist, the public API names used in the README snippets
must import, and the CLI subcommands the README lists must be registered.
"""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text()


class TestReferencedFilesExist:
    @pytest.mark.parametrize("doc", ["README.md", "DESIGN.md", "benchmarks/README.md"])
    def test_benchmark_references(self, doc):
        text = read(doc)
        for match in re.findall(r"benchmarks/(test_\w+\.py)", text):
            assert (ROOT / "benchmarks" / match).exists(), match

    def test_example_references(self):
        text = read("README.md")
        for match in re.findall(r"examples/(\w+\.py)", text):
            assert (ROOT / "examples" / match).exists(), match

    def test_every_example_is_documented(self):
        documented = set(re.findall(r"examples/(\w+\.py)", read("README.md")))
        on_disk = {p.name for p in (ROOT / "examples").glob("*.py")}
        assert on_disk <= documented

    def test_every_benchmark_is_indexed(self):
        indexed = set(
            re.findall(r"(test_\w+\.py)", read("benchmarks/README.md"))
        )
        on_disk = {p.name for p in (ROOT / "benchmarks").glob("test_*.py")}
        assert on_disk == indexed


class TestReadmeApiSnippets:
    def test_quickstart_imports_resolve(self):
        import repro

        for name in (
            "build_context",
            "CrossLevelEngine",
            "default_attack_spec",
            "ImportanceSampler",
            "illegal_write_benchmark",
        ):
            assert hasattr(repro, name), name

    def test_cli_subcommands_registered(self):
        from repro.cli import build_parser

        text = read("README.md")
        wanted = set(re.findall(r"python -m repro (\w[\w-]*)", text))
        parser = build_parser()
        sub = next(
            a for a in parser._actions
            if a.__class__.__name__ == "_SubParsersAction"
        )
        registered = set(sub.choices)
        assert wanted <= registered

    def test_experiments_covers_all_result_files(self):
        """EXPERIMENTS.md discusses every figure/table benchmark."""
        text = read("EXPERIMENTS.md")
        for fig in ("Fig. 4", "Fig. 7", "Fig. 8", "Fig. 9", "Fig. 10",
                    "Fig. 11", "hardening", "Ablation"):
            assert fig in text, fig
