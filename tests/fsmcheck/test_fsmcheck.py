"""Tests for the AVFSM-style FSM analysis baseline."""

import pytest

from repro.errors import EvaluationError
from repro.fsmcheck.analyze import analyze_fsm, probe_dont_care_recovery
from repro.fsmcheck.extract import (
    FsmExtraction,
    extract_fsm,
    extract_fsm_from_workloads,
)
from repro.soc.programs import (
    illegal_read_benchmark,
    illegal_write_benchmark,
    synthetic_workload,
)
from repro.soc.soc import Soc


@pytest.fixture(scope="module")
def decision_fsm():
    return extract_fsm_from_workloads(
        Soc,
        [
            illegal_write_benchmark(),
            illegal_read_benchmark(),
            synthetic_workload(3),
        ],
        registers=["core_state", "viol_q", "grant_q"],
    )


class TestExtraction:
    def test_reachable_states_subset_of_encodings(self, decision_fsm):
        assert 0 < len(decision_fsm.states) < decision_fsm.n_encodings
        assert len(decision_fsm.dont_care_states()) == (
            decision_fsm.n_encodings - len(decision_fsm.states)
        )

    def test_transitions_link_observed_states(self, decision_fsm):
        for state, nexts in decision_fsm.transitions.items():
            assert state in decision_fsm.states
            assert nexts <= decision_fsm.states

    def test_expected_states_observed(self, decision_fsm):
        # grant and violation decisions both occurred in the workloads
        assert any(s[1] == 1 for s in decision_fsm.states)  # viol_q
        assert any(s[2] == 1 for s in decision_fsm.states)  # grant_q

    def test_illegal_decision_pair_is_dont_care(self, decision_fsm):
        """viol_q and grant_q are never both set — by construction."""
        for state in decision_fsm.states:
            assert not (state[1] == 1 and state[2] == 1)

    def test_pack_unpack_roundtrip(self, decision_fsm):
        for state in decision_fsm.states:
            assert decision_fsm.unpack(decision_fsm.pack(state)) == state

    def test_single_bit_neighbours_count(self, decision_fsm):
        state = next(iter(decision_fsm.states))
        neighbours = decision_fsm.single_bit_neighbours(state)
        assert len(neighbours) == decision_fsm.state_bits()
        packed = decision_fsm.pack(state)
        for neighbour in neighbours:
            diff = packed ^ decision_fsm.pack(neighbour)
            assert bin(diff).count("1") == 1

    def test_unknown_register_rejected(self):
        soc = Soc()
        soc.load_program(illegal_write_benchmark().program.words)
        with pytest.raises(EvaluationError):
            extract_fsm(soc, ["nope"], 10)

    def test_merge_requires_same_registers(self, decision_fsm):
        other = FsmExtraction(registers=("x",), widths=(1,))
        with pytest.raises(EvaluationError):
            decision_fsm.merge(other)


class TestAnalysis:
    def test_census_covers_all_observed_faults(self, decision_fsm):
        report = analyze_fsm(decision_fsm, lambda s: s[1] == 1)
        expected = len(decision_fsm.states) * decision_fsm.state_bits()
        assert len(report.faults) == expected
        kinds = {f.kind for f in report.faults}
        assert kinds <= {"bypass", "dont_care", "benign"}

    def test_finds_a_bypass_fault(self, decision_fsm):
        report = analyze_fsm(decision_fsm, lambda s: s[1] == 1)
        assert report.bypass_faults  # e.g. RUN -> HALT skips the check
        assert 0 < report.vulnerability_fraction < 0.5

    def test_protection_predicate_must_match(self, decision_fsm):
        with pytest.raises(EvaluationError):
            analyze_fsm(decision_fsm, lambda s: False)

    def test_summary_fields(self, decision_fsm):
        report = analyze_fsm(decision_fsm, lambda s: s[1] == 1)
        summary = report.summary()
        assert summary["reachable_states"] == len(decision_fsm.states)
        assert summary["bypass_faults"] == len(report.bypass_faults)


class TestDontCareRecovery:
    def test_recovery_targets_are_states(self):
        soc = Soc()
        soc.load_program(illegal_write_benchmark().program.words)
        soc.reset()
        extraction = extract_fsm(
            soc, ["viol_q", "grant_q"], soc.run_until_halt.__defaults__[0]
            if False else 150,
        )
        soc2 = Soc()
        soc2.load_program(illegal_write_benchmark().program.words)
        recovery = probe_dont_care_recovery(soc2, extraction, warmup_cycles=80)
        # the only unobserved encoding of the pair is (1, 1)
        assert set(recovery) == set(extraction.dont_care_states())
        for target in recovery.values():
            assert len(target) == 2
