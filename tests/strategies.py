"""Shared Hypothesis strategies for the whole test suite.

One home for the generative machinery (random netlists, attack samples,
sample records, campaign specs) so the gate-level property tests and the
conformance invariant suite draw from the same distributions.  Keep
strategies here pure — no fixtures, no I/O — so any test module can
import them under any Hypothesis profile (see ``tests/conftest.py`` for
the derandomized ``ci`` profile).
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.attack.spec import AttackSample
from repro.campaign.spec import CampaignSpec, StoppingConfig
from repro.core.results import OutcomeCategory, SampleRecord
from repro.netlist.cells import GateKind
from repro.netlist.graph import Netlist

COMB_KINDS = [
    GateKind.AND,
    GateKind.OR,
    GateKind.NAND,
    GateKind.NOR,
    GateKind.XOR,
    GateKind.XNOR,
    GateKind.NOT,
    GateKind.BUF,
    GateKind.MUX,
]

#: Register-bit identities drawn from plausible SoC register names.
register_bits = st.tuples(
    st.sampled_from(
        ("cfg_top0", "cfg_base1", "cfg_perm2", "viol_addr", "acc", "pc")
    ),
    st.integers(0, 15),
)

#: Finite floats that survive a JSON round-trip exactly (json uses
#: shortest-repr float serialization, so any finite double is safe).
finite_floats = st.floats(
    min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def random_netlists(draw):
    """A random sequential netlist with 2-5 inputs, 1-3 DFFs, <=25 gates."""
    nl = Netlist("random")
    n_inputs = draw(st.integers(2, 5))
    n_dffs = draw(st.integers(1, 3))
    sources = [nl.add_input(f"in{i}") for i in range(n_inputs)]
    dffs = [
        nl.add_dff(name=f"r{i}[0]", register=f"r{i}", bit=0)
        for i in range(n_dffs)
    ]
    pool = sources + dffs + [nl.add_const(0), nl.add_const(1)]
    n_gates = draw(st.integers(1, 25))
    for _ in range(n_gates):
        kind = draw(st.sampled_from(COMB_KINDS))
        arity = {GateKind.NOT: 1, GateKind.BUF: 1, GateKind.MUX: 3}.get(kind, 2)
        fanins = [draw(st.sampled_from(pool)) for _ in range(arity)]
        pool.append(nl.add_gate(kind, *fanins))
    for dff in dffs:
        nl.connect_dff(dff, draw(st.sampled_from(pool)))
    nl.mark_output("out", pool[-1])
    nl.validate()
    return nl


def with_masked_dff(nl: Netlist, register: str, mask_name: str = "mask") -> Netlist:
    """Clone ``nl`` with an AND masking gate on one register's D pin.

    The clone preserves every original node id (new nodes append at the
    end), so evaluations are comparable nid-by-nid.  With the mask input
    at 1 the clone behaves identically to ``nl``; at 0 the register's D
    pin is forced to 0, absorbing any fault arriving through it.
    """
    clone = Netlist(nl.name + "+mask")
    d_pins = {}
    for node in nl.nodes:
        if node.kind is GateKind.INPUT:
            clone.add_input(node.name)
        elif node.kind is GateKind.CONST0:
            clone.add_const(0)
        elif node.kind is GateKind.CONST1:
            clone.add_const(1)
        elif node.is_dff:
            clone.add_dff(
                name=node.name,
                register=node.register,
                bit=node.bit,
                init=node.init,
            )
            d_pins[node.nid] = node.fanins[0]
        else:
            clone.add_gate(node.kind, *node.fanins, name=node.name)
    mask = clone.add_input(mask_name)
    target = nl.register_dff(register, 0).nid
    for dff_id, d_pin in d_pins.items():
        if dff_id == target:
            d_pin = clone.add_gate(GateKind.AND, d_pin, mask)
        clone.connect_dff(dff_id, d_pin)
    for name, nid in nl.outputs.items():
        clone.mark_output(name, nid)
    clone.validate()
    return clone


@st.composite
def attack_samples(draw):
    """An arbitrary (t, p) attack sample with a positive importance weight."""
    return AttackSample(
        t=draw(st.integers(-5, 60)),
        centre=draw(st.integers(0, 500)),
        radius_um=draw(st.sampled_from((1.0, 3.0, 5.0, 7.0, 9.0))),
        weight=draw(finite_floats),
    )


@st.composite
def sample_records(draw):
    """A structurally consistent engine outcome record."""
    e = draw(st.integers(0, 1))
    flipped = frozenset(
        draw(st.lists(register_bits, max_size=4, unique=True))
    )
    if e and not flipped:  # a success always latched at least one bit
        flipped = frozenset({("viol_addr", 0)})
    return SampleRecord(
        sample=draw(attack_samples()),
        e=e,
        category=draw(st.sampled_from(list(OutcomeCategory))),
        flipped_bits=flipped,
        injection_cycle=draw(st.integers(0, 200)),
        n_pulses_injected=draw(st.integers(0, 8)),
        n_pulses_latched=draw(st.integers(0, 8)),
        analytical=draw(st.booleans()),
    )


@st.composite
def stopping_configs(draw):
    return StoppingConfig(
        mode=draw(st.sampled_from(("fixed", "risk", "ci"))),
        n_samples=draw(st.integers(1, 5000)),
        epsilon=draw(st.floats(0.005, 0.2)),
        delta=draw(st.floats(0.01, 0.3)),
        ci_width=draw(st.floats(0.01, 0.3)),
        z=draw(st.sampled_from((1.64, 1.96, 2.58))),
        min_samples=draw(st.integers(1, 500)),
        max_samples=draw(st.integers(1, 20_000)),
    )


@st.composite
def campaign_specs(draw):
    # The surrogate backend only models single-cycle injections, so the
    # engine draw constrains impact_cycles (mirroring spec validation).
    engine = draw(st.sampled_from(("exact", "surrogate")))
    fidelity = (
        draw(st.sampled_from(("single", "two_stage")))
        if engine == "surrogate"
        else "single"
    )
    impact_cycles = 1 if engine == "surrogate" else draw(st.integers(1, 3))
    return CampaignSpec(
        benchmark=draw(st.sampled_from(("write", "read", "dma"))),
        variant=draw(st.sampled_from(("none", "parity", "dual", "tmr"))),
        sampler=draw(st.sampled_from(("random", "cone", "importance"))),
        window=draw(st.integers(1, 100)),
        subblock_fraction=draw(st.floats(0.01, 1.0)),
        impact_cycles=impact_cycles,
        seed=draw(st.integers(0, 2**31 - 1)),
        chunk_size=draw(st.integers(1, 500)),
        engine=engine,
        fidelity=fidelity,
        calibration=draw(
            st.sampled_from((None, "cal.json", "/tmp/artifacts/cal.json"))
        ),
        trace=draw(st.booleans()),
        batch=draw(st.booleans()),
        stopping=draw(stopping_configs()),
    )


#: Axis-value pools for sweep strategies.  Values are JSON-stable
#: (ints, strings) and always produce valid campaigns against the
#: conservative base drawn in :func:`sweep_specs` (engine stays exact,
#: so impact_cycles/fidelity constraints never bite).
SWEEP_AXIS_POOLS = {
    "variant": ("none", "parity", "dual", "dual+parity", "tmr+parity"),
    "window": tuple(range(10, 61, 10)),
    "seed": tuple(range(1, 9)),
    "chunk_size": (10, 25, 50),
    "sampler": ("random", "cone", "importance"),
    "subblock_fraction": (0.125, 0.25, 0.5),
    "stopping.n_samples": (20, 40, 60, 80),
}


@st.composite
def sweep_axes(draw):
    """1-3 distinct sweep axes, each with 1-3 values from its pool.

    Values may repeat inside an axis (``unique=False``), exercising the
    expansion's duplicate-collapse path.
    """
    names = draw(
        st.lists(
            st.sampled_from(sorted(SWEEP_AXIS_POOLS)),
            min_size=1,
            max_size=3,
            unique=True,
        )
    )
    return {
        name: tuple(
            draw(
                st.lists(
                    st.sampled_from(SWEEP_AXIS_POOLS[name]),
                    min_size=1,
                    max_size=3,
                )
            )
        )
        for name in names
    }


@st.composite
def sweep_specs(draw):
    """A valid hardening sweep over a cheap fixed-budget base campaign."""
    from repro.sweep import SweepSpec

    return SweepSpec(
        name="prop-sweep",
        base={
            "benchmark": draw(st.sampled_from(("write", "read"))),
            "sampler": "random",
            "chunk_size": 20,
            "stopping": {"mode": "fixed", "n_samples": 40},
        },
        axes=draw(sweep_axes()),
    )


@st.composite
def seu_patterns(draw):
    """A canonical latched-SEU pattern: a sorted, unique bit set."""
    from repro.surrogate.model import canonical_pattern

    bits = draw(st.lists(register_bits, min_size=1, max_size=5, unique=True))
    return canonical_pattern(bits)


@st.composite
def pattern_cells(draw):
    """A fitted per-(cone, cycle-class) SEU-pattern distribution."""
    from repro.surrogate.model import PatternCell

    cell = PatternCell()
    n_masked = draw(st.integers(0, 20))
    for _ in range(n_masked):
        cell.observe(None)
    for pattern in draw(
        st.lists(seu_patterns(), min_size=0, max_size=6)
    ):
        for _ in range(draw(st.integers(1, 5))):
            cell.observe(pattern)
    return cell


@st.composite
def surrogate_models(draw):
    """A surrogate model over a handful of cone/cycle-class cells."""
    from repro.surrogate.model import SurrogateModel

    model = SurrogateModel(
        cycle_class_width=draw(st.integers(1, 16)),
        min_observations=draw(st.integers(1, 8)),
        fnr=draw(st.floats(0.0, 0.8)),
        n_calibration_samples=draw(st.integers(0, 2000)),
    )
    cones = draw(
        st.lists(
            st.lists(
                st.sampled_from(
                    ("cfg_top0", "cfg_base1", "viol_addr", "acc", "pc")
                ),
                min_size=1,
                max_size=3,
                unique=True,
            ).map(lambda regs: tuple(sorted(regs))),
            min_size=0,
            max_size=4,
            unique=True,
        )
    )
    for cone in cones:
        cycle = draw(st.integers(0, 200))
        cell = draw(pattern_cells())
        if cell.n_observations:
            model.cells[model.cell_key(cone, cycle)] = cell
    return model


@st.composite
def reweighting_problems(draw):
    """A finite discrete support with nominal pmf ``f``, sampling pmf
    ``g`` (positive wherever ``f`` is), and a 0/1 outcome per point."""
    k = draw(st.integers(2, 8))
    f_raw = draw(st.lists(st.floats(0.01, 1.0), min_size=k, max_size=k))
    g_raw = draw(st.lists(st.floats(0.01, 1.0), min_size=k, max_size=k))
    e = draw(st.lists(st.integers(0, 1), min_size=k, max_size=k))
    f = [x / sum(f_raw) for x in f_raw]
    g = [x / sum(g_raw) for x in g_raw]
    return f, g, e
