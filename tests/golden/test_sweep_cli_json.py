"""Golden key-set and exit-code tests for the ``repro sweep`` verbs.

Same contract discipline as ``tests/test_cli_json.py``: the JSON key
sets of ``sweep run`` / ``sweep status`` / ``sweep report`` are pinned
in ``tests/golden/cli_json_keys.json`` (regenerate deliberately with
``REPRO_REGEN_GOLDEN=1``), and the exit-code conventions — 0 success,
1 domain verdict (regression), 2 usage/error — are asserted directly.
"""

import json

import pytest

from repro.service import EvaluationService, ServiceServer
from repro.sweep import SweepSpec, SweepStore

from tests.campaign.stubs import BernoulliEngine, StubSampler
from tests.test_cli_json import check_keys, run_cli

SWEEP_DOC = {
    "name": "golden-sweep",
    "base": {
        "benchmark": "write",
        "sampler": "random",
        "chunk_size": 20,
        "stopping": {"mode": "fixed", "n_samples": 40},
    },
    "axes": {"variant": ["none", "parity"], "seed": [1, 2]},
}


@pytest.fixture()
def service_url(tmp_path):
    service = EvaluationService(
        tmp_path / "svc-runs",
        engine_factory=lambda spec: (BernoulliEngine(p=0.3), StubSampler()),
    )
    server = ServiceServer(service, port=0)
    server.start()
    yield server.url
    server.stop(cancel_running=True)


@pytest.fixture()
def spec_path(tmp_path):
    path = tmp_path / "sweep-spec.json"
    path.write_text(json.dumps(SWEEP_DOC))
    return path


def run_sweep_cli(capsys, tmp_path, service_url, spec_path, sweep_id):
    return run_cli(capsys, [
        "sweep", "run", str(spec_path),
        "--sweeps-dir", str(tmp_path / "sweeps"),
        "--sweep-id", sweep_id,
        "--url", service_url, "--quiet", "--json",
    ])


class TestSweepVerbs:
    def test_run_status_report_json(
        self, capsys, tmp_path, service_url, spec_path
    ):
        code, summary = run_sweep_cli(
            capsys, tmp_path, service_url, spec_path, "golden"
        )
        assert code == 0
        assert summary["n_points"] == 4
        assert summary["verdict"] == "no_baseline"
        check_keys("sweep_run", summary)

        code, status = run_cli(capsys, [
            "sweep", "status", "golden",
            "--sweeps-dir", str(tmp_path / "sweeps"), "--json",
        ])
        assert code == 0
        assert status["complete"] is True
        check_keys("sweep_status", status)

        code, report = run_cli(capsys, [
            "sweep", "report", "golden",
            "--sweeps-dir", str(tmp_path / "sweeps"), "--json",
        ])
        assert code == 0
        assert report["n_points"] == 4
        check_keys("sweep_report", report)
        check_keys("sweep_report_point", report["points"][0])
        check_keys("sweep_report_regression", report["regression"])

    def test_second_run_reports_full_cache_hits(
        self, capsys, tmp_path, service_url, spec_path
    ):
        run_sweep_cli(capsys, tmp_path, service_url, spec_path, "cold")
        code, summary = run_sweep_cli(
            capsys, tmp_path, service_url, spec_path, "warm"
        )
        assert code == 0
        assert summary["n_cached"] == 4
        assert summary["cache_hit_ratio"] == 1.0

    def test_regressed_sweep_exits_one(
        self, capsys, tmp_path, service_url, spec_path
    ):
        code, summary = run_sweep_cli(
            capsys, tmp_path, service_url, spec_path, "base"
        )
        assert code == 0
        report = json.loads(
            (tmp_path / "sweeps" / "base" / "report.json").read_text()
        )
        for row in report["points"]:
            row["ci_low"] = 0.0
            row["ci_high"] = 1e-9  # every real estimate now regresses
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(report))

        code, summary = run_cli(capsys, [
            "sweep", "run", str(spec_path),
            "--sweeps-dir", str(tmp_path / "sweeps"),
            "--sweep-id", "regressed",
            "--baseline", str(baseline),
            "--url", service_url, "--quiet", "--json",
        ])
        assert code == 1
        assert summary["verdict"] == "regressed"

        code, report_doc = run_cli(capsys, [
            "sweep", "report", "regressed",
            "--sweeps-dir", str(tmp_path / "sweeps"), "--json",
        ])
        assert code == 1
        assert report_doc["regression"]["verdict"] == "regressed"


class TestExitCodeConventions:
    def test_unknown_sweep_id_exits_two(self, capsys, tmp_path):
        from repro import cli

        for verb in ("status", "report"):
            code = cli.main([
                "sweep", verb, "missing",
                "--sweeps-dir", str(tmp_path / "nosweeps"), "--json",
            ])
            assert code == 2
            assert "error:" in capsys.readouterr().err

    def test_bad_spec_file_exits_two(self, capsys, tmp_path, service_url):
        from repro import cli

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({**SWEEP_DOC, "axes": {"windw": [1]}}))
        code = cli.main([
            "sweep", "run", str(bad),
            "--sweeps-dir", str(tmp_path / "sweeps"),
            "--url", service_url, "--quiet", "--json",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "unknown sweep axis 'windw'" in err

    def test_incomplete_sweep_status_exits_one(self, capsys, tmp_path):
        SweepStore.create(
            tmp_path / "sweeps",
            SweepSpec(base=SWEEP_DOC["base"], axes={"seed": (1, 2)}),
            sweep_id="pending",
        )
        code, status = run_cli(capsys, [
            "sweep", "status", "pending",
            "--sweeps-dir", str(tmp_path / "sweeps"), "--json",
        ])
        assert code == 1
        assert status["complete"] is False

    def test_report_before_completion_exits_two(self, capsys, tmp_path):
        from repro import cli

        SweepStore.create(
            tmp_path / "sweeps",
            SweepSpec(base=SWEEP_DOC["base"], axes={"seed": (1, 2)}),
            sweep_id="pending",
        )
        code = cli.main([
            "sweep", "report", "pending",
            "--sweeps-dir", str(tmp_path / "sweeps"), "--json",
        ])
        assert code == 2
        assert "no report yet" in capsys.readouterr().err
