"""Golden-file suites pinning machine-readable CLI contracts."""
