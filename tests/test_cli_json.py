"""Golden-file tests for the CLI's machine-readable surfaces.

Scripts and the CI pipeline consume ``--json`` output, so the *key sets*
of every JSON document (and the exit-code conventions) are pinned in
``tests/golden/cli_json_keys.json``.  Adding a key is a deliberate act:
regenerate the golden file with ``REPRO_REGEN_GOLDEN=1 pytest
tests/test_cli_json.py`` and review the diff.  Removing or renaming a key
breaks consumers and should fail loudly here.

The campaign/service verbs run against the stub Bernoulli engine
(``CampaignSpec.build_runtime`` is monkeypatched; the service gets an
``engine_factory``), so these tests exercise the full CLI wiring without
paying a cross-level context build.
"""

import json
import os
import pathlib

import pytest

from repro import cli
from repro.campaign import CampaignSpec, RunStore, StoppingConfig
from repro.campaign.store import STATUS_INTERRUPTED
from repro.conformance.differential import DifferentialReport, SamplerVerdict
from repro.service import EvaluationService, ServiceServer
from repro.utils.stats import Chi2Result

from tests.campaign.stubs import BernoulliEngine, StubSampler

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "cli_json_keys.json"
REGEN = os.environ.get("REPRO_REGEN_GOLDEN") == "1"

#: Keys whose presence depends on timing (live metrics flushes), not on
#: the API contract — ignored by the comparison.
VOLATILE_KEYS = {"status": {"n_samples_live"}}


def run_cli(capsys, argv):
    """Invoke the CLI in-process; return (exit code, parsed JSON)."""
    code = cli.main(argv)
    out = capsys.readouterr().out
    json_lines = [l for l in out.splitlines() if l.startswith(("{", "["))]
    assert json_lines, f"no JSON on stdout for {argv}: {out!r}"
    return code, json.loads(json_lines[-1])


def check_keys(name, payload):
    observed = sorted(set(payload) - VOLATILE_KEYS.get(name, set()))
    if REGEN:
        data = (
            json.loads(GOLDEN_PATH.read_text()) if GOLDEN_PATH.exists() else {}
        )
        data[name] = observed
        GOLDEN_PATH.parent.mkdir(exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        return
    golden = json.loads(GOLDEN_PATH.read_text())
    assert name in golden, f"no golden key set for {name!r} — regenerate"
    assert observed == golden[name], (
        f"{name}: JSON keys drifted from tests/golden/cli_json_keys.json "
        f"(set REPRO_REGEN_GOLDEN=1 to accept)"
    )


@pytest.fixture()
def stub_runtime(monkeypatch):
    monkeypatch.setattr(
        CampaignSpec,
        "build_runtime",
        lambda self: (BernoulliEngine(p=0.3), StubSampler()),
    )


class TestCampaignVerbs:
    def test_campaign_run_json_and_exit_code(
        self, capsys, tmp_path, stub_runtime
    ):
        code, payload = run_cli(capsys, [
            "campaign", "run", "--stop", "fixed", "-n", "40",
            "--chunk-size", "20", "--seed", "9",
            "--runs-dir", str(tmp_path), "--run-id", "golden", "--json",
        ])
        assert code == 0
        assert payload["status"] == "complete"
        assert payload["run_id"] == "golden"
        assert payload["n_samples"] == 40
        assert payload["ci_low"] <= payload["ssf"] <= payload["ci_high"]
        check_keys("campaign_run", payload)

    def test_campaign_resume_json(self, capsys, tmp_path, stub_runtime):
        spec = CampaignSpec(
            seed=9, chunk_size=20, stopping=StoppingConfig(n_samples=40)
        )
        store = RunStore.create(tmp_path, spec, run_id="torestart")
        store.write_checkpoint(
            {"status": STATUS_INTERRUPTED, "n_samples": 0}
        )
        code, payload = run_cli(capsys, [
            "campaign", "resume", "torestart",
            "--runs-dir", str(tmp_path), "--json",
        ])
        assert code == 0
        assert payload["status"] == "complete"
        check_keys("campaign_resume", payload)

    def test_campaign_status_json(self, capsys, tmp_path, stub_runtime):
        run_cli(capsys, [
            "campaign", "run", "--stop", "fixed", "-n", "40",
            "--chunk-size", "20", "--seed", "9",
            "--runs-dir", str(tmp_path), "--run-id", "golden", "--json",
        ])
        code, payload = run_cli(capsys, [
            "campaign", "status", "golden",
            "--runs-dir", str(tmp_path), "--json",
        ])
        assert code == 0
        assert payload["status"] == "complete"
        assert payload["spec"]["seed"] == 9
        check_keys("campaign_status", payload)

        code, listing = run_cli(capsys, [
            "campaign", "status", "--runs-dir", str(tmp_path), "--json",
        ])
        assert code == 0
        assert [r["run_id"] for r in listing["runs"]] == ["golden"]
        check_keys("campaign_status_list", listing["runs"][0])

    def test_interrupted_status_exits_nonzero(self, capsys, tmp_path):
        spec = CampaignSpec(stopping=StoppingConfig(n_samples=40))
        store = RunStore.create(tmp_path, spec, run_id="broken")
        store.write_checkpoint(
            {"status": STATUS_INTERRUPTED, "n_samples": 20, "n_success": 3}
        )
        code, payload = run_cli(capsys, [
            "campaign", "status", "broken",
            "--runs-dir", str(tmp_path), "--json",
        ])
        assert code == 1
        assert payload["status"] == "interrupted"

    def test_unknown_run_exits_two(self, capsys, tmp_path):
        code = cli.main([
            "campaign", "status", "missing",
            "--runs-dir", str(tmp_path), "--json",
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err


@pytest.fixture()
def service_url(tmp_path):
    service = EvaluationService(
        tmp_path / "svc-runs",
        engine_factory=lambda spec: (BernoulliEngine(p=0.3), StubSampler()),
    )
    server = ServiceServer(service, port=0)
    server.start()
    yield server.url
    server.stop(cancel_running=True)


class TestServiceVerbs:
    def test_submit_status_result_json(self, capsys, service_url):
        code, submitted = run_cli(capsys, [
            "submit", "--stop", "fixed", "-n", "60", "--chunk-size", "20",
            "--seed", "9", "--url", service_url, "--wait", "--json",
        ])
        assert code == 0
        assert submitted["state"] == "done"
        check_keys("submit", submitted)
        job_id = submitted["job_id"]

        code, status = run_cli(capsys, [
            "status", job_id, "--url", service_url, "--json",
        ])
        assert code == 0
        assert status["state"] == "done"
        check_keys("status", status)

        code, result = run_cli(capsys, [
            "result", job_id, "--url", service_url, "--json",
        ])
        assert code == 0
        assert result["n_samples"] == 60
        assert result["ci_low"] <= result["ssf"] <= result["ci_high"]
        check_keys("result", result)


def _synthetic_report(passed=True):
    verdict = SamplerVerdict(
        sampler="uniform",
        ssf=0.25,
        n_samples=1000,
        n_success=250,
        ci_low=0.2,
        ci_high=0.3,
        ci_kind="risk",
        stop_reason="risk target met at n=1000 (bound 950)",
        covers_exact=passed,
        n_outcome_mismatches=0,
        per_bit_ok=True,
        per_bit_mc={"cfg_top0[12]": 250},
        per_bit_expected={"cfg_top0[12]": 250},
        gof=Chi2Result(3.0, 5, 0.7, 6, 0),
        gof_ok=True,
    )
    return DifferentialReport(
        design="write-cfg",
        exact_ssf=0.25,
        n_enumerated=36,
        enumeration_wall_s=0.05,
        verdicts=[verdict],
    )


class TestConformanceVerbs:
    """CLI wiring of ``conformance``/``replay`` against synthetic results
    (the real differential/replay paths are covered by tests/conformance)."""

    def test_conformance_json_and_exit_codes(self, capsys, monkeypatch):
        import repro.conformance

        monkeypatch.setattr(
            repro.conformance,
            "run_design",
            lambda design, config: _synthetic_report(passed=True),
        )
        code, payload = run_cli(
            capsys, ["conformance", "--design", "write-cfg", "--json"]
        )
        assert code == 0
        assert payload["passed"] is True
        check_keys("conformance", payload)
        check_keys("conformance_report", payload["reports"][0])
        check_keys("conformance_verdict", payload["reports"][0]["verdicts"][0])

        monkeypatch.setattr(
            repro.conformance,
            "run_design",
            lambda design, config: _synthetic_report(passed=False),
        )
        code, payload = run_cli(
            capsys, ["conformance", "--design", "write-cfg", "--json"]
        )
        assert code == 1
        assert payload["passed"] is False

    def test_replay_json_and_exit_codes(
        self, capsys, tmp_path, monkeypatch
    ):
        import repro.conformance
        from repro.conformance.replay import ReplayedSample

        spec = CampaignSpec(stopping=StoppingConfig(n_samples=10))
        RunStore.create(tmp_path, spec, run_id="replayed")
        logged = {"t": 2, "centre": 7, "e": 1}

        def fake_replay(store, sample_index, engine=None, sampler=None):
            return ReplayedSample(
                run_id=store.run_id,
                sample_index=sample_index,
                chunk_index=0,
                chunk_offset=sample_index,
                logged=logged,
                replayed=dict(logged),
            )

        monkeypatch.setattr(repro.conformance, "replay_sample", fake_replay)
        code, payload = run_cli(capsys, [
            "replay", "replayed", "--sample", "3",
            "--runs-dir", str(tmp_path), "--json",
        ])
        assert code == 0
        assert payload["bit_identical"] is True
        check_keys("replay", payload)

        def diverging_replay(store, sample_index, engine=None, sampler=None):
            return ReplayedSample(
                run_id=store.run_id,
                sample_index=sample_index,
                chunk_index=0,
                chunk_offset=sample_index,
                logged=logged,
                replayed={**logged, "e": 0},
            )

        monkeypatch.setattr(
            repro.conformance, "replay_sample", diverging_replay
        )
        code, payload = run_cli(capsys, [
            "replay", "replayed", "--sample", "3",
            "--runs-dir", str(tmp_path), "--json",
        ])
        assert code == 1
        assert payload["diverging_fields"] == ["e"]
