"""Spec-hash stability: the cache key must change iff the semantics do.

The golden hashes pin the canonicalization scheme itself — if one of
these tests fails after an intentional scheme change, bump
``HASH_SCHEMA_VERSION`` (which is the point: every cached result is
invalidated together).
"""

import json

import pytest

from repro.campaign import CampaignSpec, StoppingConfig
from repro.campaign.spec_hash import (
    HASH_SCHEMA_VERSION,
    canonical_spec_dict,
    canonical_spec_json,
    code_version_salt,
    spec_hash,
)

GOLDEN_DEFAULT = (
    "1d9037c1f3adb77540b549547cf8cf624843c0281a189182c257885b3d26c1df"
)
GOLDEN_TMR_CONE_RISK = (
    "ad36b731ef15c3f2edf4e42aea732e2bb2931d1b0c6cb267f82b8c2e3102d62f"
)


def _version():
    import repro

    return repro.__version__


class TestGoldenHashes:
    """Golden values computed for repro 1.0.0, schema v2.

    A version bump intentionally changes every hash (cache-wide
    invalidation); these pins then need recomputing, which the skipif
    makes explicit rather than a silent red suite.
    """

    pytestmark = pytest.mark.skipif(
        "_version() != '1.0.0' or HASH_SCHEMA_VERSION != 2",
        reason="golden hashes pinned for repro 1.0.0 / schema v2",
    )

    def test_default_spec_hash_pinned(self):
        assert spec_hash(CampaignSpec()) == GOLDEN_DEFAULT

    def test_variant_spec_hash_pinned(self):
        spec = CampaignSpec(
            variant="tmr+parity",
            sampler="cone",
            stopping=StoppingConfig(mode="risk", epsilon=0.01),
        )
        assert spec_hash(spec) == GOLDEN_TMR_CONE_RISK

    def test_salt_carries_version_and_schema(self):
        import repro

        salt = code_version_salt()
        assert repro.__version__ in salt
        assert f"v{HASH_SCHEMA_VERSION}" in salt


class TestDefaultVsExplicit:
    def test_explicit_defaults_hash_identically(self):
        assert spec_hash(
            CampaignSpec(benchmark="write", sampler="importance", seed=2024)
        ) == spec_hash(CampaignSpec())

    def test_from_dict_roundtrip_preserves_hash(self):
        spec = CampaignSpec(variant="dual", window=30)
        clone = CampaignSpec.from_dict(json.loads(spec.to_json()))
        assert spec_hash(clone) == spec_hash(spec)

    def test_sparse_dict_equals_full_dict(self):
        # A submission carrying only non-default fields hashes like one
        # spelling out every default.
        sparse = CampaignSpec.from_dict({"window": 30})
        full = CampaignSpec.from_dict(CampaignSpec(window=30).to_dict())
        assert spec_hash(sparse) == spec_hash(full)

    def test_field_order_is_irrelevant(self):
        data = CampaignSpec().to_dict()
        reordered = dict(reversed(list(data.items())))
        assert spec_hash(CampaignSpec.from_dict(reordered)) == spec_hash(
            CampaignSpec.from_dict(data)
        )


class TestVariantNormalization:
    @pytest.mark.parametrize(
        "alias", ["tmr+parity", "TMR+PARITY", "parity+tmr", "Parity+TMR"]
    )
    def test_variant_aliases_hash_identically(self, alias):
        reference = spec_hash(CampaignSpec(variant="tmr+parity"))
        assert spec_hash(CampaignSpec(variant=alias)) == reference

    def test_none_aliases(self):
        assert spec_hash(CampaignSpec(variant="NONE")) == spec_hash(
            CampaignSpec(variant="none")
        )

    def test_different_variants_hash_differently(self):
        hashes = {
            spec_hash(CampaignSpec(variant=v))
            for v in ("none", "parity", "dual", "dual+parity", "tmr")
        }
        assert len(hashes) == 5


class TestSemanticFields:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("benchmark", "read"),
            ("sampler", "random"),
            ("window", 25),
            ("subblock_fraction", 0.25),
            ("impact_cycles", 2),
            ("seed", 1),
            # chunk_size selects the per-chunk seed streams, so it is
            # part of the identity even though it looks operational.
            ("chunk_size", 25),
        ],
    )
    def test_semantic_change_changes_hash(self, field, value):
        assert spec_hash(
            CampaignSpec(**{field: value})
        ) != spec_hash(CampaignSpec())

    def test_stopping_rule_is_semantic(self):
        risk = CampaignSpec(stopping=StoppingConfig(mode="risk"))
        assert spec_hash(risk) != spec_hash(CampaignSpec())

    def test_trace_is_not_semantic(self):
        assert spec_hash(CampaignSpec(trace=True)) == spec_hash(
            CampaignSpec(trace=False)
        )

    def test_charac_cache_is_not_semantic(self):
        assert spec_hash(
            CampaignSpec(charac_cache="/tmp/c.json")
        ) == spec_hash(CampaignSpec())

    def test_batch_is_not_semantic(self):
        """The batched kernel is bit-identical to the scalar path, so
        batched and scalar runs of one spec share a cache entry."""
        assert spec_hash(CampaignSpec(batch=False)) == spec_hash(
            CampaignSpec(batch=True)
        )

    def test_batch_off_still_matches_the_golden_pin(self):
        # ``batch`` is excluded from the canonical dict, so flipping the
        # escape hatch must still resolve to the golden default entry.
        assert spec_hash(CampaignSpec(batch=False)) == GOLDEN_DEFAULT

    def test_engine_is_semantic(self):
        """Swapping the evaluation backend changes what is estimated
        (the surrogate draws latched patterns instead of simulating
        them), so surrogate runs must never serve exact cache hits."""
        surrogate = CampaignSpec(engine="surrogate")
        assert spec_hash(surrogate) != spec_hash(CampaignSpec())

    def test_fidelity_is_semantic(self):
        single = CampaignSpec(engine="surrogate", fidelity="single")
        two_stage = CampaignSpec(engine="surrogate", fidelity="two_stage")
        assert spec_hash(two_stage) != spec_hash(single)

    def test_calibration_is_not_semantic(self):
        """Like charac_cache, the calibration artifact is derived
        deterministically from the spec seed; the path only skips the
        in-process refit."""
        assert spec_hash(
            CampaignSpec(engine="surrogate", calibration="/tmp/cal.json")
        ) == spec_hash(CampaignSpec(engine="surrogate"))

    def test_telemetry_is_not_semantic(self):
        """Shipped worker telemetry is forced non-deterministic on
        ingest and can never reach the estimator, so the flag must not
        split the result cache."""
        assert spec_hash(CampaignSpec(telemetry=False)) == spec_hash(
            CampaignSpec(telemetry=True)
        )

    def test_telemetry_off_still_matches_the_golden_pin(self):
        # PR 7 introduced ``telemetry`` without a schema bump: hashes
        # from before the field existed must keep resolving.
        assert spec_hash(CampaignSpec(telemetry=False)) == GOLDEN_DEFAULT

    def test_canonical_dict_drops_non_semantic_fields(self):
        data = canonical_spec_dict(CampaignSpec(trace=True))
        assert "trace" not in data
        assert "charac_cache" not in data
        assert "calibration" not in data
        assert "batch" not in data
        assert "telemetry" not in data
        assert data["engine"] == "exact"
        assert data["fidelity"] == "single"

    def test_canonical_json_is_minified_and_sorted(self):
        text = canonical_spec_json(CampaignSpec())
        assert ": " not in text
        keys = list(json.loads(text))
        assert keys == sorted(keys)
