"""Regression: idle service workers must park on the queue Condition,
not wake up on short timeouts to poll (the old loop popped with
``timeout=0.5``, costing two wakeups per second per worker forever).
"""

import time

from repro.campaign import CampaignSpec, StoppingConfig
from repro.service import EvaluationService

from tests.campaign.stubs import BernoulliEngine, StubSampler


def test_idle_workers_burn_no_cpu(tmp_path):
    service = EvaluationService(
        tmp_path / "runs",
        max_concurrency=4,
        engine_factory=lambda spec: (BernoulliEngine(), StubSampler()),
    )
    service.start()
    try:
        # Settle, then measure process CPU across an idle window.  Four
        # polling workers would accumulate real CPU here; four workers
        # blocked in Condition.wait() accumulate none.
        time.sleep(0.1)
        cpu_before = time.process_time()
        time.sleep(1.0)
        cpu_spent = time.process_time() - cpu_before
        assert cpu_spent < 0.25, (
            f"idle service burned {cpu_spent:.3f}s CPU in 1s wall — "
            "workers are polling instead of blocking"
        )
    finally:
        service.stop()


def test_blocking_pop_still_executes_and_stops_cleanly(tmp_path):
    """The blocking loop must not cost liveness: jobs submitted after
    start still run, and stop() unblocks parked workers promptly."""
    service = EvaluationService(
        tmp_path / "runs",
        engine_factory=lambda spec: (BernoulliEngine(), StubSampler()),
    )
    service.start()
    time.sleep(0.2)  # worker is parked in the blocking pop by now
    job, _ = service.submit(
        CampaignSpec(seed=5, chunk_size=20,
                     stopping=StoppingConfig(n_samples=40))
    )
    deadline = time.monotonic() + 30
    while not service.get_job(job.job_id).terminal:
        assert time.monotonic() < deadline
        time.sleep(0.02)
    assert service.get_job(job.job_id).state == "done"
    start = time.monotonic()
    service.stop()
    assert time.monotonic() - start < 5
