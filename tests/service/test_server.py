"""HTTP API end-to-end over a real socket (stub engine underneath)."""

import json
import urllib.error
import urllib.request

import pytest

from repro.campaign import CampaignSpec, StoppingConfig
from repro.errors import ServiceError
from repro.service import EvaluationService, ServiceClient, ServiceServer

from tests.campaign.stubs import BernoulliEngine, StubSampler

SPEC = CampaignSpec(
    seed=9, chunk_size=20, stopping=StoppingConfig(n_samples=60)
)


@pytest.fixture()
def server(tmp_path):
    # The small per-chunk delay keeps long campaigns pending long enough
    # for the cancel / not-ready assertions to observe them in flight.
    service = EvaluationService(
        tmp_path / "runs",
        engine_factory=lambda spec: (
            BernoulliEngine(p=0.3, delay_s=0.02),
            StubSampler(),
        ),
    )
    srv = ServiceServer(service, port=0)  # ephemeral port
    srv.start()
    yield srv
    srv.stop(cancel_running=True)


@pytest.fixture()
def client(server):
    return ServiceClient(server.url)


class TestEndToEnd:
    def test_submit_poll_result_report(self, client):
        response = client.submit(SPEC)
        assert response["cache_hit"] is False
        assert response["state"] == "queued"
        status = client.wait(response["job_id"], timeout_s=30)
        assert status["state"] == "done"
        assert status["n_samples"] == 60

        result = client.result(response["job_id"])
        assert result["n_samples"] == 60
        assert result["ci_low"] <= result["ssf"] <= result["ci_high"]

        report = client.report(response["job_id"])
        assert "Run report" in report
        assert "Outcome categories" in report

    def test_resubmission_is_a_cache_hit_with_identical_result(self, client):
        first = client.submit(SPEC)
        client.wait(first["job_id"], timeout_s=30)
        second = client.submit(SPEC)
        assert second["cache_hit"] is True
        assert second["state"] == "done"
        r1 = client.result(first["job_id"])
        r2 = client.result(second["job_id"])
        assert r1["ssf"] == r2["ssf"]
        assert r1["ci_low"] == r2["ci_low"]
        assert r1["run_id"] == r2["run_id"]

    def test_spec_document_body_without_wrapper(self, server, client):
        # POST the bare spec dict (no {"spec": ...} envelope).
        raw = json.dumps(SPEC.to_dict()).encode()
        request = urllib.request.Request(
            f"{server.url}/v1/campaigns",
            data=raw,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=10) as resp:
            payload = json.loads(resp.read())
        assert payload["state"] in ("queued", "running", "done")
        client.wait(payload["job_id"], timeout_s=30)

    def test_healthz_and_metrics(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert set(health["jobs"]) == {
            "queued", "running", "done", "failed", "cancelled",
        }
        job = client.submit(SPEC)
        client.wait(job["job_id"], timeout_s=30)
        client.submit(SPEC)
        text = client.metrics_text()
        assert "service_queue_depth" in text
        assert 'service_jobs{state="done"} 1' in text
        assert 'service_cache_requests_total{outcome="hit"} 1' in text
        assert "service_cache_hit_ratio 0.5" in text

    def test_cancel_over_http(self, client):
        slow = CampaignSpec(
            seed=3, chunk_size=10, stopping=StoppingConfig(n_samples=2000)
        )
        job = client.submit(slow)
        cancelled = client.cancel(job["job_id"])
        assert cancelled["state"] in ("cancelled", "running")
        final = client.wait(job["job_id"], timeout_s=30)
        assert final["state"] == "cancelled"

    def test_list_jobs(self, client):
        job = client.submit(SPEC)
        listing = client.list_jobs()
        assert any(j["job_id"] == job["job_id"] for j in listing["jobs"])


class TestErrors:
    def test_unknown_job_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.status("nope")
        assert err.value.status == 404

    def test_result_not_ready_409(self, client):
        slow = CampaignSpec(
            seed=4, chunk_size=10, stopping=StoppingConfig(n_samples=2000)
        )
        job = client.submit(slow)
        with pytest.raises(ServiceError) as err:
            client.result(job["job_id"])
        assert err.value.status == 409
        client.cancel(job["job_id"])

    def test_invalid_spec_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.submit({"sampler": "quantum"})
        assert err.value.status == 400
        assert "quantum" in str(err.value)

    def test_invalid_json_400(self, server):
        request = urllib.request.Request(
            f"{server.url}/v1/campaigns",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 400

    def test_unknown_route_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(
                f"{server.url}/v1/espresso", timeout=10
            )
        assert err.value.code == 404

    def test_unreachable_service(self):
        client = ServiceClient("http://127.0.0.1:1", timeout_s=1)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.healthz()
