"""ResultCache: run directories double as content-addressed cache."""

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    RunStore,
    StoppingConfig,
    spec_hash,
)
from repro.service.cache import ResultCache, result_payload
from repro.utils.stats import wilson_interval

from tests.campaign.stubs import BernoulliEngine, StubSampler

SPEC = CampaignSpec(
    seed=11, chunk_size=25, stopping=StoppingConfig(n_samples=100)
)


def run_campaign(runs_dir, spec=SPEC, run_id="done"):
    store = RunStore.create(runs_dir, spec, run_id=run_id)
    CampaignRunner(
        spec,
        store=store,
        engine=BernoulliEngine(p=0.3),
        sampler=StubSampler(),
        n_workers=1,
    ).run()
    return store


class TestLookups:
    def test_complete_run_is_a_hit(self, tmp_path):
        run_campaign(tmp_path)
        hit = ResultCache(tmp_path).lookup_complete(spec_hash(SPEC))
        assert hit is not None
        assert hit.run_id == "done"
        assert hit.checkpoint["status"] == "complete"

    def test_different_spec_misses(self, tmp_path):
        run_campaign(tmp_path)
        other = CampaignSpec(
            seed=12, chunk_size=25, stopping=StoppingConfig(n_samples=100)
        )
        cache = ResultCache(tmp_path)
        assert cache.lookup_complete(spec_hash(other)) is None
        assert cache.lookup_partial(spec_hash(other)) is None

    def test_unfinished_run_is_partial_not_complete(self, tmp_path):
        RunStore.create(tmp_path, SPEC, run_id="fresh")  # status: running
        cache = ResultCache(tmp_path)
        digest = spec_hash(SPEC)
        assert cache.lookup_complete(digest) is None
        assert cache.lookup_partial(digest) == "fresh"

    def test_semantically_equal_spec_hits(self, tmp_path):
        run_campaign(tmp_path)
        # trace is observability-only: same cache entry.
        twin = CampaignSpec(
            seed=11,
            chunk_size=25,
            trace=True,
            stopping=StoppingConfig(n_samples=100),
        )
        assert ResultCache(tmp_path).lookup_complete(
            spec_hash(twin)
        ) is not None

    def test_corrupt_spec_is_a_miss_not_an_error(self, tmp_path):
        store = run_campaign(tmp_path)
        (store.path / "spec.json").write_text("{broken")
        cache = ResultCache(tmp_path)
        assert cache.lookup_complete(spec_hash(SPEC)) is None

    def test_hash_memo_tracks_mtime(self, tmp_path):
        run_campaign(tmp_path)
        cache = ResultCache(tmp_path)
        digest = spec_hash(SPEC)
        assert cache.lookup_complete(digest) is not None
        # Memoized second lookup, same answer.
        assert cache.lookup_complete(digest).run_id == "done"

    def test_empty_runs_dir(self, tmp_path):
        cache = ResultCache(tmp_path / "nothing")
        assert cache.lookup_complete("0" * 64) is None
        assert cache.lookup_partial("0" * 64) is None


class TestResultPayload:
    def test_payload_matches_checkpoint_and_wilson_ci(self, tmp_path):
        store = run_campaign(tmp_path)
        checkpoint = store.read_checkpoint()
        payload = result_payload(store)
        assert payload["run_id"] == "done"
        assert payload["status"] == "complete"
        assert payload["ssf"] == checkpoint["ssf"]
        assert payload["n_samples"] == checkpoint["n_samples"]
        lo, hi = wilson_interval(
            checkpoint["n_success"], checkpoint["n_samples"], z=1.96
        )
        assert payload["ci_low"] == lo
        assert payload["ci_high"] == hi
        assert payload["ci_low"] <= payload["ssf"] <= payload["ci_high"]

    def test_missing_run_raises_with_path(self, tmp_path):
        import pytest

        from repro.errors import EvaluationError

        store = RunStore(tmp_path / "ghost")
        with pytest.raises(EvaluationError, match="ghost"):
            result_payload(store)
