"""JobStore durability and JobQueue ordering semantics."""

import json
import threading

import pytest

from repro.errors import ServiceError
from repro.service.jobs import (
    Job,
    JobQueue,
    JobStore,
    STATE_CANCELLED,
    STATE_DONE,
    STATE_QUEUED,
    STATE_RUNNING,
)


def make_job(job_id="j1", priority=0, seq=0, **kwargs) -> Job:
    return Job(
        job_id=job_id,
        spec={"benchmark": "write"},
        spec_hash="h" * 64,
        run_id=job_id,
        priority=priority,
        seq=seq,
        **kwargs,
    )


class TestJobStore:
    def test_submit_then_load_roundtrip(self, tmp_path):
        store = JobStore(tmp_path)
        job = make_job(priority=3, seq=7)
        store.record_submit(job)
        loaded = JobStore(tmp_path).load()
        assert loaded["j1"].to_dict() == job.to_dict()

    def test_updates_fold_in_order(self, tmp_path):
        store = JobStore(tmp_path)
        store.record_submit(make_job())
        store.record_update("j1", state=STATE_RUNNING)
        store.record_update("j1", state=STATE_DONE, result={"ssf": 0.25})
        job = JobStore(tmp_path).load()["j1"]
        assert job.state == STATE_DONE
        assert job.result == {"ssf": 0.25}

    def test_torn_final_line_is_discarded(self, tmp_path):
        store = JobStore(tmp_path)
        store.record_submit(make_job())
        store.record_update("j1", state=STATE_RUNNING)
        log = tmp_path / "jobs.jsonl"
        log.write_text(log.read_text() + '{"event": "upd')  # no newline
        job = JobStore(tmp_path).load()["j1"]
        assert job.state == STATE_RUNNING

    def test_corrupt_interior_line_raises(self, tmp_path):
        store = JobStore(tmp_path)
        store.record_submit(make_job())
        log = tmp_path / "jobs.jsonl"
        log.write_text("not json\n" + log.read_text())
        with pytest.raises(ServiceError, match="corrupt job log"):
            JobStore(tmp_path).load()

    def test_update_for_unknown_job_raises(self, tmp_path):
        store = JobStore(tmp_path)
        store.record_update("ghost", state=STATE_DONE)
        with pytest.raises(ServiceError, match="unknown job"):
            JobStore(tmp_path).load()

    def test_unknown_future_fields_are_ignored(self, tmp_path):
        # Forward compatibility: a newer writer may log extra job fields.
        store = JobStore(tmp_path)
        payload = make_job().to_dict()
        payload["shiny_new_field"] = 42
        store._append({"event": "submit", "job": payload})
        assert JobStore(tmp_path).load()["j1"].state == STATE_QUEUED

    def test_empty_store_loads_empty(self, tmp_path):
        assert JobStore(tmp_path / "fresh").load() == {}

    def test_log_lines_are_json(self, tmp_path):
        store = JobStore(tmp_path)
        store.record_submit(make_job())
        store.record_update("j1", state=STATE_CANCELLED)
        lines = (tmp_path / "jobs.jsonl").read_text().splitlines()
        assert [json.loads(l)["event"] for l in lines] == [
            "submit", "update",
        ]


class TestJobQueue:
    def test_fifo_within_priority(self):
        queue = JobQueue()
        for seq in range(3):
            queue.push(make_job(job_id=f"j{seq}", seq=seq))
        assert [queue.pop(0.01).job_id for _ in range(3)] == [
            "j0", "j1", "j2",
        ]

    def test_higher_priority_first(self):
        queue = JobQueue()
        queue.push(make_job(job_id="low", priority=0, seq=0))
        queue.push(make_job(job_id="high", priority=5, seq=1))
        assert queue.pop(0.01).job_id == "high"
        assert queue.pop(0.01).job_id == "low"

    def test_pop_timeout_returns_none(self):
        assert JobQueue().pop(timeout=0.01) is None

    def test_cancelled_jobs_are_skipped(self):
        queue = JobQueue()
        victim = make_job(job_id="victim", seq=0)
        queue.push(victim)
        queue.push(make_job(job_id="next", seq=1))
        victim.state = STATE_CANCELLED  # lazy cancellation
        assert queue.pop(0.01).job_id == "next"
        assert queue.depth() == 0

    def test_depth_counts_only_queued(self):
        queue = JobQueue()
        queue.push(make_job(job_id="a", seq=0))
        b = make_job(job_id="b", seq=1)
        queue.push(b)
        b.state = STATE_CANCELLED
        assert queue.depth() == 1

    def test_close_wakes_blocked_pop(self):
        queue = JobQueue()
        out = {}

        def blocked():
            out["job"] = queue.pop(timeout=10)

        thread = threading.Thread(target=blocked)
        thread.start()
        queue.close()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert out["job"] is None

    def test_push_after_close_raises(self):
        queue = JobQueue()
        queue.close()
        with pytest.raises(ServiceError, match="closed"):
            queue.push(make_job())
