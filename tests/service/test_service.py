"""EvaluationService: dedup, caching, execution, cancel, recovery."""

import time

import pytest

from repro.campaign import CampaignSpec, RunStore, StoppingConfig, spec_hash
from repro.errors import ServiceError
from repro.service import EvaluationService
from repro.service.jobs import (
    STATE_CANCELLED,
    STATE_DONE,
    STATE_FAILED,
    STATE_QUEUED,
)

from tests.campaign.stubs import BernoulliEngine, StubSampler

SPEC = CampaignSpec(
    seed=5, chunk_size=20, stopping=StoppingConfig(n_samples=80)
)


def stub_factory(delay_s: float = 0.0):
    def factory(spec):
        return BernoulliEngine(p=0.3, delay_s=delay_s), StubSampler()

    return factory


def make_service(tmp_path, **kwargs) -> EvaluationService:
    kwargs.setdefault("engine_factory", stub_factory())
    return EvaluationService(tmp_path / "runs", **kwargs)


def wait_terminal(service, job_id, timeout_s=30.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        job = service.get_job(job_id)
        if job.terminal:
            return job
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never finished")


class TestSubmitAndExecute:
    def test_submit_runs_campaign_to_done(self, tmp_path):
        service = make_service(tmp_path)
        service.start()
        try:
            job, cache_hit = service.submit(SPEC)
            assert not cache_hit
            assert job.state == STATE_QUEUED
            done = wait_terminal(service, job.job_id)
            assert done.state == STATE_DONE
            result = service.job_result(job.job_id)
            assert result["n_samples"] == 80
            assert 0.0 <= result["ssf"] <= 1.0
            assert result["ci_low"] <= result["ssf"] <= result["ci_high"]
        finally:
            service.stop()

    def test_identical_spec_runs_once_and_hits_cache(self, tmp_path):
        service = make_service(tmp_path)
        service.start()
        try:
            first, hit1 = service.submit(SPEC)
            wait_terminal(service, first.job_id)
            second, hit2 = service.submit(SPEC)
            assert (hit1, hit2) == (False, True)
            assert second.run_id == first.run_id
            assert service.job_result(second.job_id)["ssf"] == (
                service.job_result(first.job_id)["ssf"]
            )
            # Exactly one run directory: the campaign executed once.
            assert RunStore.list_runs(service.runs_dir) == [first.run_id]
        finally:
            service.stop()

    def test_active_duplicate_coalesces(self, tmp_path):
        service = make_service(tmp_path)  # workers not started
        a, _ = service.submit(SPEC)
        b, hit = service.submit(SPEC)
        assert b.job_id == a.job_id
        assert not hit
        assert service.queue.depth() == 1
        service.stop(wait=False)

    def test_failed_jobs_do_not_dedup(self, tmp_path):
        def broken(spec):
            raise RuntimeError("boom")

        service = make_service(tmp_path, engine_factory=broken)
        service.start()
        try:
            job, _ = service.submit(SPEC)
            failed = wait_terminal(service, job.job_id)
            assert failed.state == STATE_FAILED
            assert "boom" in failed.error
            retry, hit = service.submit(SPEC)
            assert retry.job_id != job.job_id
            assert not hit
        finally:
            service.stop()

    def test_result_of_unfinished_job_is_409(self, tmp_path):
        service = make_service(tmp_path)
        job, _ = service.submit(SPEC)
        with pytest.raises(ServiceError) as err:
            service.job_result(job.job_id)
        assert err.value.status == 409
        service.stop(wait=False)

    def test_unknown_job_is_404(self, tmp_path):
        service = make_service(tmp_path)
        with pytest.raises(ServiceError) as err:
            service.get_job("nope")
        assert err.value.status == 404
        service.stop(wait=False)


class TestCacheFromDisk:
    def test_prior_cli_run_is_served_without_new_work(self, tmp_path):
        from repro.campaign import CampaignRunner

        runs = tmp_path / "runs"
        store = RunStore.create(runs, SPEC, run_id="cli-run")
        CampaignRunner(
            SPEC,
            store=store,
            engine=BernoulliEngine(p=0.3),
            sampler=StubSampler(),
            n_workers=1,
        ).run()

        service = EvaluationService(runs, engine_factory=stub_factory())
        job, hit = service.submit(SPEC)
        assert hit
        assert job.state == STATE_DONE
        assert job.run_id == "cli-run"
        assert service.queue.depth() == 0
        service.stop(wait=False)

    def test_interrupted_run_is_adopted_for_resume(self, tmp_path):
        runs = tmp_path / "runs"
        RunStore.create(runs, SPEC, run_id="partial")  # no samples yet
        service = EvaluationService(runs, engine_factory=stub_factory())
        job, hit = service.submit(SPEC)
        assert not hit
        assert job.run_id == "partial"
        service.start()
        try:
            done = wait_terminal(service, job.job_id)
            assert done.state == STATE_DONE
        finally:
            service.stop()


class TestCancel:
    def test_cancel_queued_job(self, tmp_path):
        service = make_service(tmp_path)  # no workers running
        job, _ = service.submit(SPEC)
        cancelled = service.cancel(job.job_id)
        assert cancelled.state == STATE_CANCELLED
        assert service.queue.depth() == 0
        service.stop(wait=False)

    def test_cancel_running_job_interrupts_campaign(self, tmp_path):
        slow = CampaignSpec(
            seed=5, chunk_size=10, stopping=StoppingConfig(n_samples=400)
        )
        service = make_service(
            tmp_path, engine_factory=stub_factory(delay_s=0.05)
        )
        service.start()
        try:
            job, _ = service.submit(slow)
            deadline = time.monotonic() + 10
            while (
                service.get_job(job.job_id).state == STATE_QUEUED
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            service.cancel(job.job_id)
            final = wait_terminal(service, job.job_id)
            assert final.state == STATE_CANCELLED
            # The interrupted run stays resumable on disk.
            checkpoint = RunStore(
                service.runs_dir / job.run_id
            ).read_checkpoint()
            assert checkpoint["status"] in ("interrupted", "running")
        finally:
            service.stop(cancel_running=True)

    def test_cancel_terminal_job_is_noop(self, tmp_path):
        service = make_service(tmp_path)
        service.start()
        try:
            job, _ = service.submit(SPEC)
            wait_terminal(service, job.job_id)
            assert service.cancel(job.job_id).state == STATE_DONE
        finally:
            service.stop()


class TestRecovery:
    def test_restart_requeues_active_jobs(self, tmp_path):
        service = make_service(tmp_path)  # never started: job stays queued
        job, _ = service.submit(SPEC)
        service.stop(wait=False)

        reborn = make_service(tmp_path)
        assert reborn.get_job(job.job_id).state == STATE_QUEUED
        assert reborn.queue.depth() == 1
        reborn.start()
        try:
            done = wait_terminal(reborn, job.job_id)
            assert done.state == STATE_DONE
        finally:
            reborn.stop()


class TestMetrics:
    def test_queue_and_cache_metrics(self, tmp_path):
        service = make_service(tmp_path)
        service.start()
        try:
            job, _ = service.submit(SPEC)
            wait_terminal(service, job.job_id)
            service.submit(SPEC)  # hit
            m = service.metrics
            assert m.value(
                "service_cache_requests_total", outcome="hit"
            ) == 1
            assert m.value(
                "service_cache_requests_total", outcome="miss"
            ) == 1
            assert m.value("service_cache_hit_ratio") == 0.5
            assert m.value("service_jobs", state="done") == 1
            assert m.value("service_queue_depth") == 0
            text = service.metrics_text()
            assert "service_queue_depth 0" in text
            assert 'service_jobs{state="done"} 1' in text
        finally:
            service.stop()

    def test_priorities_order_execution(self, tmp_path):
        service = make_service(tmp_path)  # pop manually, no workers
        low = CampaignSpec(seed=1, stopping=StoppingConfig(n_samples=10))
        high = CampaignSpec(seed=2, stopping=StoppingConfig(n_samples=10))
        service.submit(low, priority=0)
        job_high, _ = service.submit(high, priority=9)
        assert service.queue.pop(0.01).job_id == job_high.job_id
        service.stop(wait=False)
