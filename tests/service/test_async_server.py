"""The asyncio front-end must be a drop-in for the threaded one: same
router, same protocol, plus task-parked SSE streaming."""

import json
import urllib.request

import pytest

from repro.campaign import CampaignSpec, StoppingConfig
from repro.service import (
    AsyncServiceServer,
    DISPATCH_FLEET,
    EvaluationService,
    ServiceClient,
)

from tests.campaign.stubs import BernoulliEngine, StubSampler
from tests.fleet.helpers import wait_terminal, workers

SPEC = CampaignSpec(
    seed=13, chunk_size=20, stopping=StoppingConfig(n_samples=60)
)


@pytest.fixture()
def server(tmp_path):
    service = EvaluationService(
        tmp_path / "runs",
        engine_factory=lambda spec: (BernoulliEngine(p=0.3), StubSampler()),
    )
    srv = AsyncServiceServer(service, port=0)
    srv.start()
    yield srv
    srv.stop(cancel_running=True)


@pytest.fixture()
def client(server):
    return ServiceClient(server.url)


class TestAsyncFrontend:
    def test_submit_wait_result(self, client):
        response = client.submit(SPEC)
        assert response["state"] == "queued"
        status = client.wait(response["job_id"], timeout_s=30)
        assert status["state"] == "done"
        result = client.result(response["job_id"])
        assert result["n_samples"] == 60
        assert result["ci_low"] <= result["ssf"] <= result["ci_high"]

    def test_async_and_threaded_agree_on_results(self, tmp_path, client):
        from repro.service import ServiceServer

        response = client.submit(SPEC)
        client.wait(response["job_id"], timeout_s=30)
        async_result = client.result(response["job_id"])

        service = EvaluationService(
            tmp_path / "runs-threaded",
            engine_factory=lambda spec: (
                BernoulliEngine(p=0.3), StubSampler()
            ),
        )
        threaded = ServiceServer(service, port=0)
        threaded.start()
        try:
            threaded_client = ServiceClient(threaded.url)
            job = threaded_client.submit(SPEC)
            threaded_client.wait(job["job_id"], timeout_s=30)
            threaded_result = threaded_client.result(job["job_id"])
        finally:
            threaded.stop()
        assert threaded_result["ssf"] == async_result["ssf"]
        assert threaded_result["n_samples"] == async_result["n_samples"]

    def test_errors_shape_identical(self, client):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError) as err:
            client.status("nope")
        assert err.value.status == 404

    def test_oversized_body_answered_with_400_not_reset(self, server):
        """A Content-Length past the cap must get a real HTTP 400, not a
        bare connection close."""
        import socket

        host, port = server.address
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(
                b"POST /v1/chunks HTTP/1.1\r\n"
                b"Content-Length: 999999999999\r\n"
                b"\r\n"
            )
            sock.settimeout(10)
            chunks = []
            while True:
                data = sock.recv(4096)
                if not data:
                    break
                chunks.append(data)
        response = b"".join(chunks)
        assert response.startswith(b"HTTP/1.1 400")
        assert b"request body too large" in response

    def test_healthz_metrics_and_listing(self, client):
        assert client.healthz()["status"] == "ok"
        job = client.submit(SPEC)
        client.wait(job["job_id"], timeout_s=30)
        assert "service_queue_depth" in client.metrics_text()
        listing = client.list_jobs()
        assert any(j["job_id"] == job["job_id"] for j in listing["jobs"])

    def test_sse_stream_over_asyncio(self, client, server):
        response = client.submit(SPEC)
        job_id = response["job_id"]
        url = f"{server.url}/v1/campaigns/{job_id}/events"
        with urllib.request.urlopen(url, timeout=30) as stream:
            assert stream.headers["Content-Type"] == "text/event-stream"
            events = []
            for raw in stream:
                line = raw.decode().strip()
                if line.startswith("data: "):
                    events.append(json.loads(line[len("data: "):]))
                    if events[-1]["type"] == "end":
                        break
        assert any(e["type"] == "progress" for e in events)
        assert events[-1]["type"] == "end"
        assert events[-1]["state"] == "done"


class TestAsyncFleet:
    def test_fleet_protocol_over_asyncio(self, tmp_path):
        service = EvaluationService(
            tmp_path / "runs",
            dispatch=DISPATCH_FLEET,
            lease_ttl_s=5.0,
        )
        service.fleet.sweep_interval_s = 0.1
        srv = AsyncServiceServer(service, port=0)
        srv.start()
        try:
            client = ServiceClient(srv.url)
            response = client.submit(SPEC)
            with workers(srv.url, 2):
                wait_terminal(service, response["job_id"])
            job = service.get_job(response["job_id"])
            assert job.state == "done"
            result = client.result(job.job_id)
            assert result["n_samples"] == 60
            status = client.fleet_status()
            assert {w["worker"] for w in status["workers"]} == {"w0", "w1"}
        finally:
            srv.stop(cancel_running=True)
