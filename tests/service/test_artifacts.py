"""Content-addressed artifact store: keying, atomicity, cache hits."""

import json

import pytest

from repro.campaign.spec import CampaignSpec
from repro.service.artifacts import (
    KIND_CALIBRATION,
    KIND_PRECHARAC,
    ArtifactStore,
    calibration_path,
    ensure_precharac,
)


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "artifacts")


class TestKeying:
    def test_key_is_deterministic(self, store):
        a = store.key(KIND_PRECHARAC, benchmark="write", variant="none")
        b = store.key(KIND_PRECHARAC, benchmark="write", variant="none")
        assert a == b and len(a) == 64

    def test_key_field_order_is_canonical(self, store):
        assert store.key("k", a=1, b=2) == store.key("k", b=2, a=1)

    def test_key_separates_kinds_and_fields(self, store):
        base = store.key(KIND_PRECHARAC, benchmark="write", variant="none")
        assert store.key(KIND_CALIBRATION, benchmark="write",
                         variant="none") != base
        assert store.key(KIND_PRECHARAC, benchmark="read",
                         variant="none") != base

    def test_path_layout(self, store):
        path = store.path_for(KIND_PRECHARAC, benchmark="write",
                              variant="none")
        assert path.parent == store.root / KIND_PRECHARAC
        assert path.suffix == ".json"


class TestEnsure:
    def test_builds_once_then_hits(self, store):
        calls = []

        def builder(path):
            calls.append(path)
            path.write_text(json.dumps({"n": 1}))

        first, hit1 = store.ensure("k", builder, design="d")
        second, hit2 = store.ensure("k", builder, design="d")
        assert first == second
        assert (hit1, hit2) == (False, True)
        assert len(calls) == 1
        assert json.loads(first.read_text()) == {"n": 1}

    def test_no_tmp_residue(self, store):
        def builder(path):
            path.write_text("{}")

        path, _ = store.ensure("k", builder, design="d")
        assert list(path.parent.glob("*.tmp")) == []


class TestPrecharacKeying:
    def test_variant_string_is_normalized(self, store):
        def builder(path):
            path.write_text("{}")

        a, _ = ensure_precharac(store, "write", "tmr+parity", builder=builder)
        b, hit = ensure_precharac(store, "write", "TMR+PARITY",
                                  builder=builder)
        assert a == b and hit


class TestCalibrationKeying:
    def test_keyed_by_fit_inputs_only(self, store):
        spec = CampaignSpec(engine="surrogate", seed=7)
        base = calibration_path(store, spec)
        import dataclasses

        # Fields the fit never reads do not split the artifact.
        same = dataclasses.replace(
            spec,
            chunk_size=spec.chunk_size + 1,
            trace=True,
            calibration="/elsewhere/cal.json",
        )
        assert calibration_path(store, same) == base
        # Fields the fit consumes do.
        for change in (
            {"seed": 8},
            {"window": spec.window + 1},
            {"sampler": "random"},
            {"benchmark": "read"},
        ):
            other = dataclasses.replace(spec, **change)
            assert calibration_path(store, other) != base
