"""Persistent cycle-baseline store: round-trip, staleness, cross-process
reuse.

The ``CycleBaselineStore`` is the durable tier behind the engine's
in-memory LRU of per-cycle golden state.  Its contract has two halves:

* a loaded baseline is **bit-identical** to a recomputed one (everything
  persisted is integers, so JSON round-trips exactly), and
* a baseline that *might not* match the current design is **never
  loaded** — a changed netlist fingerprint or precharacterization
  version keys to a different artifact (miss) and a tampered or
  hand-moved payload is rejected on its embedded metadata.  Staleness
  can only ever cost a recompute, never a wrong SSF.

The cross-process half runs the real service path: campaign A populates
the service's content-addressed artifact root, a *restarted* service
(new instance, same root) runs campaign B, and B's merged metrics show
store hits with an SSF bit-identical to a cold-store reference run.  The
fleet mirror drives ``FleetWorker``'s worker-side warm-up the same way.
"""

import json

import numpy as np
import pytest

from repro import default_attack_spec
from repro.campaign import CampaignSpec, RunStore, StoppingConfig
from repro.core.engine import CrossLevelEngine, EngineConfig
from repro.fleet import FleetWorker
from repro.sampling import RandomSampler
from repro.service import EvaluationService
from repro.service.artifacts import (
    BASELINE_FORMAT_VERSION,
    ArtifactStore,
    CycleBaselineStore,
    baseline_store_for,
    netlist_fingerprint,
)


@pytest.fixture()
def artifact_root(tmp_path):
    return ArtifactStore(tmp_path / "artifacts")


@pytest.fixture()
def engine(small_context):
    spec = default_attack_spec(small_context, window=8, subblock_fraction=0.25)
    return CrossLevelEngine(small_context, spec, config=EngineConfig(batch=True))


def _store_for(artifact_root, context, **overrides):
    store = baseline_store_for(
        artifact_root, benchmark="write", variant="none",
        netlist=context.netlist,
    )
    for key, value in overrides.items():
        setattr(store, key, value)
    return store


class TestRoundTrip:
    def test_save_load_bit_identical(self, artifact_root, engine):
        store = _store_for(artifact_root, engine.context)
        entry, post_step, baseline = engine._cycle_state(5, None)
        store.save(5, entry, post_step, baseline)
        assert store.writes == 1
        loaded = store.load(5)
        assert loaded is not None
        l_entry, l_post, l_baseline = loaded
        assert l_entry == entry
        assert l_post == post_step
        assert (l_baseline.values == baseline.values).all()
        assert l_baseline.values.dtype == baseline.values.dtype
        assert l_baseline.golden_next == baseline.golden_next
        assert (store.hits, store.misses) == (1, 0)

    def test_absent_cycle_is_a_miss_unless_probed(self, artifact_root, engine):
        store = _store_for(artifact_root, engine.context)
        assert store.load(3) is None
        assert store.misses == 1
        # The LRU warm-up probes every cycle; absence there is not
        # demand, so it must not poison the hit ratio.
        assert store.load(4, probe=True) is None
        assert store.misses == 1

    def test_save_is_idempotent(self, artifact_root, engine):
        store = _store_for(artifact_root, engine.context)
        state = engine._cycle_state(2, None)
        store.save(2, *state)
        store.save(2, *state)
        assert store.writes == 1


class TestStaleness:
    """Satellite: a mutated design must miss, never load stale state."""

    def test_changed_fingerprint_misses(self, artifact_root, engine):
        writer = _store_for(artifact_root, engine.context)
        writer.save(0, *engine._cycle_state(0, None))
        # Same artifact root, but the design grew a node between
        # campaigns: the key diverges, so the old artifact is unreachable.
        mutated = dict(netlist_fingerprint(engine.context.netlist))
        mutated["n_nodes"] += 1
        reader = _store_for(artifact_root, engine.context, fingerprint=mutated)
        assert reader.load(0) is None
        assert (reader.hits, reader.misses, reader.rejected) == (0, 1, 0)

    def test_changed_precharac_version_misses(self, artifact_root, engine):
        writer = _store_for(artifact_root, engine.context)
        writer.save(0, *engine._cycle_state(0, None))
        reader = _store_for(
            artifact_root, engine.context,
            precharac_version=writer.precharac_version + 1,
        )
        assert reader.load(0) is None
        assert reader.hits == 0

    def test_tampered_payload_is_rejected(self, artifact_root, engine):
        """A hand-moved artifact (right path, wrong embedded metadata)
        is rejected on load — the payload's own fingerprint is checked,
        not just the address."""
        store = _store_for(artifact_root, engine.context)
        store.save(1, *engine._cycle_state(1, None))
        path = store._path(1)
        payload = json.loads(path.read_text())
        payload["fingerprint"] = {"n_nodes": 1, "registers": {}}
        path.write_text(json.dumps(payload))
        assert store.load(1) is None
        assert store.rejected == 1
        assert store.misses == 1

    def test_wrong_format_version_is_rejected(self, artifact_root, engine):
        store = _store_for(artifact_root, engine.context)
        store.save(1, *engine._cycle_state(1, None))
        path = store._path(1)
        payload = json.loads(path.read_text())
        payload["version"] = BASELINE_FORMAT_VERSION + 1
        path.write_text(json.dumps(payload))
        assert store.load(1) is None
        assert store.rejected == 1

    def test_corrupt_json_is_a_miss_not_a_crash(self, artifact_root, engine):
        store = _store_for(artifact_root, engine.context)
        store.save(1, *engine._cycle_state(1, None))
        store._path(1).write_text("{truncated")
        assert store.load(1) is None
        assert store.misses == 1

    def test_mutated_design_campaign_recomputes_identically(
        self, small_context, artifact_root
    ):
        """Regression: campaign A populates the store; campaign B runs
        against a 'mutated' design (different fingerprint) sharing the
        root.  B must see zero hits and produce the exact records a
        store-less engine produces — a stale baseline can never leak
        into the SSF."""
        spec = default_attack_spec(
            small_context, window=8, subblock_fraction=0.25
        )
        seed = lambda: np.random.SeedSequence(13)  # noqa: E731
        sampler = RandomSampler(spec)

        engine_a = CrossLevelEngine(
            small_context, spec,
            baseline_store=_store_for(artifact_root, small_context),
        )
        engine_a.evaluate(sampler, 30, seed=seed())
        assert engine_a.baseline_store.writes > 0

        mutated = dict(netlist_fingerprint(small_context.netlist))
        mutated["registers"] = dict(mutated["registers"], ghost=1)
        engine_b = CrossLevelEngine(
            small_context, spec,
            baseline_store=_store_for(
                artifact_root, small_context, fingerprint=mutated
            ),
        )
        engine_b.warm_baseline_cache()
        rb = engine_b.evaluate(sampler, 30, seed=seed())
        assert engine_b.baseline_store.hits == 0

        reference = CrossLevelEngine(small_context, spec)
        rr = reference.evaluate(sampler, 30, seed=seed())
        assert rb.records == rr.records
        assert rb.estimator.ssf == rr.estimator.ssf


class TestEngineIntegration:
    def test_warm_start_hits_across_engine_restarts(
        self, small_context, artifact_root
    ):
        """Two engine lifetimes over one store root: the second warms its
        LRU from disk, serves every cycle from the store, and reproduces
        the first run bit for bit."""
        spec = default_attack_spec(
            small_context, window=8, subblock_fraction=0.25
        )
        sampler = RandomSampler(spec)

        first = CrossLevelEngine(
            small_context, spec,
            baseline_store=_store_for(artifact_root, small_context),
        )
        r1 = first.evaluate(sampler, 40, seed=np.random.SeedSequence(21))
        assert first.baseline_store.writes > 0

        second = CrossLevelEngine(
            small_context, spec,
            baseline_store=_store_for(artifact_root, small_context),
        )
        warmed = second.warm_baseline_cache()
        assert warmed > 0
        r2 = second.evaluate(sampler, 40, seed=np.random.SeedSequence(21))
        assert second.baseline_store.misses == 0
        assert second.baseline_store.hits >= warmed
        assert r1.records == r2.records
        assert r1.estimator.ssf == r2.estimator.ssf
        # The warm-time hits surface in the run's own metrics, ratio 1.0.
        ratio = [
            m["value"] for m in r2.metrics
            if m["name"] == "engine_baseline_store_hit_ratio"
        ]
        assert ratio == [1.0]


def _hit_count(metrics):
    return sum(
        m["value"] for m in metrics
        if m["name"] == "engine_baseline_store_total"
        and m.get("labels", {}).get("outcome") == "hit"
    )


def _small_charac_spec(small_context, tmp_path, **kwargs):
    """A real-runtime campaign spec that reuses the session context's
    reduced characterization (so the service builds the runtime itself
    without paying a full characterization)."""
    from repro.precharac.persistence import save_characterization

    charac = tmp_path / "charac.json"
    if not charac.exists():
        save_characterization(small_context.characterization, charac)
    kwargs.setdefault("stopping", StoppingConfig(mode="fixed", n_samples=40))
    return CampaignSpec(
        benchmark="write",
        sampler="random",
        window=8,
        chunk_size=20,
        charac_cache=str(charac),
        **kwargs,
    )


def _run_service_campaign(runs_dir, spec, timeout_s=120.0):
    import time

    service = EvaluationService(runs_dir)
    service.start()
    try:
        job, _ = service.submit(spec)
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if service.get_job(job.job_id).terminal:
                break
            time.sleep(0.05)
        final = service.get_job(job.job_id)
        assert final.state == "done", final.error
        result = service.job_result(job.job_id)
        metrics_file = runs_dir / job.run_id / "metrics.jsonl"
        metrics = [
            json.loads(line)
            for line in metrics_file.read_text().splitlines() if line
        ]
        return result, metrics
    finally:
        service.stop()


class TestCrossProcessReuse:
    """Satellite: campaign A → service restart → campaign B reuses."""

    def test_service_restart_warm_starts_from_artifact_root(
        self, small_context, tmp_path
    ):
        runs_dir = tmp_path / "runs"
        spec_a = _small_charac_spec(small_context, tmp_path, seed=5)
        spec_b = _small_charac_spec(small_context, tmp_path, seed=6)

        _, metrics_a = _run_service_campaign(runs_dir, spec_a)
        # A fresh service instance on the same root = a restarted
        # process: only the on-disk artifacts survive.
        result_b, metrics_b = _run_service_campaign(runs_dir, spec_b)
        assert _hit_count(metrics_b) > 0

        # Bit-identical SSF: the same campaign B on a cold root (no
        # baselines to load) must agree exactly.
        cold_result, cold_metrics = _run_service_campaign(
            tmp_path / "cold_runs", spec_b
        )
        assert _hit_count(cold_metrics) == 0
        assert result_b["ssf"] == cold_result["ssf"]
        assert result_b["n_samples"] == cold_result["n_samples"]

    def test_fleet_worker_warm_starts_from_artifacts_dir(
        self, small_context, tmp_path
    ):
        """Worker-side mirror: a leased spec without a baseline_store
        gets the worker's --artifacts-dir store; a second worker process
        on the same directory warms up from the first one's writes."""
        artifacts_dir = tmp_path / "worker-artifacts"
        spec = _small_charac_spec(small_context, tmp_path, seed=9)
        grant = {"spec": spec.to_dict()}

        worker_a = FleetWorker(client=None, artifacts_dir=str(artifacts_dir))
        engine_a, sampler_a, _, _ = worker_a._runtime_for(grant)
        assert engine_a.baseline_store is not None
        r1 = engine_a.evaluate(sampler_a, 30, seed=np.random.SeedSequence(2))
        assert engine_a.baseline_store.writes > 0

        worker_b = FleetWorker(client=None, artifacts_dir=str(artifacts_dir))
        engine_b, sampler_b, _, _ = worker_b._runtime_for(grant)
        assert engine_b.baseline_store.hits > 0  # warmed from disk
        r2 = engine_b.evaluate(sampler_b, 30, seed=np.random.SeedSequence(2))
        assert engine_b.baseline_store.misses == 0
        assert r1.records == r2.records
        assert r1.estimator.ssf == r2.estimator.ssf

    def test_worker_without_artifacts_dir_keeps_spec_untouched(
        self, small_context, tmp_path
    ):
        spec = _small_charac_spec(small_context, tmp_path, seed=9)
        worker = FleetWorker(client=None)
        engine, _, used_spec, _ = worker._runtime_for({"spec": spec.to_dict()})
        assert used_spec.baseline_store is None
        assert engine.baseline_store is None
