"""Batch submission: one POST /v1/campaigns/batch, per-spec job ids.

The endpoint is the sweep fan-out's transport.  Its contract: response
order matches request order, duplicates inside one batch coalesce onto
the same job, and an invalid spec anywhere in the batch rejects the
whole POST with nothing enqueued (POSTs are never retried by the
client, so all-or-nothing keeps a failed fan-out side-effect free).
"""

import pytest

from repro.campaign import CampaignSpec, StoppingConfig
from repro.campaign.spec_hash import spec_hash
from repro.errors import ServiceError
from repro.service import EvaluationService, ServiceClient, ServiceServer

from tests.campaign.stubs import BernoulliEngine, StubSampler

SPECS = [
    CampaignSpec(
        seed=seed, chunk_size=20, stopping=StoppingConfig(n_samples=40)
    )
    for seed in (1, 2, 3)
]


@pytest.fixture()
def server(tmp_path):
    service = EvaluationService(
        tmp_path / "runs",
        engine_factory=lambda spec: (
            BernoulliEngine(p=0.3), StubSampler()
        ),
    )
    srv = ServiceServer(service, port=0)
    srv.start()
    yield srv
    srv.stop(cancel_running=True)


@pytest.fixture()
def client(server):
    return ServiceClient(server.url)


class TestSubmitMany:
    def test_batch_preserves_request_order(self, server, client):
        jobs = client.submit_many(SPECS)
        assert len(jobs) == 3
        hashes = [job["spec_hash"] for job in jobs]
        assert hashes == [spec_hash(spec) for spec in SPECS]
        assert len({job["job_id"] for job in jobs}) == 3
        for job in jobs:
            assert job["cache_hit"] is False
            assert job["state"] == "queued"
        assert len(server.service.jobs) == 3

    def test_duplicates_in_one_batch_coalesce(self, server, client):
        jobs = client.submit_many([SPECS[0], SPECS[1], SPECS[0]])
        assert jobs[0]["job_id"] == jobs[2]["job_id"]
        assert jobs[1]["job_id"] != jobs[0]["job_id"]
        # Only two distinct jobs exist despite three submissions.
        assert len(server.service.jobs) == 2

    def test_resubmitted_batch_is_all_cache_hits(self, server, client):
        first = client.submit_many(SPECS)
        for job in first:
            client.wait(job["job_id"], timeout_s=30)
        second = client.submit_many(SPECS)
        assert [job["cache_hit"] for job in second] == [True] * 3
        assert [job["job_id"] for job in second] == [
            job["job_id"] for job in first
        ]

    def test_invalid_spec_rejects_the_whole_batch(self, server, client):
        bad = dict(SPECS[1].to_dict(), sampler="bogus")
        with pytest.raises(ServiceError) as excinfo:
            client.submit_many([SPECS[0].to_dict(), bad])
        assert excinfo.value.status == 400
        assert "index 1" in str(excinfo.value)
        # All-or-nothing: the valid spec at index 0 was not enqueued.
        assert len(server.service.jobs) == 0

    def test_empty_batch_is_rejected(self, server, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit_many([])
        assert excinfo.value.status == 400

    def test_priority_applies_to_every_member(self, server, client):
        jobs = client.submit_many(SPECS, priority=7)
        for job in jobs:
            assert server.service.jobs[job["job_id"]].priority == 7
