"""ServiceClient transport-retry policy: idempotent GETs retry with
exponential backoff on connection failures; everything else fails fast.
"""

import threading
import time

import pytest

from repro.errors import ServiceError
from repro.service import EvaluationService, ServiceClient, ServiceServer


@pytest.fixture()
def server(tmp_path):
    service = EvaluationService(tmp_path / "runs")
    srv = ServiceServer(service, port=0)
    srv.start()
    yield srv
    srv.stop(cancel_running=True)


class TestGetRetry:
    def test_get_retries_transport_failures_with_backoff(self, monkeypatch):
        client = ServiceClient(
            "http://127.0.0.1:1", retries=3, retry_backoff_s=0.01
        )
        attempts = []
        sleeps = []

        def failing(method, path, body=None, as_text=False):
            attempts.append(method)
            raise ServiceError("cannot reach service", status=0)

        monkeypatch.setattr(client, "_request_once", failing)
        monkeypatch.setattr(time, "sleep", sleeps.append)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.healthz()
        assert len(attempts) == 4  # 1 initial + 3 retries
        assert sleeps == [0.01, 0.02, 0.04]  # exponential

    def test_injected_sleep_hook_replaces_the_backoff_clock(
        self, monkeypatch
    ):
        """The constructor's ``sleep`` hook takes the backoff waits, so
        this retry test costs zero wall-clock time."""
        sleeps = []
        client = ServiceClient(
            "http://127.0.0.1:1",
            retries=3,
            retry_backoff_s=1.0,
            sleep=sleeps.append,
        )

        def failing(method, path, body=None, as_text=False):
            raise ServiceError("cannot reach service", status=0)

        monkeypatch.setattr(client, "_request_once", failing)

        def forbidden(_seconds):
            raise AssertionError("time.sleep must not be called")

        monkeypatch.setattr(time, "sleep", forbidden)
        start = time.monotonic()
        with pytest.raises(ServiceError, match="cannot reach"):
            client.healthz()
        assert sleeps == [1.0, 2.0, 4.0]
        assert time.monotonic() - start < 1.0

    def test_get_succeeds_after_transient_failure(self, monkeypatch):
        client = ServiceClient(
            "http://127.0.0.1:1", retries=2, retry_backoff_s=0.001
        )
        calls = {"n": 0}

        def flaky(method, path, body=None, as_text=False):
            calls["n"] += 1
            if calls["n"] < 3:
                raise ServiceError("cannot reach service", status=0)
            return {"status": "ok"}

        monkeypatch.setattr(client, "_request_once", flaky)
        assert client.healthz() == {"status": "ok"}
        assert calls["n"] == 3

    def test_post_never_retries_transport_failures(self, monkeypatch):
        client = ServiceClient(
            "http://127.0.0.1:1", retries=5, retry_backoff_s=0.001
        )
        attempts = []

        def failing(method, path, body=None, as_text=False):
            attempts.append(method)
            raise ServiceError("cannot reach service", status=0)

        monkeypatch.setattr(client, "_request_once", failing)
        with pytest.raises(ServiceError):
            client.lease("w1")
        assert attempts == ["POST"]  # submitting twice could queue twice

    def test_http_errors_never_retry(self, monkeypatch):
        client = ServiceClient(
            "http://127.0.0.1:1", retries=5, retry_backoff_s=0.001
        )
        attempts = []

        def not_found(method, path, body=None, as_text=False):
            attempts.append(method)
            raise ServiceError("no such job", status=404)

        monkeypatch.setattr(client, "_request_once", not_found)
        with pytest.raises(ServiceError):
            client.status("nope")
        assert len(attempts) == 1  # a 404 is an answer, not an outage

    def test_retry_rides_out_a_service_restart(self, tmp_path, server):
        """A GET issued while the service is briefly down succeeds once
        it comes back on the same port."""
        host, port = server.address
        client = ServiceClient(
            server.url, retries=8, retry_backoff_s=0.05
        )
        assert client.healthz()["status"] == "ok"
        server.stop()

        def restart():
            time.sleep(0.3)
            service = EvaluationService(tmp_path / "runs2")
            srv = ServiceServer(service, host=host, port=port)
            srv.start()
            restart.server = srv

        thread = threading.Thread(target=restart)
        thread.start()
        try:
            assert client.healthz()["status"] == "ok"
        finally:
            thread.join()
            restart.server.stop()

    def test_unreachable_still_fails_fast_by_default(self):
        # The default policy keeps worst-case latency well under a
        # second, so CLI verbs against a dead service stay snappy.
        client = ServiceClient("http://127.0.0.1:1", timeout_s=1)
        start = time.monotonic()
        with pytest.raises(ServiceError, match="cannot reach"):
            client.healthz()
        assert time.monotonic() - start < 5
