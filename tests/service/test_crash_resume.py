"""Queue crash-safety: SIGKILL the service mid-job, restart, and the job
resumes via ``campaign resume`` to the exact uninterrupted estimate.

A child process runs a real :class:`EvaluationService` (stub engine with
a per-chunk delay) and executes one submitted job; once the job's
durable chunk log holds a few chunks the parent delivers ``SIGKILL`` —
no cleanup handlers, exactly like an OOM-kill.  A fresh service over the
same directories must (a) find the job ``running`` in its crash-safe
``jobs.jsonl``, (b) re-queue it, and (c) finish it by *resuming* the
existing run directory — replaying the logged chunks rather than
restarting from sample zero — to an SSF bit-identical to a run that was
never interrupted.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign import CampaignRunner, CampaignSpec, StoppingConfig
from repro.service import EvaluationService
from repro.service.jobs import STATE_DONE, STATE_RUNNING

from tests.campaign.stubs import BernoulliEngine, StubSampler

pytestmark = pytest.mark.skipif(
    not hasattr(signal, "SIGKILL"), reason="needs POSIX SIGKILL"
)

SPEC = CampaignSpec(
    seed=33,
    chunk_size=40,
    stopping=StoppingConfig(mode="fixed", n_samples=1600),
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent

CHILD_SCRIPT = """
import sys, time
sys.path.insert(0, {src!r})
sys.path.insert(0, {root!r})
from repro.campaign import CampaignSpec
from repro.service import EvaluationService
from tests.campaign.stubs import BernoulliEngine, StubSampler
from tests.service.test_crash_resume import SPEC

service = EvaluationService(
    {runs_dir!r},
    engine_factory=lambda spec: (
        BernoulliEngine(p=0.3, delay_s=0.25), StubSampler()
    ),
)
job, cache_hit = service.submit(SPEC)
assert not cache_hit
service.start()
while not service.get_job(job.job_id).terminal:
    time.sleep(0.05)
"""


def wait_for_chunks(run_log: pathlib.Path, n: int, timeout_s=60.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if run_log.exists():
            lines = [l for l in run_log.read_text().splitlines() if l]
            if len(lines) >= n:
                return
        time.sleep(0.05)
    raise AssertionError(f"run never logged {n} chunks at {run_log}")


class TestServiceCrashResume:
    def test_sigkilled_service_resumes_job_to_identical_ssf(self, tmp_path):
        baseline = CampaignRunner(
            SPEC,
            engine=BernoulliEngine(p=0.3),
            sampler=StubSampler(),
            n_workers=1,
        ).run()

        runs_dir = tmp_path / "runs"
        script = CHILD_SCRIPT.format(
            src=str(REPO_ROOT / "src"),
            root=str(REPO_ROOT),
            runs_dir=str(runs_dir),
        )
        child = subprocess.Popen([sys.executable, "-c", script])
        try:
            # The job id is not knowable up front; find the run dir the
            # worker created and wait for its chunk log to grow.
            deadline = time.monotonic() + 60
            run_dirs = []
            while time.monotonic() < deadline and not run_dirs:
                if runs_dir.exists():
                    run_dirs = [
                        p
                        for p in runs_dir.iterdir()
                        if (p / "spec.json").exists()
                    ]
                time.sleep(0.05)
            assert run_dirs, "service never created a run directory"
            run_path = run_dirs[0]
            wait_for_chunks(run_path / "log.jsonl", 2)
            os.kill(child.pid, signal.SIGKILL)
        finally:
            child.wait(timeout=30)
        assert child.returncode == -signal.SIGKILL

        # Mid-job kill: some chunks durably logged, not all.
        logged = [
            l
            for l in (run_path / "log.jsonl").read_text().splitlines()
            if l
        ]
        total_chunks = len(SPEC.chunk_sizes())
        assert 0 < len(logged) < total_chunks

        # Restart over the same directories: replay must find the job
        # mid-flight and re-queue it.
        service = EvaluationService(
            runs_dir,
            engine_factory=lambda spec: (
                BernoulliEngine(p=0.3),
                StubSampler(),
            ),
        )
        jobs = list(service.jobs.values())
        assert len(jobs) == 1
        job = jobs[0]
        assert job.run_id == run_path.name
        # The durable log said running; recovery re-queued it.
        raw_states = [
            json.loads(line)
            for line in (
                runs_dir / "service" / "jobs.jsonl"
            ).read_text().splitlines()
        ]
        assert any(
            e.get("fields", {}).get("state") == STATE_RUNNING
            for e in raw_states
        )
        assert service.queue.depth() == 1

        service.start()
        try:
            deadline = time.monotonic() + 120
            while (
                not service.get_job(job.job_id).terminal
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
            final = service.get_job(job.job_id)
            assert final.state == STATE_DONE
        finally:
            service.stop()

        # Resume, not restart: the pre-kill chunk prefix is untouched
        # and the estimate is bit-identical to the uninterrupted run.
        result = service.job_result(job.job_id)
        assert result["n_samples"] == baseline.n_samples
        assert result["ssf"] == baseline.ssf
        replayed = [
            json.loads(l)["chunk"]
            for l in (run_path / "log.jsonl").read_text().splitlines()
            if l
        ]
        assert replayed == list(range(total_chunks))
