"""Batched kernel ≡ scalar reference path, bit for bit (PR 5 tentpole).

``CrossLevelEngine.run_batch`` packs samples sharing an injection cycle
into one gate-level ``simulate_cycle_batch`` call over a cached cycle
baseline.  The contract is *bit-identity* with the scalar ``run_sample``
path: identical ``SampleRecord`` streams, identical estimator state
(Welford updates in original sample order), and identical deterministic
metric views — for every sampler, seed, and batch shape.

The scalar path is deliberately untouched by the batching work, so it is
the reference implementation these tests compare against.

Fast tier: the write-cfg conformance design (pinpoint upsets) and a
voltage-transient spec, both over the shared session context.  Full tier
(``REPRO_CONFORMANCE=full``): every registry design with its own context.
"""

import dataclasses
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import default_attack_spec
from repro.conformance import DESIGNS, get_design
from repro.conformance.differential import build_samplers
from repro.core.engine import CrossLevelEngine, EngineConfig
from repro.core.results import OutcomeCategory
from repro.obs.metrics import MetricsRegistry, deterministic_view
from repro.sampling import ImportanceSampler, RandomSampler
from repro.utils.rng import as_generator, sample_seed_sequence

FULL = os.environ.get("REPRO_CONFORMANCE") == "full"


def _engine_pair(context, spec, **config_kwargs):
    """(batched, scalar) engines over one shared context + attack spec."""
    batched = CrossLevelEngine(
        context, spec, config=EngineConfig(batch=True, **config_kwargs)
    )
    scalar = CrossLevelEngine(
        context, spec, config=EngineConfig(batch=False, **config_kwargs)
    )
    return batched, scalar


@pytest.fixture(scope="module")
def pinpoint(small_context):
    """write-cfg design + (batched, scalar) engine pair + named samplers."""
    built = get_design("write-cfg").build(small_context)
    batched, scalar = _engine_pair(built.context, built.spec)
    return built, batched, scalar, dict(build_samplers(built))


@pytest.fixture(scope="module")
def transient(small_context):
    """Voltage-transient spec (the pulse-propagation kernel) + engines."""
    spec = default_attack_spec(
        small_context, window=10, subblock_fraction=0.25
    )
    batched, scalar = _engine_pair(small_context, spec)
    samplers = {
        "uniform": RandomSampler(spec),
        "importance": ImportanceSampler(
            spec,
            small_context.characterization,
            placement=small_context.placement,
        ),
    }
    return spec, batched, scalar, samplers


def _assert_results_identical(rb, rs):
    assert rb.records == rs.records
    assert rb.estimator.ssf == rs.estimator.ssf
    assert rb.estimator.variance == rs.estimator.variance
    assert rb.estimator.history == rs.estimator.history
    assert deterministic_view(rb.metrics) == deterministic_view(rs.metrics)


# ----------------------------------------------------------------------
# property: any (seed, n, sampler) evaluates bit-identically
# ----------------------------------------------------------------------
class TestEvaluateEquivalenceProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(1, 30),
        sampler_name=st.sampled_from(("uniform", "importance")),
    )
    def test_pinpoint_design(self, pinpoint, seed, n, sampler_name):
        _, batched, scalar, samplers = pinpoint
        sampler = samplers[sampler_name]
        rb = batched.evaluate(sampler, n, seed=np.random.SeedSequence(seed))
        rs = scalar.evaluate(sampler, n, seed=np.random.SeedSequence(seed))
        _assert_results_identical(rb, rs)

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(1, 30),
        sampler_name=st.sampled_from(("uniform", "importance")),
    )
    def test_transient_spec(self, transient, seed, n, sampler_name):
        _, batched, scalar, samplers = transient
        sampler = samplers[sampler_name]
        rb = batched.evaluate(sampler, n, seed=np.random.SeedSequence(seed))
        rs = scalar.evaluate(sampler, n, seed=np.random.SeedSequence(seed))
        _assert_results_identical(rb, rs)


# ----------------------------------------------------------------------
# ragged batch shapes around the uint64 lane-word boundary
# ----------------------------------------------------------------------
class TestRaggedBatches:
    @pytest.mark.parametrize("b", [1, 63, 64, 65])
    def test_lane_word_boundaries(self, transient, b):
        """B spanning one/partial/exactly-one/two uint64 words per cycle
        group must not change a single record."""
        _, batched, scalar, samplers = transient
        base = np.random.SeedSequence(20240 + b)
        rngs_b = [as_generator(sample_seed_sequence(base, i)) for i in range(b)]
        rngs_s = [as_generator(sample_seed_sequence(base, i)) for i in range(b)]
        sampler = samplers["uniform"]
        samples = [sampler.sample(rng) for rng in rngs_b]
        got = batched.run_batch(samples, rngs_b)
        # Twin streams: the scalar reference re-draws identically.
        assert samples == [sampler.sample(rng) for rng in rngs_s]
        rngs_s = [as_generator(sample_seed_sequence(base, i)) for i in range(b)]
        for rng in rngs_s:
            sampler.sample(rng)  # consume the draw exactly as above
        expected = [
            scalar.run_sample(sample, rng)
            for sample, rng in zip(samples, rngs_s)
        ]
        assert got == expected

    def test_mixed_and_out_of_range_injection_cycles(self, transient):
        """One batch mixing several cycle groups plus out-of-window
        samples: grouping must preserve order and emit OUT_OF_RANGE
        records in place."""
        _, batched, scalar, samplers = transient
        base = np.random.SeedSequence(777)
        sampler = samplers["uniform"]
        target = batched.context.target_cycle
        ts = [0, 3, 0, target + 5, 7, 3, -(batched.context.n_cycles), 0]
        idx = range(len(ts))
        rngs = [as_generator(sample_seed_sequence(base, i)) for i in idx]
        samples = [
            dataclasses.replace(sampler.sample(rng), t=t)
            for t, rng in zip(ts, rngs)
        ]
        rngs_b = [as_generator(sample_seed_sequence(base, i)) for i in idx]
        rngs_s = [as_generator(sample_seed_sequence(base, i)) for i in idx]
        for rng_b, rng_s in zip(rngs_b, rngs_s):
            sampler.sample(rng_b)
            sampler.sample(rng_s)
        got = batched.run_batch(samples, rngs_b)
        expected = [
            scalar.run_sample(sample, rng)
            for sample, rng in zip(samples, rngs_s)
        ]
        assert got == expected
        out_of_range = [
            r for r in got if r.category is OutcomeCategory.OUT_OF_RANGE
        ]
        assert len(out_of_range) == 2


# ----------------------------------------------------------------------
# metrics: chunk merges and batched-only metric hygiene
# ----------------------------------------------------------------------
class TestMetrics:
    def test_chunk_merge_equality(self, pinpoint):
        """Merging per-chunk snapshots from batched runs equals the same
        merge over scalar runs, on the deterministic view."""
        _, batched, scalar, samplers = pinpoint
        sampler = samplers["uniform"]
        merged = {}
        for engine, key in ((batched, "batched"), (scalar, "scalar")):
            registry = MetricsRegistry()
            for chunk_seed in (101, 202, 303):
                result = engine.evaluate(
                    sampler, 40, seed=np.random.SeedSequence(chunk_seed)
                )
                registry.merge_snapshot(result.metrics)
            merged[key] = deterministic_view(registry.snapshot())
        assert merged["batched"] == merged["scalar"]

    def test_batched_run_records_batch_metrics(self, pinpoint):
        _, batched, _, samplers = pinpoint
        result = batched.evaluate(
            samplers["uniform"], 50, seed=np.random.SeedSequence(4)
        )
        names = {m["name"] for m in result.metrics}
        assert "engine_batch_size" in names
        assert "engine_batch_fill" in names
        assert "engine_baseline_cache_total" in names
        assert "engine_baseline_cache_hit_ratio" in names
        # All batch-shape metrics are flagged non-deterministic, which is
        # exactly why the deterministic views above can compare equal.
        deterministic_names = {
            m["name"] for m in deterministic_view(result.metrics)
        }
        assert "engine_batch_size" not in deterministic_names
        assert "engine_baseline_cache_total" not in deterministic_names


# ----------------------------------------------------------------------
# gating + cache behaviour
# ----------------------------------------------------------------------
class TestGatingAndCache:
    def test_int_seed_engages_batched_kernel(self, pinpoint):
        """An int seed means one shared stream — since PR 9 the kernel
        pre-draws (sample, injections) pairs in the exact scalar
        interleave, so shared-stream seeds batch too, bit-identically."""
        _, batched, scalar, samplers = pinpoint
        hits, misses = batched.baseline_cache_stats
        rb = batched.evaluate(samplers["uniform"], 30, seed=12345)
        rs = scalar.evaluate(samplers["uniform"], 30, seed=12345)
        _assert_results_identical(rb, rs)
        # Engagement: the cycle cache saw traffic from the batched run.
        assert batched.baseline_cache_stats != (hits, misses)
        assert any(m["name"] == "engine_batch_size" for m in rb.metrics)

    def test_multi_impact_cycles_batches(self, small_context):
        """impact_cycles > 1: samples stay batched while their RTL state
        tracks golden, diverging to a scalar continuation on the first
        flip — still bit-identical to the scalar loop."""
        spec = default_attack_spec(
            small_context, window=8, subblock_fraction=0.25
        )
        spec.technique.impact_cycles = 2
        batched, scalar = _engine_pair(small_context, spec)
        sampler = RandomSampler(spec)
        rb = batched.evaluate(sampler, 20, seed=np.random.SeedSequence(6))
        rs = scalar.evaluate(sampler, 20, seed=np.random.SeedSequence(6))
        _assert_results_identical(rb, rs)
        assert any(m["name"] == "engine_batch_size" for m in rb.metrics)

    def test_cache_engages_across_evaluate_calls(self, small_context):
        spec = default_attack_spec(
            small_context, window=6, subblock_fraction=0.25
        )
        engine = CrossLevelEngine(small_context, spec)
        sampler = RandomSampler(spec)
        engine.evaluate(sampler, 30, seed=np.random.SeedSequence(1))
        hits_first, misses_first = engine.baseline_cache_stats
        assert misses_first <= 6
        engine.evaluate(sampler, 30, seed=np.random.SeedSequence(2))
        hits_second, misses_second = engine.baseline_cache_stats
        # Same 6-cycle window: the second call re-hits the cached cycles.
        assert misses_second == misses_first
        assert hits_second > hits_first

    def test_cache_is_lru_bounded(self, small_context):
        spec = default_attack_spec(
            small_context, window=10, subblock_fraction=0.25
        )
        engine = CrossLevelEngine(
            small_context, spec,
            config=EngineConfig(batch=True, baseline_cache_size=3),
        )
        sampler = RandomSampler(spec)
        result = engine.evaluate(sampler, 60, seed=np.random.SeedSequence(3))
        assert len(result.records) == 60
        assert len(engine._cycle_cache) <= 3


# ----------------------------------------------------------------------
# full tier: every registry design
# ----------------------------------------------------------------------
@pytest.mark.skipif(
    not FULL, reason="set REPRO_CONFORMANCE=full to run the full registry"
)
@pytest.mark.parametrize("name", [d.name for d in DESIGNS])
def test_full_registry_equivalence(name):
    built = get_design(name).build()
    batched, scalar = _engine_pair(built.context, built.spec)
    for sampler_name, sampler in build_samplers(built):
        for seed in (3, 17):
            rb = batched.evaluate(
                sampler, 400, seed=np.random.SeedSequence(seed)
            )
            rs = scalar.evaluate(
                sampler, 400, seed=np.random.SeedSequence(seed)
            )
            _assert_results_identical(rb, rs)
