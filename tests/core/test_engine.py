"""Integration tests for the cross-level engine."""

import numpy as np
import pytest

from repro.attack.spec import AttackSample
from repro.core.engine import CrossLevelEngine, EngineConfig
from repro.core.results import OutcomeCategory
from repro.errors import EvaluationError
from repro.sampling import ImportanceSampler, RandomSampler
from repro import default_attack_spec


@pytest.fixture(scope="module")
def spec(small_context):
    return default_attack_spec(small_context, window=10)


@pytest.fixture(scope="module")
def engine(small_context, spec):
    return CrossLevelEngine(small_context, spec)


class TestEngineConfig:
    def test_unknown_variant_names_the_valid_ones(self):
        with pytest.raises(EvaluationError) as excinfo:
            EngineConfig(engine="warp")
        message = str(excinfo.value)
        assert "unknown engine variant 'warp'" in message
        assert "exact" in message and "surrogate" in message

    def test_known_variants_accepted(self):
        from repro.core.engine import ENGINE_VARIANTS

        for variant in ENGINE_VARIANTS:
            assert EngineConfig(engine=variant).engine == variant


class TestSingleSamples:
    def test_memory_only_sample_uses_analytical_path(
        self, small_context, engine
    ):
        nl = small_context.netlist
        centre = nl.register_dff("cfg_base5", 3).nid
        rng = np.random.default_rng(0)
        record = engine.run_sample(
            AttackSample(t=5, centre=centre, radius_um=3.0, weight=1.0), rng
        )
        assert record.category in (
            OutcomeCategory.MEMORY_ONLY,
            OutcomeCategory.MASKED,
            OutcomeCategory.NEEDS_RTL,
        )
        if record.category == OutcomeCategory.MEMORY_ONLY:
            assert record.analytical

    def test_critical_cfg_centre_succeeds(self, small_context, engine):
        nl = small_context.netlist
        centre = nl.register_dff("cfg_top0", 12).nid
        rng = np.random.default_rng(1)
        record = engine.run_sample(
            AttackSample(t=4, centre=centre, radius_um=3.0, weight=1.0), rng
        )
        assert ("cfg_top0", 12) in record.flipped_bits
        assert record.e == 1

    def test_out_of_range_injection(self, small_context, engine):
        record = engine.run_sample(
            AttackSample(
                t=small_context.target_cycle + 10,
                centre=0,
                radius_um=3.0,
                weight=1.0,
            ),
            np.random.default_rng(0),
        )
        assert record.category == OutcomeCategory.OUT_OF_RANGE
        assert record.e == 0

    def test_analytical_matches_rtl_when_disabled(self, small_context, spec):
        """With the analytical path disabled, memory-only samples must take
        the RTL route and produce the same indicator."""
        fast = CrossLevelEngine(small_context, spec)
        slow = CrossLevelEngine(
            small_context, spec, EngineConfig(analytical_memory_eval=False)
        )
        nl = small_context.netlist
        for reg, bit, t in [
            ("cfg_top0", 12, 3),
            ("cfg_perm1", 2, 5),
            ("cfg_base5", 3, 2),
        ]:
            centre = nl.register_dff(reg, bit).nid
            sample = AttackSample(t=t, centre=centre, radius_um=3.0, weight=1.0)
            a = fast.run_sample(sample, np.random.default_rng(7))
            b = slow.run_sample(sample, np.random.default_rng(7))
            assert a.e == b.e, (reg, bit)
            assert a.flipped_bits == b.flipped_bits
            assert not b.analytical


class TestCampaigns:
    def test_campaign_reproducible(self, engine, spec):
        sampler = RandomSampler(spec)
        a = engine.evaluate(sampler, n_samples=60, seed=3)
        b = engine.evaluate(sampler, n_samples=60, seed=3)
        assert a.ssf == b.ssf
        assert [r.e for r in a.records] == [r.e for r in b.records]

    def test_campaign_categories_partition(self, engine, spec):
        result = engine.evaluate(RandomSampler(spec), n_samples=80, seed=5)
        counts = result.category_counts()
        assert sum(counts.values()) == 80
        fractions = result.category_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_masked_majority(self, engine, spec):
        """Paper Fig. 10(a): the majority of injections are masked."""
        result = engine.evaluate(RandomSampler(spec), n_samples=120, seed=8)
        assert result.category_fractions()[OutcomeCategory.MASKED] > 0.4

    def test_importance_and_random_agree(self, small_context, engine, spec):
        random_result = engine.evaluate(RandomSampler(spec), 400, seed=21)
        imp = ImportanceSampler(
            spec, small_context.characterization,
            placement=small_context.placement,
        )
        imp_result = engine.evaluate(imp, 400, seed=21)
        # both unbiased estimates of the same SSF; generous tolerance
        hi = max(random_result.ssf, imp_result.ssf)
        assert hi > 0
        assert abs(random_result.ssf - imp_result.ssf) < 0.6 * hi + 0.02

    def test_progress_callback_and_convergence_stop(self, engine, spec):
        seen = []
        engine_cfg = CrossLevelEngine(
            engine.context,
            spec,
            EngineConfig(
                stop_on_convergence=True,
                convergence_rel_tol=10.0,
                min_samples=10,
            ),
        )
        result = engine_cfg.evaluate(
            RandomSampler(spec),
            n_samples=500,
            seed=2,
            progress=lambda i, est: seen.append(i),
        )
        assert seen  # callback ran
        assert result.n_samples <= 500

    def test_invalid_sample_count(self, engine, spec):
        with pytest.raises(EvaluationError):
            engine.evaluate(RandomSampler(spec), n_samples=0)

    def test_summary_shape(self, engine, spec):
        result = engine.evaluate(RandomSampler(spec), n_samples=10, seed=1)
        summary = result.summary()
        assert summary["strategy"] == "RandomSampler"
        assert "ssf" in summary and "categories" in summary


class TestGoldenStateUnperturbed:
    def test_campaigns_do_not_corrupt_golden_run(self, small_context, engine, spec):
        """Fault runs reuse the context's SoC; a fresh restart afterwards
        must still reproduce the golden final state."""
        engine.evaluate(RandomSampler(spec), n_samples=30, seed=4)
        sim = small_context.simulator
        sim.restart_from(small_context.golden, small_context.n_cycles)
        assert sim.state_matches(small_context.golden.final)
