"""Tests for exhaustive single-bit fault enumeration."""

import numpy as np
import pytest

from repro import (
    AttackSpec,
    CrossLevelEngine,
    RadiusDistribution,
    RandomSampler,
    SpatialDistribution,
    TemporalDistribution,
    default_attack_spec,
)
from repro.attack.techniques import PinpointUpsetTechnique
from repro.core.exhaustive import enumerate_single_bit_faults
from repro.errors import EvaluationError


@pytest.fixture(scope="module")
def engine(small_context):
    return CrossLevelEngine(
        small_context, default_attack_spec(small_context, window=8)
    )


class TestEnumeration:
    def test_known_critical_bit_found(self, engine):
        result = enumerate_single_bit_faults(
            engine,
            bits=[("cfg_top0", 12), ("cfg_base5", 3), ("viol_addr", 2)],
            timing_distances=[2, 5],
        )
        assert result.n_evaluations == 6
        assert result.outcomes[(("cfg_top0", 12), 2)] == 1
        assert result.outcomes[(("cfg_base5", 3), 2)] == 0
        assert result.outcomes[(("viol_addr", 2), 5)] == 0
        assert result.ssf_exact == pytest.approx(2 / 6)

    def test_analytical_matches_rtl_probe(self, engine):
        fast = enumerate_single_bit_faults(
            engine,
            bits=[("cfg_top0", 12), ("cfg_perm1", 2), ("cfg_base2", 4)],
            timing_distances=[1, 4],
            use_analytical=True,
        )
        slow = enumerate_single_bit_faults(
            engine,
            bits=[("cfg_top0", 12), ("cfg_perm1", 2), ("cfg_base2", 4)],
            timing_distances=[1, 4],
            use_analytical=False,
        )
        assert fast.outcomes == slow.outcomes

    def test_out_of_range_timing_is_zero(self, engine, small_context):
        result = enumerate_single_bit_faults(
            engine,
            bits=[("cfg_top0", 12)],
            timing_distances=[small_context.target_cycle + 5],
        )
        assert result.ssf_exact == 0.0

    def test_defaults_cover_cone_bits(self, engine, small_context):
        result = enumerate_single_bit_faults(
            engine, timing_distances=[3]
        )
        expected = len(small_context.characterization.cone_register_bits())
        assert result.n_evaluations == expected

    def test_progress_callback(self, engine):
        seen = []
        enumerate_single_bit_faults(
            engine,
            bits=[("cfg_top0", 12)],
            timing_distances=[1, 2],
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen == [(1, 2), (2, 2)]

    def test_empty_space_rejected(self, engine):
        with pytest.raises(EvaluationError):
            enumerate_single_bit_faults(engine, bits=[], timing_distances=[1])

    def test_per_bit_helpers(self, engine):
        result = enumerate_single_bit_faults(
            engine,
            bits=[("cfg_top0", 12), ("cfg_base5", 3)],
            timing_distances=[2, 3],
        )
        counts = result.per_bit_success_count()
        assert counts[("cfg_top0", 12)] == 2
        assert ("cfg_base5", 3) not in counts
        assert result.ssf_of_bit(("cfg_top0", 12)) == 1.0
        assert result.successful_faults() == [
            (("cfg_top0", 12), 2),
            (("cfg_top0", 12), 3),
        ]


class TestPinpointTechnique:
    def test_mc_agrees_with_enumeration(self, small_context):
        """The end-to-end validation in miniature: exact SSF within the
        Monte Carlo estimate's noise."""
        ch = small_context.characterization
        bits = [
            ("cfg_top0", 12), ("cfg_top0", 13), ("cfg_base5", 3),
            ("cfg_base2", 4), ("cfg_top3", 2), ("viol_addr", 1),
        ]
        cells = [
            small_context.netlist.register_dff(reg, bit).nid
            for reg, bit in bits
        ]
        spec = AttackSpec(
            technique=PinpointUpsetTechnique(timing=small_context.timing),
            temporal=TemporalDistribution(6),
            spatial=SpatialDistribution(cells),
            radius=RadiusDistribution((1.0,)),
        )
        engine = CrossLevelEngine(small_context, spec)
        exact = enumerate_single_bit_faults(
            engine, bits=bits, timing_distances=list(range(6))
        )
        mc = engine.evaluate(RandomSampler(spec), 900, seed=8)
        assert abs(mc.ssf - exact.ssf_exact) < 0.08

    def test_dff_centre_strikes_exact_bit(self, small_context):
        spec = default_attack_spec(small_context, window=5)
        tech = PinpointUpsetTechnique(timing=small_context.timing)
        nid = small_context.netlist.register_dff("cfg_top0", 12).nid
        injection = tech.build_injection(
            small_context.placement, nid, 5.0, np.random.default_rng(0)
        )
        assert injection.struck_dffs == [nid]
        assert injection.gate_pulses == {}

    def test_comb_centre_emits_single_pulse(self, small_context):
        tech = PinpointUpsetTechnique(timing=small_context.timing)
        gate = small_context.netlist.topo_order()[0]
        injection = tech.build_injection(
            small_context.placement, gate, 5.0, np.random.default_rng(0)
        )
        assert list(injection.gate_pulses) == [gate]
        assert injection.struck_dffs == []
