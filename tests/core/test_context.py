"""Tests for evaluation-context assembly."""

import pytest

from repro.core.context import build_context, find_violation_cycles
from repro.errors import EvaluationError
from repro.soc.programs import illegal_write_benchmark


class TestContext:
    def test_target_cycle_is_the_violation_check(self, small_context):
        cycles = small_context.violation_check_cycles()
        assert cycles == [small_context.target_cycle]

    def test_golden_final_state_detected(self, small_context):
        final = small_context.golden.final
        assert final.registers["sticky_flag"] == 1

    def test_checkpoints_cover_run(self, small_context):
        cps = small_context.golden.checkpoints.cycles()
        assert cps[0] == 0
        assert cps[-1] == small_context.n_cycles

    def test_mpu_trace_cycle_indexed(self, small_context):
        for i, entry in enumerate(small_context.mpu_trace):
            assert entry.cycle == i

    def test_characterization_attached(self, small_context):
        assert small_context.characterization is not None
        assert small_context.characterization.responding == small_context.responding

    def test_build_without_characterization(self):
        context = build_context(illegal_write_benchmark(), characterize=False)
        assert context.characterization is None
        assert context.target_cycle > 0

    def test_find_violation_cycles_empty_trace(self):
        assert find_violation_cycles([], 8) == []
