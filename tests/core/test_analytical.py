"""The analytical evaluator must agree with RTL ground truth.

For every fault confined to memory-type registers, the paper replaces RTL
re-simulation with an analytical outcome.  These tests enumerate single-
and multi-bit memory-type faults and assert the analytical answer equals
the result of actually flipping the bits in RTL and running to completion.
"""

import itertools

import numpy as np
import pytest

from repro.core.analytical import AnalyticalEvaluator
from repro.core.engine import CrossLevelEngine, EngineConfig
from repro import default_attack_spec


@pytest.fixture(scope="module")
def engine(small_context):
    spec = default_attack_spec(small_context, window=10)
    return CrossLevelEngine(small_context, spec)


@pytest.fixture(scope="module")
def evaluator(small_context):
    return AnalyticalEvaluator(
        small_context.benchmark,
        small_context.mpu_trace,
        small_context.memmap.n_mpu_regions,
    )


def interesting_single_bits(small_context):
    """A deliberate mix of granting, detected, and harmless config flips."""
    return [
        ("cfg_top0", 12),   # grants the illegal write
        ("cfg_top0", 13),   # also grants
        ("cfg_perm1", 2),   # clears priv-only: grants
        ("cfg_perm1", 3),   # disables region 1: still violates (background)
        ("cfg_perm0", 1),   # breaks benign writes: detected
        ("cfg_base1", 3),   # shifts the protected window
        ("cfg_base5", 3),   # disabled region: harmless
        ("cfg_top7", 9),    # disabled region: harmless
        ("viol_addr", 4),   # diagnostic only
        ("sticky_flag", 0),
    ]


class TestAgainstRtlGroundTruth:
    def test_single_bit_memory_faults(self, small_context, engine, evaluator):
        injection_cycle = small_context.target_cycle - 6
        for reg, bit in interesting_single_bits(small_context):
            flips = frozenset({(reg, bit)})
            analytical = evaluator.evaluate(flips, injection_cycle)
            rtl = engine.probe_register_flips(flips, injection_cycle)
            assert analytical == rtl, (reg, bit)

    def test_double_bit_memory_faults(self, small_context, engine, evaluator):
        rng = np.random.default_rng(9)
        bits = interesting_single_bits(small_context)
        injection_cycle = small_context.target_cycle - 4
        pairs = [tuple(rng.choice(len(bits), 2, replace=False)) for _ in range(12)]
        for i, j in pairs:
            flips = frozenset({bits[i], bits[j]})
            analytical = evaluator.evaluate(flips, injection_cycle)
            rtl = engine.probe_register_flips(flips, injection_cycle)
            assert analytical == rtl, flips

    def test_timing_independence_for_config_faults(
        self, small_context, engine, evaluator
    ):
        """Observation 3: for persistent (memory-type) faults the outcome
        does not depend on the timing distance, as long as the fault lands
        before the check."""
        flips = frozenset({("cfg_top0", 12)})
        outcomes = {
            evaluator.evaluate(flips, small_context.target_cycle - t)
            for t in (2, 4, 7, 9)
        }
        assert outcomes == {1}

    def test_fault_after_target_fails(self, small_context, evaluator, engine):
        flips = frozenset({("cfg_top0", 12)})
        late = small_context.target_cycle + 3
        assert evaluator.evaluate(flips, late) == 0
        assert engine.probe_register_flips(flips, late) == 0


class TestAnalyticalShortcuts:
    def test_sticky_fault_is_detection(self, evaluator, small_context):
        assert evaluator.evaluate(
            frozenset({("sticky_flag", 0), ("cfg_top0", 12)}),
            small_context.target_cycle - 5,
        ) == 0

    def test_non_config_fault_is_failure(self, evaluator, small_context):
        assert evaluator.evaluate(
            frozenset({("viol_addr", 2)}), small_context.target_cycle - 5
        ) == 0

    def test_empty_trace_rejected(self, small_context):
        from repro.errors import EvaluationError

        with pytest.raises(EvaluationError):
            AnalyticalEvaluator(small_context.benchmark, [], 8)
