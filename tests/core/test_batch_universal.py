"""Universal batching: the equivalence matrix (PR 9 tentpole).

PR 5 proved the batched kernel bit-identical to the scalar reference on
its original envelope: per-sample ``SeedSequence`` streams and
``impact_cycles == 1``.  This suite locks down the *universal* kernel —
``run_batch`` now engages for every seed kind (``SeedSequence`` / int /
``Generator`` / ``None``) and any ``impact_cycles``, grouping samples by
their full injection-cycle tuple and diverging to a scalar continuation
only after a sample actually flips state.

The matrix swept here:

* **seed kind** × **impact_cycles ∈ {1, 2, 3}** × **batch size** (around
  the uint64 lane-word boundary, plus a 257-sample run) × **technique
  variant** (voltage transient and pinpoint upsets);
* conformance-oracle runs through ``registry.build(config=...)`` on the
  write-cfg design, so the differential harness' own construction path
  covers the new kernel;
* ``repro replay`` semantics on the new paths: a multi-cycle campaign
  logged through the batched kernel must replay bit-identically on the
  scalar ``run_sample`` reference.

The scalar path remains deliberately untouched — it is the reference
implementation every comparison grounds on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import default_attack_spec
from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    RunStore,
    StoppingConfig,
)
from repro.conformance import get_design, replay_sample
from repro.conformance.differential import build_samplers
from repro.core.engine import CrossLevelEngine, EngineConfig
from repro.obs.logging import reset_warn_once
from repro.obs.metrics import deterministic_view
from repro.sampling import RandomSampler
from repro.utils.rng import as_generator, sample_seed_sequence

IMPACTS = (1, 2, 3)
SEED_KINDS = ("seedseq", "int", "generator")


def _seed_pair(kind: str, value: int):
    """Two independent-but-identical seeds of one kind.

    Generators are stateful, so the batched and scalar runs each need
    their own twin; SeedSequence/int seeds are value-like but twins keep
    the call shape uniform.
    """
    if kind == "seedseq":
        return np.random.SeedSequence(value), np.random.SeedSequence(value)
    if kind == "int":
        return value, value
    if kind == "generator":
        return np.random.default_rng(value), np.random.default_rng(value)
    raise AssertionError(kind)


def _assert_results_identical(rb, rs):
    assert rb.records == rs.records
    assert rb.estimator.ssf == rs.estimator.ssf
    assert rb.estimator.variance == rs.estimator.variance
    assert rb.estimator.history == rs.estimator.history
    assert deterministic_view(rb.metrics) == deterministic_view(rs.metrics)


def _engaged(result) -> bool:
    """Did the batched kernel actually run (vs the scalar fallback)?"""
    return any(m["name"] == "engine_batch_size" for m in (result.metrics or []))


@pytest.fixture(scope="module")
def transient_engines(small_context):
    """impact_cycles -> (batched, scalar, sampler) on the transient spec.

    One spec per impact value: the engines share the session context but
    each spec owns its technique (``impact_cycles`` is a technique
    field)."""
    out = {}
    for impact in IMPACTS:
        spec = default_attack_spec(
            small_context, window=10, subblock_fraction=0.25
        )
        spec.technique.impact_cycles = impact
        batched = CrossLevelEngine(
            small_context, spec, config=EngineConfig(batch=True)
        )
        scalar = CrossLevelEngine(
            small_context, spec, config=EngineConfig(batch=False)
        )
        out[impact] = (batched, scalar, RandomSampler(spec))
    return out


@pytest.fixture(scope="module")
def pinpoint_engines(small_context):
    """impact_cycles -> (batched, scalar, samplers) via the conformance
    registry's own ``build(config=...)`` path (the oracle harness)."""
    out = {}
    for impact in IMPACTS:
        built_b = get_design("write-cfg").build(
            small_context, config=EngineConfig(batch=True)
        )
        built_s = get_design("write-cfg").build(
            small_context, config=EngineConfig(batch=False)
        )
        built_b.spec.technique.impact_cycles = impact
        built_s.spec.technique.impact_cycles = impact
        out[impact] = (built_b.engine, built_s.engine, dict(build_samplers(built_b)))
    return out


# ----------------------------------------------------------------------
# the matrix: seed kind x impact_cycles x n x technique
# ----------------------------------------------------------------------
class TestUniversalMatrix:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(1, 24),
        kind=st.sampled_from(SEED_KINDS),
        impact=st.sampled_from(IMPACTS),
    )
    def test_transient(self, transient_engines, seed, n, kind, impact):
        batched, scalar, sampler = transient_engines[impact]
        sb, ss = _seed_pair(kind, seed)
        rb = batched.evaluate(sampler, n, seed=sb)
        rs = scalar.evaluate(sampler, n, seed=ss)
        _assert_results_identical(rb, rs)
        assert _engaged(rb)
        assert not _engaged(rs)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(1, 24),
        kind=st.sampled_from(SEED_KINDS),
        impact=st.sampled_from(IMPACTS),
        sampler_name=st.sampled_from(("uniform", "importance")),
    )
    def test_pinpoint_conformance_oracle(
        self, pinpoint_engines, seed, n, kind, impact, sampler_name
    ):
        batched, scalar, samplers = pinpoint_engines[impact]
        sb, ss = _seed_pair(kind, seed)
        rb = batched.evaluate(samplers[sampler_name], n, seed=sb)
        rs = scalar.evaluate(samplers[sampler_name], n, seed=ss)
        # Conformance engines run observe=False (no metric registries),
        # exactly as the differential harness uses them.
        assert rb.records == rs.records
        assert rb.estimator.ssf == rs.estimator.ssf
        assert rb.estimator.history == rs.estimator.history

    def test_none_seed_engages_batched_kernel(self, transient_engines):
        """None-seed runs draw fresh OS entropy, so there is no scalar
        twin to compare against — the contract is engagement plus a
        well-formed record stream."""
        batched, _, sampler = transient_engines[2]
        result = batched.evaluate(sampler, 20, seed=None)
        assert len(result.records) == 20
        assert _engaged(result)


# ----------------------------------------------------------------------
# batch shapes around the uint64 lane-word boundary, any impact
# ----------------------------------------------------------------------
class TestBatchShapes:
    @pytest.mark.parametrize("impact", [1, 2])
    @pytest.mark.parametrize("b", [1, 63, 64, 65])
    def test_lane_word_boundaries(self, transient_engines, b, impact):
        """run_batch over b samples == b scalar run_sample calls on twin
        streams, for single- and multi-cycle techniques."""
        batched, scalar, sampler = transient_engines[impact]
        base = np.random.SeedSequence(5150 + 7 * b + impact)
        rngs_b = [as_generator(sample_seed_sequence(base, i)) for i in range(b)]
        samples = [sampler.sample(rng) for rng in rngs_b]
        got = batched.run_batch(samples, rngs_b)
        rngs_s = [as_generator(sample_seed_sequence(base, i)) for i in range(b)]
        for rng in rngs_s:
            sampler.sample(rng)  # consume the draw exactly as above
        expected = [
            scalar.run_sample(sample, rng)
            for sample, rng in zip(samples, rngs_s)
        ]
        assert got == expected

    def test_257_samples_int_seed_multi_cycle(self, pinpoint_engines):
        """The ISSUE's 257-sample row: shared-stream int seed, pinpoint
        technique, impact_cycles=2 — five lane words most cycles plus a
        ragged tail, evaluated bit-identically."""
        batched, scalar, samplers = pinpoint_engines[2]
        rb = batched.evaluate(samplers["uniform"], 257, seed=99)
        rs = scalar.evaluate(samplers["uniform"], 257, seed=99)
        assert rb.records == rs.records
        assert rb.estimator.ssf == rs.estimator.ssf

    def test_shared_stream_interleave_matches_scalar_consumption(
        self, transient_engines
    ):
        """The batched kernel pre-draws (sample_i, injections_i) pairs in
        the exact scalar interleave, so a shared Generator stream stays
        bit-compatible; a direct spot-check on the stream position."""
        batched, scalar, sampler = transient_engines[3]
        rb = batched.evaluate(sampler, 17, seed=np.random.default_rng(41))
        rs = scalar.evaluate(sampler, 17, seed=np.random.default_rng(41))
        _assert_results_identical(rb, rs)


# ----------------------------------------------------------------------
# replay on the new code paths
# ----------------------------------------------------------------------
class TestReplayNewPaths:
    @pytest.fixture(scope="class")
    def multi_cycle_run(self, small_context, tmp_path_factory):
        """A durable campaign through the batched multi-cycle kernel."""
        spec_obj = default_attack_spec(
            small_context, window=10, subblock_fraction=0.25
        )
        spec_obj.technique.impact_cycles = 2
        engine = CrossLevelEngine(
            small_context, spec_obj, config=EngineConfig(batch=True)
        )
        spec = CampaignSpec(
            benchmark="write",
            sampler="random",
            window=10,
            subblock_fraction=0.25,
            impact_cycles=2,
            seed=47,
            chunk_size=20,
            stopping=StoppingConfig(mode="fixed", n_samples=60),
        )
        store = RunStore.create(tmp_path_factory.mktemp("runs"), spec)
        runner = CampaignRunner(
            spec,
            store=store,
            engine=engine,
            sampler=RandomSampler(spec_obj),
            n_workers=1,
        )
        runner.run()
        return engine, spec_obj, store

    def test_batched_multi_cycle_campaign_replays_bit_identical(
        self, multi_cycle_run
    ):
        engine, spec_obj, store = multi_cycle_run
        scalar = CrossLevelEngine(
            engine.context, spec_obj, config=EngineConfig(batch=False)
        )
        sampler = RandomSampler(spec_obj)
        for index in (0, 19, 20, 59):
            replayed = replay_sample(
                store, index, engine=scalar, sampler=sampler
            )
            assert replayed.logged == replayed.replayed


# ----------------------------------------------------------------------
# fallback accounting (satellite: counter + one-time warning per reason)
# ----------------------------------------------------------------------
def _fallback_count(result, reason):
    return sum(
        m["value"]
        for m in (result.metrics or [])
        if m["name"] == "engine_batch_fallback_total"
        and m.get("labels", {}).get("reason") == reason
    )


class TestBatchFallback:
    @pytest.fixture(autouse=True)
    def _fresh_warnings(self):
        reset_warn_once()
        yield
        reset_warn_once()

    def test_disabled_reason_counted_and_warned_once(
        self, transient_engines, caplog
    ):
        _, scalar, sampler = transient_engines[2]
        with caplog.at_level("WARNING"):
            r1 = scalar.evaluate(sampler, 3, seed=7)
            r2 = scalar.evaluate(sampler, 3, seed=7)
        assert _fallback_count(r1, "disabled") == 1
        assert _fallback_count(r2, "disabled") == 1
        warnings = [
            rec for rec in caplog.records if "disengaged" in rec.message
        ]
        assert len(warnings) == 1  # warn_once: second call stays silent
        # The warning names what the caller passed, so the log alone
        # explains why this campaign took the scalar loop.
        assert "disabled" in warnings[0].message
        assert "seed kind=int" in warnings[0].message
        assert "impact_cycles=2" in warnings[0].message

    def test_stop_on_convergence_reason(self, small_context, caplog):
        spec = default_attack_spec(
            small_context, window=8, subblock_fraction=0.25
        )
        engine = CrossLevelEngine(
            small_context,
            spec,
            config=EngineConfig(batch=True, stop_on_convergence=True),
        )
        with caplog.at_level("WARNING"):
            result = engine.evaluate(
                RandomSampler(spec), 5, seed=np.random.SeedSequence(3)
            )
        assert _fallback_count(result, "stop_on_convergence") == 1
        assert not _engaged(result)
        warnings = [
            rec for rec in caplog.records if "disengaged" in rec.message
        ]
        assert len(warnings) == 1
        assert "stop_on_convergence" in warnings[0].message
        assert "seed kind=SeedSequence" in warnings[0].message

    def test_batched_run_emits_no_fallback_counter(self, transient_engines):
        batched, _, sampler = transient_engines[1]
        result = batched.evaluate(sampler, 5, seed=11)
        names = {m["name"] for m in result.metrics}
        assert "engine_batch_fallback_total" not in names
        # Fallback accounting is observability, never semantics.
        deterministic_names = {
            m["name"] for m in deterministic_view(result.metrics)
        }
        assert "engine_batch_fallback_total" not in deterministic_names
