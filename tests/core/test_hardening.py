"""Tests for SSF attribution and the selective-hardening study."""

import pytest

from repro.attack.spec import AttackSample
from repro.core.hardening import HardeningStudy, attribute_ssf, critical_bits
from repro.core.results import CampaignResult, OutcomeCategory, SampleRecord
from repro.errors import EvaluationError
from repro.sampling.estimator import SsfEstimator


def make_result(success_specs, n_total=100):
    """Build a synthetic campaign: success_specs = [(weight, bits), ...]."""
    records = []
    estimator = SsfEstimator()
    for weight, bits in success_specs:
        sample = AttackSample(t=1, centre=0, radius_um=3.0, weight=weight)
        records.append(
            SampleRecord(
                sample=sample,
                e=1,
                category=OutcomeCategory.MEMORY_ONLY,
                flipped_bits=frozenset(bits),
                injection_cycle=10,
            )
        )
        estimator.push(sample, 1)
    while len(records) < n_total:
        sample = AttackSample(t=1, centre=0, radius_um=3.0, weight=1.0)
        records.append(
            SampleRecord(
                sample=sample,
                e=0,
                category=OutcomeCategory.MASKED,
                flipped_bits=frozenset(),
                injection_cycle=10,
            )
        )
        estimator.push(sample, 0)
    return CampaignResult("test", records, estimator)


class TestAttribution:
    def test_shares_sum_to_weighted_ssf_per_bit(self):
        result = make_result(
            [(1.0, {("a", 0)}), (1.0, {("a", 0)}), (1.0, {("b", 1)})]
        )
        shares = attribute_ssf(result)
        assert shares[("a", 0)] == pytest.approx(2 / 100)
        assert shares[("b", 1)] == pytest.approx(1 / 100)

    def test_multibit_success_credits_all_bits(self):
        result = make_result([(1.0, {("a", 0), ("b", 0)})])
        shares = attribute_ssf(result)
        assert shares[("a", 0)] == shares[("b", 0)] == pytest.approx(1 / 100)

    def test_weights_respected(self):
        result = make_result([(0.25, {("a", 0)})])
        assert attribute_ssf(result)[("a", 0)] == pytest.approx(0.25 / 100)


class TestCriticalBits:
    def test_smallest_prefix_selected(self):
        shares = {("a", 0): 0.90, ("b", 0): 0.06, ("c", 0): 0.04}
        assert critical_bits(shares, coverage=0.90) == [("a", 0)]
        assert critical_bits(shares, coverage=0.95) == [("a", 0), ("b", 0)]
        assert len(critical_bits(shares, coverage=1.0)) == 3

    def test_empty_shares(self):
        assert critical_bits({}, 0.95) == []

    def test_validation(self):
        with pytest.raises(EvaluationError):
            critical_bits({("a", 0): 1.0}, coverage=0.0)


class TestHardeningStudy:
    def test_paper_arithmetic(self, mpu_netlist):
        """Hardening bits covering share s with resilience R gives
        SSF' = SSF (1 - s) + SSF s / R — the paper's 6.5x math."""
        result = make_result(
            [(1.0, {("viol_q", 0)})] * 19 + [(1.0, {("grant_q", 0)})]
        )
        study = HardeningStudy(mpu_netlist, result, resilience_factor=10.0)
        outcome = study.harden([("viol_q", 0)])
        ssf = result.ssf
        expected = ssf * 0.05 + ssf * 0.95 / 10.0
        assert outcome.ssf_after == pytest.approx(expected)
        assert outcome.ssf_improvement == pytest.approx(ssf / expected)
        assert outcome.covered_share == pytest.approx(0.95)

    def test_mixed_bit_success_not_attenuated_unless_all_hardened(
        self, mpu_netlist
    ):
        result = make_result([(1.0, {("viol_q", 0), ("grant_q", 0)})])
        study = HardeningStudy(mpu_netlist, result)
        # without an oracle, a partially-hardened record conservatively
        # counts as still succeeding
        partial = study.harden([("viol_q", 0)])
        assert partial.ssf_after == pytest.approx(result.ssf)
        # both flops hardened: each flips with 1/R, so the two-bit upset
        # survives with R^-2
        full = study.harden([("viol_q", 0), ("grant_q", 0)])
        assert full.ssf_after == pytest.approx(result.ssf / 100.0)

    def test_oracle_resolves_partial_hardening(self, mpu_netlist):
        """With an oracle saying the residual flips alone fail, hardening
        only the necessary bit already attenuates the record."""
        result = make_result([(1.0, {("viol_q", 0), ("viol_addr", 3)})])
        oracle = lambda record, flips: int(("viol_q", 0) in flips)
        study = HardeningStudy(mpu_netlist, result, oracle=oracle)
        outcome = study.harden([("viol_q", 0)])
        assert outcome.ssf_after == pytest.approx(result.ssf / 10.0)

    def test_area_overhead_small_for_few_bits(self, mpu_netlist):
        result = make_result([(1.0, {("viol_q", 0)})])
        study = HardeningStudy(mpu_netlist, result, area_factor=3.0)
        outcome = study.harden_for_coverage(0.95)
        assert 0.0 < outcome.area_overhead < 0.02

    def test_pareto_monotone(self, mpu_netlist):
        result = make_result(
            [(1.0, {("viol_q", 0)})] * 10
            + [(1.0, {("grant_q", 0)})] * 5
            + [(1.0, {("req_addr", 12)})] * 2
        )
        study = HardeningStudy(mpu_netlist, result)
        outcomes = study.pareto((0.5, 0.9, 1.0))
        ssfs = [o.ssf_after for o in outcomes]
        assert ssfs == sorted(ssfs, reverse=True)
        areas = [o.area_overhead for o in outcomes]
        assert areas == sorted(areas)

    def test_validation(self, mpu_netlist):
        result = make_result([(1.0, {("viol_q", 0)})])
        with pytest.raises(EvaluationError):
            HardeningStudy(mpu_netlist, result, resilience_factor=1.0)
        with pytest.raises(EvaluationError):
            HardeningStudy(mpu_netlist, result, area_factor=0.5)

    def test_summary_fields(self, mpu_netlist):
        result = make_result([(1.0, {("viol_q", 0)})])
        outcome = HardeningStudy(mpu_netlist, result).harden_for_coverage()
        summary = outcome.summary()
        assert summary["n_hardened_bits"] == 1
        assert summary["ssf_improvement_x"] > 1
