"""Tests for the countermeasure study (reduced configuration)."""

import pytest

from repro.countermeasures import CountermeasureStudy, STANDARD_VARIANTS
from repro.soc.mpu import MpuVariant
from repro.soc.programs import illegal_write_benchmark

from tests.conftest import SMALL_CHARAC


@pytest.fixture(scope="module")
def study_results():
    study = CountermeasureStudy(
        illegal_write_benchmark,
        variants=[MpuVariant(), MpuVariant(cfg_parity=True)],
        n_samples=400,
        window=10,
        charac_config=SMALL_CHARAC,
        seed=7,
    )
    return study.run()


class TestCountermeasureStudy:
    def test_baseline_first_with_zero_overhead(self, study_results):
        assert study_results[0].variant.name == "none"
        assert study_results[0].area_overhead == 0.0

    def test_parity_reduces_ssf(self, study_results):
        baseline, parity = study_results
        assert baseline.ssf > 0
        assert parity.ssf < baseline.ssf / 2
        assert parity.improvement_over(baseline) > 2.0

    def test_parity_costs_area(self, study_results):
        assert study_results[1].area_overhead > 0.0

    def test_table_rows_shape(self, study_results):
        rows = CountermeasureStudy.table_rows(study_results)
        assert len(rows) == 2
        assert rows[0][0] == "none"
        assert rows[0][3] == "1.0x"

    def test_campaigns_attached(self, study_results):
        for result in study_results:
            assert result.campaign is not None
            assert result.context.mpu_variant == result.variant

    def test_unknown_sampler_rejected(self):
        with pytest.raises(ValueError):
            CountermeasureStudy(illegal_write_benchmark, sampler="magic")


class TestStandardVariants:
    def test_baseline_included_first(self):
        assert STANDARD_VARIANTS[0] == MpuVariant()

    def test_all_distinct(self):
        names = [v.name for v in STANDARD_VARIANTS]
        assert len(names) == len(set(names))
