"""Tests for parallel campaign evaluation."""

import multiprocessing
import os

import pytest

from repro import RandomSampler, default_attack_spec
from repro.core.engine import CrossLevelEngine
from repro.core.parallel import _split_counts, parallel_evaluate
from repro.errors import EvaluationError

from tests.campaign.stubs import BernoulliEngine, StubSampler

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)


class TestSplitCounts:
    def test_even_split(self):
        assert _split_counts(100, 4) == [25, 25, 25, 25]

    def test_remainder_spread(self):
        assert _split_counts(10, 3) == [4, 3, 3]

    def test_more_workers_than_samples(self):
        counts = _split_counts(2, 4)
        assert sum(counts) == 2 and counts == [1, 1, 0, 0]


class TestParallelEvaluate:
    @pytest.fixture(scope="class")
    def engine(self, small_context):
        spec = default_attack_spec(small_context, window=10)
        return CrossLevelEngine(small_context, spec), spec

    def test_single_worker_falls_back(self, engine):
        eng, spec = engine
        result = parallel_evaluate(
            eng, RandomSampler(spec), 40, seed=5, n_workers=1
        )
        sequential = eng.evaluate(RandomSampler(spec), 40, seed=5)
        assert result.ssf == sequential.ssf

    @needs_fork
    def test_two_workers_complete_and_merge(self, engine):
        eng, spec = engine
        result = parallel_evaluate(
            eng, RandomSampler(spec), 60, seed=5, n_workers=2
        )
        assert result.n_samples == 60
        assert 0.0 <= result.ssf <= 1.0
        assert "x2 workers" in result.strategy

    @needs_fork
    def test_deterministic_given_layout(self, engine):
        eng, spec = engine
        a = parallel_evaluate(eng, RandomSampler(spec), 50, seed=9, n_workers=2)
        b = parallel_evaluate(eng, RandomSampler(spec), 50, seed=9, n_workers=2)
        assert a.ssf == b.ssf
        assert [r.e for r in a.records] == [r.e for r in b.records]

    @needs_fork
    def test_estimator_merge_consistent(self, engine):
        """The merged estimator must equal pushing all records in order."""
        eng, spec = engine
        result = parallel_evaluate(
            eng, RandomSampler(spec), 50, seed=2, n_workers=2
        )
        manual = sum(r.sample.weight * r.e for r in result.records) / len(
            result.records
        )
        assert result.ssf == pytest.approx(manual)

    def test_invalid_sample_count(self, engine):
        eng, spec = engine
        with pytest.raises(EvaluationError):
            parallel_evaluate(eng, RandomSampler(spec), 0, n_workers=2)


@needs_fork
class TestSeedPolicyRegression:
    """The old ``seed + worker_index`` derivation collided across
    campaigns: (seed=0, worker=1) reused (seed=1, worker=0)'s stream."""

    def draws(self, seed):
        result = parallel_evaluate(
            BernoulliEngine(p=0.5),
            StubSampler(),
            40,
            seed=seed,
            n_workers=2,
            chunk_size=20,
            poll_interval_s=0.1,
        )
        return [(r.sample.t, r.sample.centre, r.e) for r in result.records]

    def test_adjacent_campaign_seeds_share_no_stream(self):
        a = self.draws(0)
        b = self.draws(1)
        # Old scheme: b's first half == a's second half. Spawned
        # SeedSequence children must make every chunk stream distinct.
        assert a[:20] != b[:20]
        assert a[20:] != b[:20]
        assert a[:20] != b[20:]

    def test_worker_count_invariant_given_chunk_size(self):
        two = parallel_evaluate(
            BernoulliEngine(), StubSampler(), 60, seed=5,
            n_workers=2, chunk_size=10, poll_interval_s=0.1,
        )
        four = parallel_evaluate(
            BernoulliEngine(), StubSampler(), 60, seed=5,
            n_workers=4, chunk_size=10, poll_interval_s=0.1,
        )
        assert two.ssf == four.ssf
        assert [r.e for r in two.records] == [r.e for r in four.records]


@needs_fork
class TestDeadWorkerDetection:
    """A worker that dies without posting to the queue (e.g. OOM-kill)
    used to hang the parent in a bare ``queue.get()`` forever."""

    def test_killed_worker_raises_instead_of_hanging(self):
        class DyingEngine:
            def evaluate(self, sampler, n_samples, seed=None, progress=None):
                os._exit(9)

        with pytest.raises(EvaluationError, match="died"):
            parallel_evaluate(
                DyingEngine(), StubSampler(), 40,
                seed=1, n_workers=2, poll_interval_s=0.1,
            )

    def test_worker_exception_still_surfaced(self):
        class FailingEngine:
            def evaluate(self, sampler, n_samples, seed=None, progress=None):
                raise RuntimeError("chunk exploded")

        with pytest.raises(EvaluationError, match="chunk exploded"):
            parallel_evaluate(
                FailingEngine(), StubSampler(), 40,
                seed=1, n_workers=2, poll_interval_s=0.1,
            )
