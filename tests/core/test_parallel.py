"""Tests for parallel campaign evaluation."""

import multiprocessing

import pytest

from repro import RandomSampler, default_attack_spec
from repro.core.engine import CrossLevelEngine
from repro.core.parallel import _split_counts, parallel_evaluate
from repro.errors import EvaluationError

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)


class TestSplitCounts:
    def test_even_split(self):
        assert _split_counts(100, 4) == [25, 25, 25, 25]

    def test_remainder_spread(self):
        assert _split_counts(10, 3) == [4, 3, 3]

    def test_more_workers_than_samples(self):
        counts = _split_counts(2, 4)
        assert sum(counts) == 2 and counts == [1, 1, 0, 0]


class TestParallelEvaluate:
    @pytest.fixture(scope="class")
    def engine(self, small_context):
        spec = default_attack_spec(small_context, window=10)
        return CrossLevelEngine(small_context, spec), spec

    def test_single_worker_falls_back(self, engine):
        eng, spec = engine
        result = parallel_evaluate(
            eng, RandomSampler(spec), 40, seed=5, n_workers=1
        )
        sequential = eng.evaluate(RandomSampler(spec), 40, seed=5)
        assert result.ssf == sequential.ssf

    @needs_fork
    def test_two_workers_complete_and_merge(self, engine):
        eng, spec = engine
        result = parallel_evaluate(
            eng, RandomSampler(spec), 60, seed=5, n_workers=2
        )
        assert result.n_samples == 60
        assert 0.0 <= result.ssf <= 1.0
        assert "x2 workers" in result.strategy

    @needs_fork
    def test_deterministic_given_layout(self, engine):
        eng, spec = engine
        a = parallel_evaluate(eng, RandomSampler(spec), 50, seed=9, n_workers=2)
        b = parallel_evaluate(eng, RandomSampler(spec), 50, seed=9, n_workers=2)
        assert a.ssf == b.ssf
        assert [r.e for r in a.records] == [r.e for r in b.records]

    @needs_fork
    def test_estimator_merge_consistent(self, engine):
        """The merged estimator must equal pushing all records in order."""
        eng, spec = engine
        result = parallel_evaluate(
            eng, RandomSampler(spec), 50, seed=2, n_workers=2
        )
        manual = sum(r.sample.weight * r.e for r in result.records) / len(
            result.records
        )
        assert result.ssf == pytest.approx(manual)

    def test_invalid_sample_count(self, engine):
        eng, spec = engine
        with pytest.raises(EvaluationError):
            parallel_evaluate(eng, RandomSampler(spec), 0, n_workers=2)
