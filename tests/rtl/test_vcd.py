"""Tests for the VCD waveform writer."""

import io

import pytest

from repro.errors import SimulationError
from repro.rtl.device import RegisterSpec
from repro.rtl.vcd import VcdWriter, _identifier, dump_run

from tests.rtl.test_simulator import CounterDevice


class TestIdentifiers:
    def test_first_codes(self):
        assert _identifier(0) == "!"
        assert _identifier(1) == '"'

    def test_rollover_to_two_chars(self):
        assert len(_identifier(93)) == 1
        assert len(_identifier(94)) == 2

    def test_unique_over_many(self):
        codes = {_identifier(i) for i in range(5000)}
        assert len(codes) == 5000


class TestVcdWriter:
    def specs(self):
        return {"count": RegisterSpec(8), "flag": RegisterSpec(1)}

    def test_header_and_dumpvars(self):
        buffer = io.StringIO()
        with VcdWriter(buffer, self.specs(), module="soc") as vcd:
            vcd.sample(0, {"count": 3, "flag": 1})
        text = buffer.getvalue()
        assert "$timescale 1ns $end" in text
        assert "$scope module soc $end" in text
        assert "$var reg 8" in text and "$var wire 1" in text
        assert "$enddefinitions $end" in text
        assert "$dumpvars" in text
        assert "b00000011" in text

    def test_only_changes_emitted(self):
        buffer = io.StringIO()
        with VcdWriter(buffer, self.specs()) as vcd:
            vcd.sample(0, {"count": 1, "flag": 0})
            vcd.sample(1, {"count": 1, "flag": 0})  # no change: no timestamp
            vcd.sample(2, {"count": 2, "flag": 0})
        text = buffer.getvalue()
        assert "#0" in text and "#2" in text
        assert "#1" not in text

    def test_closed_writer_rejects_samples(self):
        buffer = io.StringIO()
        vcd = VcdWriter(buffer, self.specs())
        vcd.close()
        with pytest.raises(SimulationError):
            vcd.sample(0, {"count": 0, "flag": 0})

    def test_empty_specs_rejected(self):
        with pytest.raises(SimulationError):
            VcdWriter(io.StringIO(), {})

    def test_file_target(self, tmp_path):
        path = tmp_path / "wave.vcd"
        with VcdWriter(path, self.specs()) as vcd:
            vcd.sample(0, {"count": 9, "flag": 1})
        assert path.read_text().startswith("$timescale")


class TestDumpRun:
    def test_counter_waveform(self, tmp_path):
        path = tmp_path / "counter.vcd"
        dump_run(CounterDevice(), 10, path)
        text = path.read_text()
        # the counter changes every cycle: 11 timestamps (0..10)
        assert text.count("#") >= 10
        assert "b00001010" in text  # value 10 at the end

    def test_register_filter(self, tmp_path):
        from repro.soc.programs import illegal_write_benchmark
        from repro.soc.soc import Soc

        soc = Soc()
        soc.load_program(illegal_write_benchmark().program.words)
        path = tmp_path / "mpu.vcd"
        dump_run(soc, 50, path, registers=["viol_q", "grant_q", "core_pc"])
        text = path.read_text()
        assert "viol_q" in text and "core_pc" in text
        assert "cfg_base0" not in text

    def test_unknown_register_rejected(self, tmp_path):
        with pytest.raises(SimulationError):
            dump_run(CounterDevice(), 5, tmp_path / "x.vcd", registers=["nope"])
