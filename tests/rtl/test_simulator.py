"""Tests for the RTL kernel: devices, checkpoints, golden runs, restarts."""

from typing import Dict, List, Mapping

import pytest

from repro.errors import CheckpointError, SimulationError
from repro.rtl.checkpoint import Checkpoint, CheckpointStore
from repro.rtl.device import Device, RegisterSpec
from repro.rtl.simulator import RtlSimulator


class CounterDevice(Device):
    """Counter plus a small RAM that records the count trajectory."""

    def __init__(self):
        self.count = 0
        self.ram = [0] * 16

    def register_specs(self) -> Dict[str, RegisterSpec]:
        return {"count": RegisterSpec(8)}

    def reset(self) -> None:
        self.count = 0
        self.ram = [0] * 16

    def step(self) -> None:
        self.ram[self.count % 16] = self.count
        self.count = (self.count + 1) & 0xFF

    def get_registers(self) -> Dict[str, int]:
        return {"count": self.count}

    def set_registers(self, values: Mapping[str, int]) -> None:
        if "count" in values:
            self.count = values["count"] & 0xFF

    def get_arrays(self) -> Dict[str, List[int]]:
        return {"ram": list(self.ram)}

    def set_arrays(self, arrays: Mapping[str, List[int]]) -> None:
        if "ram" in arrays:
            self.ram = list(arrays["ram"])


class TestRegisterSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            RegisterSpec(0)
        with pytest.raises(ValueError):
            RegisterSpec(4, init=16)
        assert RegisterSpec(4).mask == 0xF


class TestDeviceHelpers:
    def test_flip_register_bit(self):
        dev = CounterDevice()
        dev.count = 0b0100
        dev.flip_register_bit("count", 2)
        assert dev.count == 0
        with pytest.raises(KeyError):
            dev.flip_register_bit("nope", 0)
        with pytest.raises(ValueError):
            dev.flip_register_bit("count", 8)

    def test_total_register_bits(self):
        assert CounterDevice().total_register_bits() == 8


class TestCheckpointStore:
    def test_nearest_before(self):
        store = CheckpointStore()
        for cycle in (0, 10, 20):
            store.add(Checkpoint(cycle=cycle, registers={}, arrays={}))
        assert store.nearest_before(15).cycle == 10
        assert store.nearest_before(10).cycle == 10
        assert store.nearest_before(999).cycle == 20

    def test_nearest_before_too_early(self):
        store = CheckpointStore()
        store.add(Checkpoint(cycle=5, registers={}, arrays={}))
        with pytest.raises(CheckpointError):
            store.nearest_before(3)

    def test_duplicate_rejected(self):
        store = CheckpointStore()
        store.add(Checkpoint(cycle=5, registers={}, arrays={}))
        with pytest.raises(CheckpointError):
            store.add(Checkpoint(cycle=5, registers={}, arrays={}))

    def test_missing_exact_lookup(self):
        store = CheckpointStore()
        with pytest.raises(CheckpointError):
            store.at(7)

    def test_diff_registers(self):
        a = Checkpoint(cycle=0, registers={"r": 0b1010}, arrays={})
        b = Checkpoint(cycle=1, registers={"r": 0b1000}, arrays={})
        assert a.diff_registers(b) == {"r": 0b0010}
        assert a.diff_registers(a) == {}


class TestGoldenRunAndRestart:
    def test_golden_checkpoint_spacing(self):
        sim = RtlSimulator(CounterDevice())
        golden = sim.golden_run(100, checkpoint_interval=25)
        assert golden.checkpoints.cycles() == [0, 25, 50, 75, 100]
        assert golden.final.registers["count"] == 100

    def test_restart_reproduces_exact_state(self):
        dev = CounterDevice()
        sim = RtlSimulator(dev)
        golden = sim.golden_run(100, checkpoint_interval=30)
        sim.restart_from(golden, 77)
        assert sim.cycle == 77
        assert dev.count == 77
        # arrays restored too
        sim.restart_from(golden, 31)
        assert dev.ram == golden.checkpoints.at(30).arrays["ram"][:16] or dev.count == 31

    def test_restart_then_rerun_matches_golden(self):
        dev = CounterDevice()
        sim = RtlSimulator(dev)
        golden = sim.golden_run(80, checkpoint_interval=20)
        sim.restart_from(golden, 45)
        sim.run_to(80)
        assert dev.get_registers() == golden.final.registers

    def test_run_backwards_rejected(self):
        sim = RtlSimulator(CounterDevice())
        sim.run_to(10)
        with pytest.raises(SimulationError):
            sim.run_to(5)

    def test_golden_run_validation(self):
        sim = RtlSimulator(CounterDevice())
        with pytest.raises(SimulationError):
            sim.golden_run(0)
        with pytest.raises(SimulationError):
            sim.golden_run(10, checkpoint_interval=0)


class TestProbesAndInjection:
    def test_probe_collects_per_cycle(self):
        dev = CounterDevice()
        sim = RtlSimulator(dev)
        sim.add_probe("count", lambda d, c: d.count)
        golden = sim.golden_run(10, checkpoint_interval=5)
        assert golden.traces["count"] == list(range(10))

    def test_duplicate_probe_rejected(self):
        sim = RtlSimulator(CounterDevice())
        sim.add_probe("x", lambda d, c: 0)
        with pytest.raises(SimulationError):
            sim.add_probe("x", lambda d, c: 0)

    def test_inject_bit_errors_xor_semantics(self):
        dev = CounterDevice()
        sim = RtlSimulator(dev)
        dev.count = 0b1100
        sim.inject_bit_errors({"count": 0b0101})
        assert dev.count == 0b1001
        sim.inject_bit_errors({"count": 0})  # no-op
        assert dev.count == 0b1001

    def test_state_matches(self):
        dev = CounterDevice()
        sim = RtlSimulator(dev)
        golden = sim.golden_run(20, checkpoint_interval=10)
        sim.restart_from(golden, 20)
        assert sim.state_matches(golden.final)
        dev.count ^= 1
        assert not sim.state_matches(golden.final)
