"""Tests for the vulnerability-report generator."""

import pytest

from repro import (
    CrossLevelEngine,
    ImportanceSampler,
    RandomSampler,
    default_attack_spec,
)
from repro.analysis.report import vulnerability_report


@pytest.fixture(scope="module")
def campaign(small_context):
    spec = default_attack_spec(small_context, window=10)
    engine = CrossLevelEngine(small_context, spec)
    sampler = ImportanceSampler(
        spec, small_context.characterization,
        placement=small_context.placement,
    )
    result = engine.evaluate(sampler, n_samples=400, seed=3)
    return engine, result


class TestVulnerabilityReport:
    def test_sections_present(self, small_context, campaign):
        engine, result = campaign
        report = vulnerability_report(
            small_context, result, oracle=engine.outcome_oracle()
        )
        for heading in (
            "# Fault-attack vulnerability report",
            "## System under evaluation",
            "## System Security Factor",
            "## Fault outcome mix",
            "## Critical register bits",
            "## Recommended hardening",
        ):
            assert heading in report

    def test_key_numbers_rendered(self, small_context, campaign):
        engine, result = campaign
        report = vulnerability_report(small_context, result)
        assert f"{result.ssf:.5f}" in report
        assert str(result.n_samples) in report

    def test_without_oracle(self, small_context, campaign):
        _engine, result = campaign
        report = vulnerability_report(small_context, result, oracle=None)
        assert "Critical register bits" in report

    def test_empty_campaign_message(self, small_context):
        spec = default_attack_spec(small_context, window=10)
        engine = CrossLevelEngine(small_context, spec)
        # two samples: almost surely no successes
        result = engine.evaluate(RandomSampler(spec), n_samples=2, seed=1)
        if result.n_success == 0:
            report = vulnerability_report(small_context, result)
            assert "No successful attacks" in report
