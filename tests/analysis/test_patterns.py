"""Tests for bit-error pattern classification (Fig. 7 taxonomy)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.patterns import (
    classify_pattern,
    fills_whole_byte,
    pattern_overlap,
    pattern_statistics,
)


class TestClassification:
    def test_single_bit(self):
        assert classify_pattern([("r", 3)]) == "single_bit"

    def test_single_byte(self):
        assert classify_pattern([("r", 0), ("r", 7)]) == "single_byte"

    def test_multi_byte_same_register(self):
        assert classify_pattern([("r", 7), ("r", 8)]) == "multi_byte"

    def test_multi_byte_across_registers(self):
        assert classify_pattern([("a", 0), ("b", 0)]) == "multi_byte"

    def test_empty(self):
        assert classify_pattern([]) == "empty"

    @given(st.sets(st.tuples(st.sampled_from(["a", "b"]), st.integers(0, 31)),
                   min_size=1, max_size=6))
    def test_classification_total(self, bits):
        assert classify_pattern(bits) in ("single_bit", "single_byte", "multi_byte")


class TestWholeByte:
    def test_full_byte_detected(self):
        pattern = [("r", i) for i in range(8)]
        assert fills_whole_byte(pattern, {"r": 16})

    def test_partial_byte_not_full(self):
        pattern = [("r", i) for i in range(7)]
        assert not fills_whole_byte(pattern, {"r": 16})

    def test_narrow_register_byte(self):
        # a 4-bit register's only byte is 4 bits wide
        assert fills_whole_byte([("p", 0), ("p", 1), ("p", 2), ("p", 3)], {"p": 4})


class TestStatistics:
    def test_fraction_accounting(self):
        patterns = [
            {("r", 0)},
            {("r", 1)},
            {("r", 0), ("r", 1)},
            {("r", 0), ("r", 9)},
            set(),  # masked: skipped
        ]
        stats = pattern_statistics(patterns, {"r": 16})
        assert stats.n_faulty == 4
        fr = stats.fractions()
        assert fr["single_bit"] == pytest.approx(0.5)
        assert fr["single_byte"] == pytest.approx(0.25)
        assert fr["multi_byte"] == pytest.approx(0.25)

    def test_distinct_patterns_deduplicated(self):
        patterns = [{("r", 0)}, {("r", 0)}, {("r", 1)}]
        stats = pattern_statistics(patterns)
        assert stats.n_distinct == 2

    def test_overlap_venn(self):
        a = [frozenset({("r", 0)}), frozenset({("r", 1)})]
        b = [frozenset({("r", 1)}), frozenset({("r", 2)}), frozenset({("r", 3)})]
        venn = pattern_overlap(a, b)
        assert venn == {"only_a": 1, "only_b": 2, "common": 1}
