"""Tests for bootstrap campaign statistics."""

import numpy as np
import pytest

from repro.analysis.statistics import (
    VarianceComparison,
    bootstrap_ci,
    campaign_values,
    compare_variances,
    required_samples_estimate,
    ssf_confidence_interval,
)
from repro.attack.spec import AttackSample
from repro.core.results import CampaignResult, OutcomeCategory, SampleRecord
from repro.errors import EvaluationError
from repro.sampling.estimator import SsfEstimator


def synthetic_campaign(weights_and_es, name="test"):
    estimator = SsfEstimator()
    records = []
    for weight, e in weights_and_es:
        sample = AttackSample(t=0, centre=0, radius_um=3.0, weight=weight)
        records.append(
            SampleRecord(
                sample=sample,
                e=e,
                category=OutcomeCategory.MASKED,
                flipped_bits=frozenset(),
                injection_cycle=0,
            )
        )
        estimator.push(sample, e)
    return CampaignResult(name, records, estimator)


def bernoulli_campaign(p, n, weight=1.0, seed=0):
    rng = np.random.default_rng(seed)
    return synthetic_campaign(
        [(weight, int(rng.random() < p)) for _ in range(n)]
    )


class TestBootstrapCi:
    def test_contains_true_mean(self):
        rng = np.random.default_rng(1)
        values = rng.normal(5.0, 1.0, size=500)
        lo, hi = bootstrap_ci(values, seed=2)
        assert lo < 5.0 < hi
        assert hi - lo < 0.5

    def test_validation(self):
        with pytest.raises(EvaluationError):
            bootstrap_ci([1.0])
        with pytest.raises(EvaluationError):
            bootstrap_ci([1.0, 2.0], alpha=0.0)

    def test_deterministic_given_seed(self):
        values = list(range(50))
        assert bootstrap_ci(values, seed=7) == bootstrap_ci(values, seed=7)


class TestSsfCi:
    def test_brackets_estimate(self):
        campaign = bernoulli_campaign(0.1, 800, seed=3)
        lo, hi = ssf_confidence_interval(campaign, seed=4)
        assert lo <= campaign.ssf <= hi
        assert 0.0 <= lo and hi <= 1.0

    def test_campaign_values_weighted(self):
        campaign = synthetic_campaign([(0.5, 1), (1.0, 0)])
        assert list(campaign_values(campaign)) == [0.5, 0.0]


class TestCompareVariances:
    def test_detects_clear_difference(self):
        noisy = bernoulli_campaign(0.1, 1500, weight=1.0, seed=5)
        tight = bernoulli_campaign(0.5, 1500, weight=0.02, seed=6)
        comparison = compare_variances(noisy, tight, seed=7)
        assert comparison.ratio > 10
        assert comparison.significant
        assert "significant" in str(comparison)

    def test_no_false_positive_on_identical(self):
        a = bernoulli_campaign(0.2, 1000, seed=8)
        b = bernoulli_campaign(0.2, 1000, seed=9)
        comparison = compare_variances(a, b, seed=10)
        assert not comparison.significant

    def test_degenerate_campaign_rejected(self):
        a = bernoulli_campaign(0.2, 100, seed=11)
        dead = synthetic_campaign([(1.0, 0)] * 100)
        with pytest.raises(EvaluationError):
            compare_variances(a, dead, seed=12)


class TestPlanning:
    def test_required_samples_scales_inverse_square(self):
        campaign = bernoulli_campaign(0.1, 2000, seed=13)
        n10 = required_samples_estimate(campaign, rel_precision=0.10)
        n05 = required_samples_estimate(campaign, rel_precision=0.05)
        assert n05 == pytest.approx(4 * n10, rel=0.02)

    def test_zero_ssf_rejected(self):
        dead = synthetic_campaign([(1.0, 0)] * 10)
        with pytest.raises(EvaluationError):
            required_samples_estimate(dead)
