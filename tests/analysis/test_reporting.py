"""Tests for report formatting helpers."""

import pytest

from repro.analysis.reporting import format_table, normalize_series


class TestFormatTable:
    def test_alignment_and_content(self):
        table = format_table(
            ["name", "value"],
            [["alpha", 1.5], ["b", 0.000001]],
            title="Title",
        )
        lines = table.splitlines()
        assert lines[0] == "Title"
        assert "alpha" in table
        assert "1.000e-06" in table

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert "a" in table


class TestNormalizeSeries:
    def test_normalizes_to_first(self):
        assert normalize_series([2.0, 4.0, 1.0]) == [1.0, 2.0, 0.5]

    def test_custom_reference(self):
        assert normalize_series([2.0, 4.0], reference=4.0) == [0.5, 1.0]

    def test_zero_reference(self):
        assert normalize_series([0.0, 5.0]) == [0.0, 0.0]

    def test_empty(self):
        assert normalize_series([]) == []
