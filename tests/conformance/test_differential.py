"""Differential tests: MC engine vs the exhaustive exact oracle.

Fast tier (always on): the ``write-cfg`` design over the shared session
context — exhaustive enumeration, then uniform and importance MC runs
checked for CI coverage of the exact SSF, per-sample outcome agreement,
per-bit success counts, and chi-square goodness of fit of the realized
sampling distribution.

Full tier (``REPRO_CONFORMANCE=full``, set in the CI conformance job):
every registry design with its own context build — minutes, not seconds.
"""

import os

import pytest

from repro.conformance import (
    DESIGNS,
    DifferentialConfig,
    get_design,
    run_design,
)
from repro.core.engine import EngineConfig

FAST_CONFIG = DifferentialConfig(epsilon=0.06, max_samples=4000, seed=7)

FULL = os.environ.get("REPRO_CONFORMANCE") == "full"


@pytest.fixture(scope="module")
def report(small_context):
    return run_design(get_design("write-cfg"), FAST_CONFIG, context=small_context)


class TestDifferentialFast:
    def test_both_samplers_pass(self, report):
        assert {v.sampler for v in report.verdicts} == {"uniform", "importance"}
        assert report.passed, report.to_dict()

    def test_exact_oracle_enumerated_full_space(self, report):
        design = get_design("write-cfg")
        assert report.n_enumerated == len(design.bits) * design.window
        assert 0.0 < report.exact_ssf < 1.0

    def test_ci_covers_exact_ssf(self, report):
        for verdict in report.verdicts:
            assert verdict.ci_low <= report.exact_ssf <= verdict.ci_high, (
                verdict.sampler, verdict.to_dict()
            )
            assert verdict.covers_exact

    def test_every_mc_sample_agrees_with_oracle(self, report):
        """The differential core: each MC record's outcome must equal the
        oracle's truth-table entry for its (bit, t) — zero tolerance."""
        for verdict in report.verdicts:
            assert verdict.n_outcome_mismatches == 0

    def test_per_bit_success_counts_match(self, report):
        for verdict in report.verdicts:
            assert verdict.per_bit_ok
            assert set(verdict.per_bit_mc) == set(verdict.per_bit_expected)

    def test_realized_distribution_passes_gof(self, report):
        for verdict in report.verdicts:
            assert verdict.gof_ok, (verdict.sampler, verdict.gof)
            assert verdict.gof.p_value > FAST_CONFIG.gof_alpha

    def test_importance_sampler_converges_faster(self, report):
        """Variance reduction: with the same stopping rule, importance
        sampling should stop at or before the uniform sampler."""
        by_name = {v.sampler: v for v in report.verdicts}
        assert by_name["importance"].n_samples <= by_name["uniform"].n_samples

    def test_report_serializes(self, report):
        payload = report.to_dict()
        assert payload["design"] == "write-cfg"
        assert payload["passed"] is True
        assert len(payload["verdicts"]) == 2
        for verdict in payload["verdicts"]:
            assert {"sampler", "ssf", "ci_low", "ci_high", "passed"} <= set(verdict)


class TestDifferentialBatchedKernel:
    """The oracle gate also covers the batched kernel (PR 5)."""

    def test_default_engine_is_batched(self, small_context):
        built = get_design("write-cfg").build(small_context)
        assert built.engine.config.batch

    def test_batched_and_scalar_harness_agree(self, small_context):
        """Same design, same seed tree: the differential harness must
        produce identical verdicts whichever kernel runs underneath —
        the strongest end-to-end statement of run_batch bit-identity."""
        config = DifferentialConfig(epsilon=0.09, max_samples=1500, seed=11)
        design = get_design("write-cfg")
        batched = run_design(design, config, context=small_context)
        scalar = run_design(
            design, config, context=small_context,
            engine_config=EngineConfig(batch=False),
        )
        assert batched.passed and scalar.passed
        assert batched.exact_ssf == scalar.exact_ssf
        assert [v.to_dict() for v in batched.verdicts] == [
            v.to_dict() for v in scalar.verdicts
        ]


@pytest.mark.skipif(
    not FULL, reason="set REPRO_CONFORMANCE=full to run the full registry"
)
@pytest.mark.parametrize("name", [d.name for d in DESIGNS])
def test_full_registry_design(name):
    report = run_design(get_design(name), DifferentialConfig(epsilon=0.06))
    assert report.passed, report.to_dict()
