"""Seed-lineage contract of the MC engine and the scheduler.

The replay subsystem depends on a precise promise: sample ``i`` of chunk
``c`` is drawn and executed on the generator seeded by
``sample_seed_sequence(chunk_seed_sequence(root, c), i)`` and on nothing
else.  These tests pin that promise down — including the regression that
originally motivated it (all samples of a chunk sharing one stream).
"""

import numpy as np
import pytest

from repro import RandomSampler
from repro.campaign.scheduler import (
    Chunk,
    WorkStealingScheduler,
    chunk_seed_sequence,
)
from repro.campaign.store import record_to_dict
from repro.conformance import get_design
from repro.utils.rng import as_generator, sample_seed_sequence

from tests.campaign.stubs import BernoulliEngine, StubSampler


def pcg_state(rng: np.random.Generator) -> int:
    return rng.bit_generator.state["state"]["state"]


class SpySampler(RandomSampler):
    """Records the RNG state handed to every ``sample()`` call."""

    def __init__(self, spec):
        super().__init__(spec)
        self.states = []

    def sample(self, rng):
        self.states.append(pcg_state(rng))
        return super().sample(rng)


@pytest.fixture(scope="module")
def built(small_context):
    return get_design("write-cfg").build(small_context)


class TestPerSampleStreams:
    def test_samples_in_a_chunk_never_share_a_seed(self, built):
        """Regression: with a shared stream, sample i's RNG state is
        whatever sample i-1 left behind; with per-sample spawning it is
        exactly the fresh child-i state.  This fails on the pre-fix
        engine (which built one generator per chunk)."""
        base = chunk_seed_sequence(3, 0)
        spy = SpySampler(built.spec)
        built.engine.evaluate(spy, 6, seed=base)

        expected = [
            pcg_state(as_generator(sample_seed_sequence(base, i)))
            for i in range(6)
        ]
        assert spy.states == expected
        assert len(set(spy.states)) == 6

    def test_sample_replayable_in_isolation(self, built):
        """Record i of a chunk is reproducible without running 0..i-1."""
        base = chunk_seed_sequence(11, 4)
        result = built.engine.evaluate(RandomSampler(built.spec), 5, seed=base)

        rng = as_generator(sample_seed_sequence(base, 3))
        sample = RandomSampler(built.spec).sample(rng)
        record = built.engine.run_sample(sample, rng)
        assert record_to_dict(record) == record_to_dict(result.records[3])

    def test_int_seed_keeps_legacy_shared_stream(self, built):
        """Int / Generator seeds keep the historical single-stream path
        (callers pinning integer seeds must see unchanged sequences)."""
        r_int = built.engine.evaluate(RandomSampler(built.spec), 5, seed=123)
        r_gen = built.engine.evaluate(
            RandomSampler(built.spec), 5, seed=as_generator(123)
        )
        assert [record_to_dict(r) for r in r_int.records] == [
            record_to_dict(r) for r in r_gen.records
        ]

        spy = SpySampler(built.spec)
        built.engine.evaluate(spy, 3, seed=123)
        assert spy.states[0] == pcg_state(as_generator(123))


class SeedSpyEngine(BernoulliEngine):
    """Bernoulli stub that records the seed the scheduler passes."""

    def __init__(self):
        super().__init__(p=0.3)
        self.seeds = []

    def evaluate(self, sampler, n_samples, seed=None, progress=None):
        self.seeds.append(seed)
        return super().evaluate(sampler, n_samples, seed=seed)


class TestSchedulerSeedLineage:
    def test_scheduler_passes_chunk_seed_sequences(self):
        """The scheduler must hand each chunk its *SeedSequence* (not a
        flattened Generator) so the engine can spawn per-sample children
        — the contract replay reconstructs."""
        engine = SeedSpyEngine()
        scheduler = WorkStealingScheduler(
            engine, StubSampler(), seed=17, n_workers=1
        )
        scheduler.run([Chunk(0, 4), Chunk(1, 4), Chunk(2, 4)], lambda r: True)

        assert len(engine.seeds) == 3
        for seed in engine.seeds:
            assert isinstance(seed, np.random.SeedSequence)
        assert [tuple(s.spawn_key) for s in engine.seeds] == [(0,), (1,), (2,)]
        assert all(s.entropy == 17 for s in engine.seeds)

    def test_chunk_streams_are_pairwise_distinct(self):
        states = {
            (c, i): tuple(
                sample_seed_sequence(chunk_seed_sequence(7, c), i)
                .generate_state(4)
                .tolist()
            )
            for c in range(6)
            for i in range(8)
        }
        assert len(set(states.values())) == len(states)
