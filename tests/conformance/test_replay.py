"""Deterministic replay of logged campaign samples (tentpole pillar 3).

Runs a real campaign (full cross-level engine on the write-cfg
conformance design), then reconstructs individual samples purely from the
run directory + seed lineage and asserts bit-identity with the log.
"""

import dataclasses

import pytest

from repro import RandomSampler
from repro.campaign import CampaignRunner, CampaignSpec, RunStore, StoppingConfig
from repro.conformance import get_design, locate_sample, replay_sample
from repro.conformance.replay import ReplayedSample, count_samples
from repro.errors import EvaluationError

N_SAMPLES = 60
CHUNK_SIZE = 20


@pytest.fixture(scope="module")
def completed_run(small_context, tmp_path_factory):
    built = get_design("write-cfg").build(small_context)
    spec = CampaignSpec(
        benchmark="write",
        sampler="random",
        window=built.window,
        seed=31,
        chunk_size=CHUNK_SIZE,
        stopping=StoppingConfig(mode="fixed", n_samples=N_SAMPLES),
    )
    store = RunStore.create(tmp_path_factory.mktemp("runs"), spec)
    runner = CampaignRunner(
        spec,
        store=store,
        engine=built.engine,
        sampler=RandomSampler(built.spec),
        n_workers=1,
    )
    runner.run()
    return built, store


class TestReplay:
    def test_campaign_ran_through_the_batched_kernel(self, completed_run):
        """The campaign above ran on the default (batched) engine with
        SeedSequence-seeded chunks, so the batch gate engaged: the cycle
        cache saw traffic.  Every replay below then reconstructs those
        samples through the *scalar* run_sample path — batched-run logs
        replay bit-identically on the reference kernel."""
        built, _ = completed_run
        assert built.engine.config.batch
        hits, misses = built.engine.baseline_cache_stats
        assert misses > 0
        assert hits + misses > 0

    def test_batched_run_sample_replays_scalar_bit_identical(
        self, completed_run
    ):
        """Belt-and-braces on top of the suite-wide property: replay a
        batched-run sample on an engine that cannot batch."""
        built, store = completed_run
        from repro.core.engine import CrossLevelEngine, EngineConfig

        scalar_engine = CrossLevelEngine(
            built.context, built.spec,
            config=EngineConfig(batch=False), observe=False,
        )
        for idx in (0, CHUNK_SIZE, N_SAMPLES - 1):
            outcome = replay_sample(
                store, idx,
                engine=scalar_engine,
                sampler=RandomSampler(built.spec),
            )
            assert outcome.bit_identical, (idx, outcome.diff())

    def test_every_probe_index_is_bit_identical(self, completed_run):
        built, store = completed_run
        assert count_samples(store) == N_SAMPLES
        # First/last of the run, a chunk boundary on both sides, and an
        # interior sample — all reconstructed without running neighbours.
        for idx in (0, CHUNK_SIZE - 1, CHUNK_SIZE, 37, N_SAMPLES - 1):
            outcome = replay_sample(
                store, idx,
                engine=built.engine,
                sampler=RandomSampler(built.spec),
            )
            assert outcome.bit_identical, (idx, outcome.diff())
            assert outcome.chunk_index == idx // CHUNK_SIZE
            assert outcome.chunk_offset == idx % CHUNK_SIZE
            assert outcome.diff() == []

    def test_locate_sample_walks_the_log(self, completed_run):
        _, store = completed_run
        chunk, offset, record = locate_sample(store, CHUNK_SIZE + 3)
        assert (chunk, offset) == (1, 3)
        assert record.e in (0, 1)

    def test_out_of_range_indices_raise(self, completed_run):
        _, store = completed_run
        with pytest.raises(EvaluationError, match="out of range"):
            locate_sample(store, N_SAMPLES)
        with pytest.raises(EvaluationError, match="non-negative"):
            locate_sample(store, -1)

    def test_divergence_is_detected_and_named(self, completed_run):
        """A runtime that does not match the spec must not replay clean —
        here the sampler draws from a wider window, so the temporal draw
        diverges and the diff names the fields."""
        built, store = completed_run
        from repro.attack.distributions import TemporalDistribution
        from repro.attack.spec import AttackSpec

        skewed = AttackSpec(
            technique=built.spec.technique,
            temporal=TemporalDistribution(built.window * 7),
            spatial=built.spec.spatial,
            radius=built.spec.radius,
        )
        outcomes = [
            replay_sample(
                store, idx, engine=built.engine, sampler=RandomSampler(skewed)
            )
            for idx in range(8)
        ]
        diverged = [o for o in outcomes if not o.bit_identical]
        assert diverged, "wider temporal window never changed a draw"
        assert all("t" in o.diff() for o in diverged)

    def test_replayed_sample_reporting(self):
        logged = {"t": 3, "e": 1}
        outcome = ReplayedSample(
            run_id="r", sample_index=0, chunk_index=0, chunk_offset=0,
            logged=logged, replayed={"t": 3, "e": 0},
        )
        assert not outcome.bit_identical
        assert outcome.diff() == ["e"]
        payload = outcome.to_dict()
        assert payload["bit_identical"] is False
        assert payload["diverging_fields"] == ["e"]
        clean = dataclasses.replace(outcome, replayed=dict(logged))
        assert clean.bit_identical and clean.diff() == []
