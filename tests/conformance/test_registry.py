"""Structural checks on the conformance design registry."""

import pytest

from repro.conformance import DESIGNS, design_names, get_design
from repro.errors import EvaluationError


class TestRegistry:
    def test_at_least_three_designs(self):
        assert len(DESIGNS) >= 3

    def test_names_unique_and_listed(self):
        names = design_names()
        assert len(set(names)) == len(names)
        assert set(names) == {d.name for d in DESIGNS}

    def test_get_design_round_trips(self):
        for design in DESIGNS:
            assert get_design(design.name) is design

    def test_unknown_design_raises_with_suggestions(self):
        with pytest.raises(EvaluationError, match="write-cfg"):
            get_design("nope")

    def test_every_bit_exists_in_the_netlist(self, mpu_netlist):
        """All registry bits must be real DFFs of the shared MPU design,
        otherwise enumeration would silently test nothing."""
        for design in DESIGNS:
            for reg, bit in design.bits:
                assert mpu_netlist.register_dff(reg, bit) is not None

    def test_fault_spaces_are_enumerable(self):
        for design in DESIGNS:
            assert 0 < design.window <= 16
            assert 0 < len(design.bits) * design.window <= 200
            assert design.max_frame >= 1

    def test_build_against_injected_context(self, small_context):
        built = get_design("write-cfg").build(small_context)
        design = get_design("write-cfg")
        assert built.bits == design.bits
        assert len(built.bit_of_cell) == len(design.bits)
        assert set(built.bit_of_cell.values()) == set(design.bits)
        # Pinpoint spec draws only from the registered cells/window.
        assert sorted(built.spec.spatial.universe) == sorted(built.bit_of_cell)
        assert built.spec.temporal.window == design.window
