"""Property-based invariants over the shared strategies (tentpole pillar 2).

Each property states a contract the estimation pipeline depends on:
importance reweighting is unbiased, masking a D pin never widens fault
propagation, spec hashes ignore only non-semantic knobs, persistence
layers round-trip losslessly, and the chunk/seed bookkeeping partitions
exactly.  All strategies come from ``tests/strategies.py`` so the ``ci``
profile (``HYPOTHESIS_PROFILE=ci``) derandomizes the whole suite at once.
"""

import dataclasses
import json
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attack.spec import AttackSample
from repro.campaign import (
    CampaignSpec,
    RunStore,
    record_from_dict,
    record_to_dict,
    spec_hash,
)
from repro.gatesim.logic import LogicEvaluator
from repro.precharac.characterization import (
    CharacterizationConfig,
    SystemCharacterization,
)
from repro.precharac.lifetime import LifetimeCampaign, RegisterCharacter
from repro.netlist.cones import UnrolledCones
from repro.precharac.persistence import (
    load_characterization,
    save_characterization,
)
from repro.precharac.signatures import SignatureAnalysis
from repro.sampling.estimator import SsfEstimator

from tests.strategies import (
    campaign_specs,
    random_netlists,
    reweighting_problems,
    sample_records,
    with_masked_dff,
)


class TestEstimatorInvariants:
    @given(problem=reweighting_problems())
    def test_reweighting_is_unbiased(self, problem):
        """E_g[(f/g) * e] == E_f[e] exactly, for any proposal g that is
        positive on f's support — the identity importance sampling rests
        on (paper eq. for SSF under a biased sampler)."""
        f, g, e = problem
        nominal = sum(fi * ei for fi, ei in zip(f, e))
        reweighted = sum(gi * (fi / gi) * ei for fi, gi, ei in zip(f, g, e))
        assert reweighted == pytest.approx(nominal, rel=1e-9, abs=1e-12)

    @given(problem=reweighting_problems())
    def test_estimator_accumulates_weighted_mean(self, problem):
        """Pushing each support point once with weight f/g yields exactly
        the arithmetic mean of the weighted outcomes (Welford path)."""
        f, g, e = problem
        estimator = SsfEstimator(record_history=False)
        for i, (fi, gi, ei) in enumerate(zip(f, g, e)):
            sample = AttackSample(t=i, centre=i, radius_um=1.0, weight=fi / gi)
            estimator.push(sample, ei)
        expected = sum(
            (fi / gi) * ei for fi, gi, ei in zip(f, g, e)
        ) / len(f)
        assert estimator.ssf == pytest.approx(expected, rel=1e-12, abs=1e-15)


def _next_state_diff(evaluator, inputs, state, faulty_inputs, faulty_state):
    golden = evaluator.next_state(evaluator.evaluate(inputs, state))
    faulty = evaluator.next_state(
        evaluator.evaluate(faulty_inputs, faulty_state)
    )
    return {reg for reg in golden if golden[reg] != faulty[reg]}


class TestMaskingMonotonicity:
    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_masking_never_widens_propagation(self, data):
        """An AND mask on a register's D pin can only *absorb* a fault:
        with the mask open the clone propagates identically; with it
        closed the propagated set shrinks by exactly the masked register.
        This is the gate-level form of the monotonicity the analytical
        evaluator assumes when it prunes masked cones."""
        nl = data.draw(random_netlists())
        registers = sorted(nl.registers)
        target = data.draw(st.sampled_from(registers))
        masked = with_masked_dff(nl, target)

        input_names = sorted({n.split("[")[0] for n in nl.inputs})
        inputs = {n: data.draw(st.integers(0, 1)) for n in input_names}
        state = {r: data.draw(st.integers(0, 1)) for r in registers}

        if data.draw(st.booleans()):
            key = data.draw(st.sampled_from(registers))
            faulty_inputs, faulty_state = inputs, dict(state)
            faulty_state[key] ^= 1
        else:
            key = data.draw(st.sampled_from(input_names))
            faulty_inputs, faulty_state = dict(inputs), state
            faulty_inputs[key] ^= 1

        base_diff = _next_state_diff(
            LogicEvaluator(nl), inputs, state, faulty_inputs, faulty_state
        )
        masked_ev = LogicEvaluator(masked)
        open_diff = _next_state_diff(
            masked_ev,
            {**inputs, "mask": 1},
            state,
            {**faulty_inputs, "mask": 1},
            faulty_state,
        )
        closed_diff = _next_state_diff(
            masked_ev,
            {**inputs, "mask": 0},
            state,
            {**faulty_inputs, "mask": 0},
            faulty_state,
        )
        assert open_diff == base_diff
        assert closed_diff == base_diff - {target}
        assert closed_diff <= base_diff


class TestSpecHashStability:
    @given(spec=campaign_specs())
    def test_hash_survives_serialization_round_trip(self, spec):
        h = spec_hash(spec)
        assert spec_hash(CampaignSpec.from_json(spec.to_json())) == h

    @given(spec=campaign_specs())
    def test_hash_ignores_only_non_semantic_fields(self, spec):
        h = spec_hash(spec)
        assert spec_hash(dataclasses.replace(spec, trace=not spec.trace)) == h
        assert (
            spec_hash(dataclasses.replace(spec, charac_cache="cache.json")) == h
        )
        assert spec_hash(dataclasses.replace(spec, seed=spec.seed + 1)) != h
        assert (
            spec_hash(dataclasses.replace(spec, window=spec.window + 1)) != h
        )


class TestPersistenceRoundTrips:
    @given(record=sample_records())
    def test_record_json_round_trip(self, record):
        through_json = json.loads(json.dumps(record_to_dict(record)))
        assert record_from_dict(through_json) == record

    @given(
        chunks=st.lists(
            st.lists(sample_records(), min_size=1, max_size=5),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_runstore_chunk_log_round_trip(self, chunks):
        with tempfile.TemporaryDirectory() as root:
            store = RunStore.create(root, CampaignSpec())
            for index, records in enumerate(chunks):
                store.append_chunk(index, records)
            entries = list(store.replay_chunks())
        assert [entry.index for entry in entries] == list(range(len(chunks)))
        assert [entry.records for entry in entries] == chunks

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_precharacterization_round_trip(self, data):
        nl = data.draw(random_netlists())
        all_nids = list(range(len(nl)))
        dff_nids = sorted(nl.registers[r][0] for r in nl.registers)
        responding = tuple(
            sorted(
                data.draw(
                    st.sets(st.sampled_from(dff_nids), min_size=1)
                )
            )
        )
        config = CharacterizationConfig(
            max_frame=data.draw(st.integers(1, 5)),
            lifetime_horizon=20,
            lifetime_trials=1,
            seed=data.draw(st.sampled_from([None, 3])),
        )
        cones = UnrolledCones(responding=list(responding))
        for depth in range(config.max_frame + 1):
            cones.fanin[depth] = set(
                data.draw(st.lists(st.sampled_from(all_nids), max_size=5))
            )
            cones.fanout[depth] = set(
                data.draw(st.lists(st.sampled_from(all_nids), max_size=5))
            )
        correlations = {
            (nid, frame): value
            for nid, frame, value in data.draw(
                st.lists(
                    st.tuples(
                        st.sampled_from(all_nids),
                        st.integers(0, config.max_frame),
                        st.floats(0.0, 1.0),
                    ),
                    max_size=6,
                )
            )
        }
        campaign = LifetimeCampaign(horizon=20)
        memory, computation = set(), set()
        for register in sorted(nl.registers):
            campaign.results[(register, 0)] = RegisterCharacter(
                register=register,
                bit=0,
                lifetime=data.draw(st.floats(0.0, 20.0)),
                contamination=data.draw(st.floats(0.0, 3.0)),
                ever_masked=data.draw(st.booleans()),
                trials=1,
            )
            bucket = memory if data.draw(st.booleans()) else computation
            bucket.add((register, 0))
        node_lifetime = {n.nid: 0.0 for n in nl.nodes}
        for nid in data.draw(
            st.lists(st.sampled_from(all_nids), max_size=6, unique=True)
        ):
            node_lifetime[nid] = data.draw(st.floats(0.1, 20.0))
        original = SystemCharacterization(
            netlist=nl,
            responding=responding,
            cones=cones,
            signatures=SignatureAnalysis(
                n_cycles=data.draw(st.integers(1, 50)),
                signatures={},
                correlations=correlations,
            ),
            lifetime=campaign,
            node_lifetime=node_lifetime,
            memory_type=memory,
            computation_type=computation,
            config=config,
        )

        with tempfile.TemporaryDirectory() as root:
            path = root + "/charac.json"
            save_characterization(original, path)
            loaded = load_characterization(path, nl)

        assert loaded.responding == responding
        assert loaded.cones.fanin == cones.fanin
        assert loaded.cones.fanout == cones.fanout
        assert loaded.signatures.correlations == correlations
        assert loaded.signatures.n_cycles == original.signatures.n_cycles
        assert loaded.lifetime.horizon == campaign.horizon
        assert loaded.lifetime.results == campaign.results
        assert loaded.node_lifetime == node_lifetime
        assert loaded.memory_type == memory
        assert loaded.computation_type == computation
        assert loaded.config == config


class TestChunkBookkeeping:
    @given(spec=campaign_specs())
    def test_chunk_plan_partitions_the_sample_cap(self, spec):
        sizes = spec.chunk_sizes()
        assert sum(sizes) == spec.stopping.sample_cap
        assert all(0 < size <= spec.chunk_size for size in sizes)
        assert all(size == spec.chunk_size for size in sizes[:-1])
