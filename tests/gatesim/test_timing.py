"""Tests for the timing model."""

import pytest

from repro.errors import AttackModelError
from repro.gatesim.timing import TimingModel
from repro.netlist.cells import GateKind


class TestTimingModel:
    def test_latch_window_around_edge(self):
        t = TimingModel(clock_period_ps=1000, setup_ps=40, hold_ps=25)
        assert t.latch_window == (960, 1025)

    def test_attenuation_monotone(self):
        t = TimingModel(attenuation_ps=6.0, min_pulse_ps=12.0)
        assert t.attenuate(100.0) == 94.0
        assert t.attenuate(17.0) == 0.0  # below min width after one stage
        assert t.attenuate(5.0) == 0.0

    def test_gate_delay_from_library_and_overrides(self):
        t = TimingModel()
        assert t.gate_delay(GateKind.XOR) > t.gate_delay(GateKind.NOT)
        t2 = TimingModel(delay_overrides={GateKind.NOT: 99.0})
        assert t2.gate_delay(GateKind.NOT) == 99.0

    def test_validation(self):
        with pytest.raises(AttackModelError):
            TimingModel(clock_period_ps=0)
        with pytest.raises(AttackModelError):
            TimingModel(setup_ps=-1)
        with pytest.raises(AttackModelError):
            TimingModel(min_pulse_ps=0)
