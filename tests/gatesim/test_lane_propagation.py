"""Columnar (multi-word-lane) propagation == per-sample exact path.

``simulate_cycle_batch`` has two exact backends: the per-sample sweep
(uint64 reachability prune + scalar propagation per injection) and the
columnar sweep (every sample's pulses in shared numpy arrays tagged with
an owner lane, one topological pass for the whole batch).  Both must be
bit-identical to each other *and* to ``simulate_cycle`` — including the
float arithmetic of delay addition, attenuation, interval merging, and
the per-node pulse-count truncation.

Random netlists from ``tests/strategies.py`` exercise DAG shapes the MPU
cannot: deep MUX trees, constant feeds, multi-fanout reconvergence.  The
batch shapes cover ragged tails around the auto-vectorization threshold
and the uint64 word boundary, plus the all-masked and all-latched
extremes where the columnar arrays are empty or maximal.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gatesim.transient import (
    VECTORIZED_MIN_BATCH,
    TransientInjection,
    TransientSimulator,
)

from tests.strategies import random_netlists


def _canon(result):
    """Order-insensitive view of one TransientResult."""
    return (
        sorted(result.flipped_bits),
        result.n_pulses_injected,
        result.n_pulses_latched,
        result.golden_next_state,
        result.faulty_next_state,
        result.any_fault,
    )


def _random_io(nl, rng):
    inputs = {name.split("[")[0]: int(rng.integers(0, 2)) for name in nl.inputs}
    state = {reg: int(rng.integers(0, 2)) for reg in nl.registers}
    return inputs, state


def _random_injections(nl, sim, rng, n, width_lo=20.0, width_hi=400.0):
    comb = [node.nid for node in nl.nodes if node.kind.is_combinational]
    dffs = [node.nid for node in nl.nodes if node.is_dff]
    out = []
    for _ in range(n):
        gate_pulses = {}
        if comb:
            for _ in range(int(rng.integers(0, 4))):
                nid = int(comb[rng.integers(0, len(comb))])
                gate_pulses[nid] = float(rng.uniform(width_lo, width_hi))
        struck = []
        if dffs and rng.random() < 0.3:
            struck = [int(dffs[rng.integers(0, len(dffs))])]
        out.append(
            TransientInjection(
                gate_pulses=gate_pulses,
                struck_dffs=struck,
                strike_time_ps=float(
                    rng.uniform(0, sim.timing.clock_period_ps)
                ),
            )
        )
    return out


def _assert_backends_agree(sim, inputs, state, injections):
    columnar = sim.simulate_cycle_batch(
        inputs, state, injections, vectorized=True
    )
    per_sample = sim.simulate_cycle_batch(
        inputs, state, injections, vectorized=False
    )
    scalar = [
        sim.simulate_cycle(inputs, state, injection)
        for injection in injections
    ]
    for rc, rp, rs in zip(columnar, per_sample, scalar):
        assert _canon(rc) == _canon(rp) == _canon(rs)


class TestLanePropagationProperty:
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_random_netlists_random_batches(self, data):
        nl = data.draw(random_netlists())
        sim = TransientSimulator(nl)
        rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
        inputs, state = _random_io(nl, rng)
        # Ragged shapes: below the auto threshold, around the uint64
        # word boundary, and odd tails.
        n = data.draw(
            st.sampled_from((1, 3, VECTORIZED_MIN_BATCH - 1, 13, 63, 65, 70))
        )
        injections = _random_injections(nl, sim, rng, n)
        _assert_backends_agree(sim, inputs, state, injections)

    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_all_masked_extreme(self, data):
        """Every pulse below min_pulse: the columnar arrays go empty at
        the first attenuation and nothing may latch anywhere."""
        nl = data.draw(random_netlists())
        sim = TransientSimulator(nl)
        rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
        inputs, state = _random_io(nl, rng)
        injections = _random_injections(
            nl, sim, rng, 20,
            width_lo=0.0, width_hi=sim.timing.min_pulse_ps * 0.99,
        )
        for injection in injections:
            injection.struck_dffs = []
        results = sim.simulate_cycle_batch(
            inputs, state, injections, vectorized=True
        )
        assert all(not r.any_fault for r in results)
        _assert_backends_agree(sim, inputs, state, injections)

    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_all_latched_extreme(self, data):
        """Cycle-wide pulses on every gate: maximal columnar occupancy,
        heavy merging, every latch window crossed."""
        nl = data.draw(random_netlists())
        sim = TransientSimulator(nl)
        rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
        inputs, state = _random_io(nl, rng)
        comb = [node.nid for node in nl.nodes if node.kind.is_combinational]
        wide = float(sim.timing.clock_period_ps * 2)
        injections = [
            TransientInjection(
                gate_pulses={nid: wide for nid in comb},
                strike_time_ps=0.0,
            )
            for _ in range(12)
        ]
        _assert_backends_agree(sim, inputs, state, injections)


class TestLanePropagationEdges:
    def test_empty_injections_in_batch(self, mpu_netlist):
        """Samples whose pulses all missed combinational logic ride the
        batch as empty owners — no pulses, no faults, correct counts."""
        sim = TransientSimulator(mpu_netlist)
        rng = np.random.default_rng(3)
        from repro.soc.mpu import MpuBehavioral, MpuInputs

        mpu = MpuBehavioral()
        state = mpu.get_registers()
        inputs = MpuInputs().as_port_dict()
        comb = [
            node.nid for node in mpu_netlist.nodes
            if node.kind.is_combinational
        ]
        injections = []
        for i in range(16):
            if i % 3 == 0:
                injections.append(TransientInjection())
            else:
                injections.append(
                    TransientInjection(
                        gate_pulses={
                            int(comb[rng.integers(0, len(comb))]):
                            float(rng.uniform(50, 300))
                        },
                        strike_time_ps=float(rng.uniform(0, 1800)),
                    )
                )
        _assert_backends_agree(sim, inputs, state, injections)
        results = sim.simulate_cycle_batch(
            inputs, state, injections, vectorized=True
        )
        for i, result in enumerate(results):
            if i % 3 == 0:
                assert result.n_pulses_injected == 0
                assert not result.any_fault

    def test_auto_threshold_selects_backends(self, mpu_netlist):
        """vectorized=None: batches below VECTORIZED_MIN_BATCH take the
        per-sample path, larger ones the columnar path — both exact, so
        the only observable is equality with the forced backends."""
        sim = TransientSimulator(mpu_netlist)
        from repro.soc.mpu import MpuBehavioral, MpuInputs

        state = MpuBehavioral().get_registers()
        inputs = MpuInputs().as_port_dict()
        rng = np.random.default_rng(9)
        injections = _random_injections(
            mpu_netlist, sim, rng, VECTORIZED_MIN_BATCH + 2
        )
        for n in (VECTORIZED_MIN_BATCH - 1, VECTORIZED_MIN_BATCH):
            auto = sim.simulate_cycle_batch(
                inputs, state, injections[:n]
            )
            forced = sim.simulate_cycle_batch(
                inputs, state, injections[:n],
                vectorized=n >= VECTORIZED_MIN_BATCH,
            )
            assert [_canon(a) for a in auto] == [_canon(f) for f in forced]
