"""Tests for scalar and bit-parallel logic evaluation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.gatesim.logic import LogicEvaluator, group_ports, signatures_from_values
from repro.hdl import Module
from repro.soc.mpu import MpuBehavioral, MpuInputs


class TestGroupPorts:
    def test_grouping_and_sorting(self):
        groups = group_ports(["a[2]", "a[0]", "a[1]", "b[0]"])
        assert [idx for idx, _ in groups["a"]] == [0, 1, 2]
        assert len(groups["b"]) == 1

    def test_unindexed_name(self):
        groups = group_ports(["clk"])
        assert groups["clk"] == [(0, "clk")]


def small_design():
    m = Module("t")
    a = m.input("a", 4)
    b = m.input("b", 4)
    acc = m.register("acc", 4, init=0)
    m.connect(acc, acc ^ (a & b))
    m.output("and", a & b)
    m.output("acc", acc)
    return m.finalize()


class TestScalarEvaluation:
    def test_step_outputs_and_state(self):
        ev = LogicEvaluator(small_design())
        outs, nxt = ev.step({"a": 0b1100, "b": 0b1010}, {"acc": 0b0001})
        assert outs["and"] == 0b1000
        assert nxt["acc"] == 0b1001

    def test_missing_input_rejected(self):
        ev = LogicEvaluator(small_design())
        with pytest.raises(SimulationError):
            ev.evaluate({"a": 0}, {"acc": 0})

    def test_missing_state_rejected(self):
        ev = LogicEvaluator(small_design())
        with pytest.raises(SimulationError):
            ev.evaluate({"a": 0, "b": 0}, {})

    def test_port_manifest(self):
        ev = LogicEvaluator(small_design())
        assert ev.input_ports() == {"a": 4, "b": 4}
        assert ev.output_ports() == {"and": 4, "acc": 4}


class TestTraceEvaluation:
    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)),
                    min_size=1, max_size=80))
    @settings(max_examples=20, deadline=None)
    def test_trace_matches_sequential_scalar(self, stimulus):
        """Bit-parallel evaluation over a trace == scalar cycle by cycle."""
        nl = small_design()
        ev = LogicEvaluator(nl)
        # scalar run, recording state at the start of each cycle
        state = {"acc": 0}
        states, a_seq, b_seq = [], [], []
        and_out = []
        for a, b in stimulus:
            states.append(state["acc"])
            a_seq.append(a)
            b_seq.append(b)
            outs, state = ev.step({"a": a, "b": b}, state)
            and_out.append(outs["and"])
        traces = ev.evaluate_trace({"a": a_seq, "b": b_seq}, {"acc": states})
        for cyc in range(len(stimulus)):
            got = 0
            for i in range(4):
                got |= traces[nl.outputs[f"and[{i}]"]].get(cyc) << i
            assert got == and_out[cyc]

    def test_trace_length_mismatch_rejected(self):
        ev = LogicEvaluator(small_design())
        with pytest.raises(SimulationError):
            ev.evaluate_trace({"a": [1], "b": [1, 2]}, {"acc": [0]})

    def test_signatures_from_values(self):
        nl = small_design()
        ev = LogicEvaluator(nl)
        traces = ev.evaluate_trace(
            {"a": [0xF, 0xF, 0x0], "b": [0xF, 0xF, 0xF]}, {"acc": [0, 0, 0]}
        )
        sigs = signatures_from_values(traces)
        and0 = nl.outputs["and[0]"]
        # value trace 1,1,0 -> switches only at cycle 2
        assert sigs[and0].to_bits() == [0, 0, 1]


class TestMpuTraceConsistency:
    def test_gate_level_trace_matches_behavioral(self, mpu_netlist, mpu_evaluator):
        """Drive the behavioural MPU, then re-evaluate the same stimulus
        bit-parallel at gate level; every output bit must agree."""
        beh = MpuBehavioral()
        rng = np.random.default_rng(5)
        input_trace = {name: [] for name in mpu_evaluator.input_ports()}
        state_trace = {name: [] for name in mpu_netlist.registers}
        viol_values = []
        for _ in range(70):
            inp = MpuInputs(
                in_addr=int(rng.integers(0, 1 << 16)),
                in_write=int(rng.integers(0, 2)),
                in_priv=int(rng.integers(0, 2)),
                in_valid=int(rng.integers(0, 2)),
                cfg_we=int(rng.integers(0, 2)),
                cfg_index=int(rng.integers(0, 8)),
                cfg_field=int(rng.integers(0, 3)),
                cfg_wdata=int(rng.integers(0, 1 << 16)),
            )
            for name, value in inp.as_port_dict().items():
                input_trace[name].append(value)
            for name, value in beh.get_registers().items():
                state_trace[name].append(value)
            beh.step(inp)
            viol_values.append(beh.regs["viol_q"])
        traces = mpu_evaluator.evaluate_trace(input_trace, state_trace)
        viol_d = mpu_netlist.node(
            mpu_netlist.register_dff("viol_q", 0).nid
        ).fanins[0]
        for cyc in range(70):
            # D at cycle c becomes the behavioural viol_q after the step
            assert traces[viol_d].get(cyc) == viol_values[cyc]
