"""Property tests on randomly generated netlists.

Cross-validates the levelized evaluator and the next-state computation
against a direct recursive reference evaluation, over arbitrary DAGs —
coverage the hand-built designs cannot provide.  The netlist generator
lives in ``tests/strategies.py``, shared with the conformance invariant
suite.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gatesim.logic import LogicEvaluator
from repro.netlist.cells import GateKind, eval_gate
from repro.netlist.graph import Netlist

from tests.strategies import random_netlists


def reference_eval(nl: Netlist, values_by_nid):
    """Direct recursive evaluation, memoized."""
    memo = dict(values_by_nid)

    def value(nid):
        if nid in memo:
            return memo[nid]
        node = nl.node(nid)
        result = eval_gate(node.kind, [value(f) for f in node.fanins])
        memo[nid] = result
        return result

    return value


class TestRandomCircuits:
    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_levelized_matches_recursive(self, data):
        nl = data.draw(random_netlists())
        ev = LogicEvaluator(nl)
        inputs = {
            name.split("[")[0]: data.draw(st.integers(0, 1))
            for name in nl.inputs
        }
        state = {reg: data.draw(st.integers(0, 1)) for reg in nl.registers}
        values = ev.evaluate(inputs, state)

        seeds = {}
        for name, nid in nl.inputs.items():
            seeds[nid] = inputs[name.split("[")[0]]
        for reg, bits in nl.registers.items():
            seeds[bits[0]] = state[reg]
        for node in nl.nodes:
            if node.kind is GateKind.CONST0:
                seeds[node.nid] = 0
            elif node.kind is GateKind.CONST1:
                seeds[node.nid] = 1
        ref = reference_eval(nl, seeds)
        for node in nl.nodes:
            assert int(values[node.nid]) == ref(node.nid), node

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_next_state_is_d_pin_value(self, data):
        nl = data.draw(random_netlists())
        ev = LogicEvaluator(nl)
        inputs = {
            name.split("[")[0]: data.draw(st.integers(0, 1))
            for name in nl.inputs
        }
        state = {reg: data.draw(st.integers(0, 1)) for reg in nl.registers}
        values = ev.evaluate(inputs, state)
        nxt = ev.next_state(values)
        for reg, bits in nl.registers.items():
            d_pin = nl.node(bits[0]).fanins[0]
            assert nxt[reg] == int(values[d_pin])

    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_trace_eval_matches_stepwise(self, data):
        nl = data.draw(random_netlists())
        ev = LogicEvaluator(nl)
        n_cycles = data.draw(st.integers(1, 70))
        rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
        input_names = sorted({n.split("[")[0] for n in nl.inputs})
        input_trace = {
            name: [int(b) for b in rng.integers(0, 2, n_cycles)]
            for name in input_names
        }
        state = {reg: 0 for reg in nl.registers}
        state_trace = {reg: [] for reg in nl.registers}
        out_nid = nl.outputs["out"]
        out_values = []
        for c in range(n_cycles):
            for reg in nl.registers:
                state_trace[reg].append(state[reg])
            stimulus = {name: input_trace[name][c] for name in input_names}
            values = ev.evaluate(stimulus, state)
            out_values.append(int(values[out_nid]))
            state = ev.next_state(values)
        traces = ev.evaluate_trace(input_trace, state_trace)
        for c in range(n_cycles):
            assert traces[out_nid].get(c) == out_values[c]
