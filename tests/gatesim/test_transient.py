"""Tests for transient injection, propagation, masking, and latching."""

import numpy as np
import pytest

from repro.errors import AttackModelError, SimulationError
from repro.gatesim.timing import TimingModel
from repro.gatesim.transient import (
    Pulse,
    TransientInjection,
    TransientSimulator,
    _merge_pulses,
)
from repro.hdl import Module


def straight_path_design(n_bufs=2):
    """in -> BUF^n -> q; returns (netlist, [buf ids], q id)."""
    m = Module("path")
    a = m.input("a", 1)
    q = m.register("q", 1)
    wire = a
    for _ in range(n_bufs):
        # BUF via OR(x, x) is not available; use & with const1
        wire = wire & m.const(1, 1)
    m.connect(q, wire)
    m.output("q", q)
    nl = m.finalize()
    gates = [n.nid for n in nl.nodes if n.kind.is_combinational]
    return nl, gates, nl.register_dff("q", 0).nid


class TestPulse:
    def test_overlap_semantics(self):
        p = Pulse(100.0, 50.0)
        assert p.overlaps(120, 130)
        assert p.overlaps(140, 200)
        assert not p.overlaps(150, 200)  # half-open interval
        assert not p.overlaps(0, 100)

    def test_merge_overlapping(self):
        merged = _merge_pulses([Pulse(0, 10), Pulse(5, 10), Pulse(30, 5)])
        assert len(merged) == 2
        assert merged[0].start_ps == 0 and merged[0].end_ps == 15

    def test_merge_empty(self):
        assert _merge_pulses([]) == []


class TestLatchWindow:
    def make(self, **kw):
        timing = TimingModel(
            clock_period_ps=1000.0, setup_ps=40.0, hold_ps=25.0, **kw
        )
        nl, gates, q = straight_path_design(1)
        return TransientSimulator(nl, timing), nl, gates, q

    def test_pulse_inside_window_latches(self):
        sim, nl, gates, q = self.make()
        inj = TransientInjection(gate_pulses={gates[0]: 200.0}, strike_time_ps=900.0)
        result = sim.simulate_cycle({"a": 1}, {"q": 0}, inj)
        assert ("q", 0) in result.flipped_bits
        assert result.any_fault

    def test_pulse_far_before_window_missed(self):
        sim, nl, gates, q = self.make()
        inj = TransientInjection(gate_pulses={gates[0]: 100.0}, strike_time_ps=100.0)
        result = sim.simulate_cycle({"a": 1}, {"q": 0}, inj)
        assert result.flipped_bits == set()

    def test_narrow_pulse_electrically_masked(self):
        sim, nl, gates, q = self.make(attenuation_ps=50.0, min_pulse_ps=60.0)
        inj = TransientInjection(gate_pulses={gates[0]: 80.0}, strike_time_ps=950.0)
        # 80ps pulse is attenuated to 30ps < min width when crossing a gate
        # — but a pulse at the gate directly feeding D still latches.
        result = sim.simulate_cycle({"a": 1}, {"q": 0}, inj)
        # the struck gate itself drives D: pulse present at its output
        assert ("q", 0) in result.flipped_bits

    def test_attenuation_kills_deep_propagation(self):
        timing = TimingModel(
            clock_period_ps=1000.0, attenuation_ps=100.0, min_pulse_ps=50.0
        )
        nl, gates, q = straight_path_design(4)
        sim = TransientSimulator(nl, timing)
        first_gate = min(gates)
        inj = TransientInjection(
            gate_pulses={first_gate: 120.0}, strike_time_ps=900.0
        )
        result = sim.simulate_cycle({"a": 1}, {"q": 0}, inj)
        assert result.flipped_bits == set()


class TestLogicalMasking:
    def test_blocked_side_input(self):
        """A pulse into an AND whose other input is 0 must not propagate."""
        m = Module("mask")
        a = m.input("a", 1)
        b = m.input("b", 1)
        q = m.register("q", 1)
        inner = a & m.const(1, 1)  # struck gate
        m.connect(q, inner & b)
        m.output("q", q)
        nl = m.finalize()
        struck = nl.node(nl.register_dff("q", 0).nid).fanins[0]
        inner_gate = nl.node(struck).fanins[0]
        sim = TransientSimulator(nl, TimingModel(clock_period_ps=1000.0))
        inj = TransientInjection(gate_pulses={inner_gate: 250.0}, strike_time_ps=900.0)
        masked = sim.simulate_cycle({"a": 1, "b": 0}, {"q": 0}, inj)
        assert masked.flipped_bits == set()
        passed = sim.simulate_cycle({"a": 1, "b": 1}, {"q": 0}, inj)
        assert ("q", 0) in passed.flipped_bits


class TestDirectUpsets:
    def test_struck_dff_flips_next_state(self):
        nl, gates, q = straight_path_design(1)
        sim = TransientSimulator(nl)
        inj = TransientInjection(struck_dffs=[q])
        result = sim.simulate_cycle({"a": 1}, {"q": 0}, inj)
        assert result.flipped_bits == {("q", 0)}
        # golden next state was 1; faulty is 0
        assert result.golden_next_state["q"] == 1
        assert result.faulty_next_state["q"] == 0

    def test_double_strike_cancels(self):
        nl, gates, q = straight_path_design(1)
        sim = TransientSimulator(nl)
        inj = TransientInjection(struck_dffs=[q, q])
        result = sim.simulate_cycle({"a": 1}, {"q": 0}, inj)
        assert result.flipped_bits == set()

    def test_struck_non_dff_rejected(self):
        nl, gates, q = straight_path_design(1)
        sim = TransientSimulator(nl)
        with pytest.raises(SimulationError):
            sim.simulate_cycle(
                {"a": 1}, {"q": 0}, TransientInjection(struck_dffs=[gates[0]])
            )


class TestMpuScale:
    def test_injection_on_mpu_produces_faults_sometimes(self, mpu_netlist):
        """Statistical smoke: radiating the decision cone of a live check
        must produce latched faults at a plausible rate."""
        from repro.soc.mpu import MpuBehavioral, MpuInputs

        beh = MpuBehavioral()
        # capture a live request into the pipeline registers
        beh.step(MpuInputs(in_addr=0x1050, in_write=1, in_priv=0, in_valid=1))
        state = beh.get_registers()
        sim = TransientSimulator(mpu_netlist)
        viol_d = mpu_netlist.node(
            mpu_netlist.register_dff("viol_q", 0).nid
        ).fanins[0]
        rng = np.random.default_rng(0)
        idle = MpuInputs().as_port_dict()
        n_faulty = 0
        for _ in range(40):
            inj = TransientInjection(
                gate_pulses={viol_d: 260.0},
                strike_time_ps=float(
                    rng.uniform(0, sim.timing.clock_period_ps)
                ),
            )
            result = sim.simulate_cycle(idle, state, inj)
            n_faulty += bool(result.any_fault)
        assert 0 < n_faulty < 40
