"""Property-based invariants of the transient simulator on the MPU."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gatesim.transient import TransientInjection, TransientSimulator
from repro.soc.mpu import MpuBehavioral, MpuInputs


@pytest.fixture(scope="module")
def sim(mpu_netlist):
    return TransientSimulator(mpu_netlist)


@pytest.fixture(scope="module")
def live_state():
    """MPU register state with a captured (violating) request."""
    mpu = MpuBehavioral()
    mpu.set_registers({"cfg_base0": 0, "cfg_top0": 0x0FFF, "cfg_perm0": 0b1011})
    mpu.step(MpuInputs(in_addr=0x1050, in_write=1, in_priv=0, in_valid=1))
    return mpu.get_registers()


IDLE = MpuInputs().as_port_dict()


class TestInvariants:
    def test_empty_injection_never_faults(self, sim, live_state):
        result = sim.simulate_cycle(IDLE, live_state, TransientInjection())
        assert not result.any_fault
        assert result.faulty_next_state == {}

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_flips_are_registered_bits(self, sim, live_state, mpu_netlist, seed):
        rng = np.random.default_rng(seed)
        comb = [n.nid for n in mpu_netlist.nodes if n.kind.is_combinational]
        dffs = [n.nid for n in mpu_netlist.nodes if n.is_dff]
        injection = TransientInjection(
            gate_pulses={
                int(comb[rng.integers(0, len(comb))]): float(rng.uniform(50, 300))
                for _ in range(rng.integers(1, 5))
            },
            struck_dffs=[int(dffs[rng.integers(0, len(dffs))])],
            strike_time_ps=float(rng.uniform(0, 1800)),
        )
        result = sim.simulate_cycle(IDLE, live_state, injection)
        widths = mpu_netlist.register_widths()
        for register, bit in result.flipped_bits:
            assert register in widths
            assert 0 <= bit < widths[register]

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_faulty_state_is_golden_xor_flips(self, sim, live_state, seed):
        rng = np.random.default_rng(seed)
        injection = TransientInjection(
            gate_pulses={int(rng.integers(400, 2000)): 280.0},
            strike_time_ps=float(rng.uniform(0, 1800)),
        )
        # only combinational ids are seeded; others are skipped silently
        node = sim.netlist.node(list(injection.gate_pulses)[0])
        if not node.kind.is_combinational:
            return
        result = sim.simulate_cycle(IDLE, live_state, injection)
        for register, word in result.faulty_next_state.items():
            golden = result.golden_next_state[register]
            delta = word ^ golden
            expected = 0
            for reg, bit in result.flipped_bits:
                if reg == register:
                    expected |= 1 << bit
            assert delta == expected

    def test_sub_threshold_pulses_do_nothing(self, sim, live_state, mpu_netlist):
        gate = mpu_netlist.topo_order()[0]
        injection = TransientInjection(
            gate_pulses={gate: sim.timing.min_pulse_ps - 1.0},
            strike_time_ps=1700.0,
        )
        result = sim.simulate_cycle(IDLE, live_state, injection)
        assert result.n_pulses_injected == 0

    def test_golden_next_state_matches_behavioural(self, sim, live_state):
        result = sim.simulate_cycle(IDLE, live_state, TransientInjection())
        mpu = MpuBehavioral()
        mpu.set_registers(live_state)
        mpu.step(MpuInputs())
        assert result.golden_next_state == mpu.get_registers()

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_determinism(self, sim, live_state, mpu_netlist, seed):
        rng = np.random.default_rng(seed)
        comb = [n.nid for n in mpu_netlist.nodes if n.kind.is_combinational]
        injection = TransientInjection(
            gate_pulses={int(comb[rng.integers(0, len(comb))]): 250.0},
            strike_time_ps=float(rng.uniform(0, 1800)),
        )
        a = sim.simulate_cycle(IDLE, live_state, injection)
        b = sim.simulate_cycle(IDLE, live_state, injection)
        assert a.flipped_bits == b.flipped_bits
