"""CLI tests (fast paths only; campaigns use tiny sample counts)."""

import pytest

from repro.cli import BENCHMARKS, _parse_variant, build_parser, main
from repro.soc.mpu import MpuVariant


class TestVariantParsing:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("none", MpuVariant()),
            ("parity", MpuVariant(cfg_parity=True)),
            ("dual", MpuVariant(redundancy="dual")),
            ("dual+parity", MpuVariant(redundancy="dual", cfg_parity=True)),
            ("TMR+PARITY", MpuVariant(redundancy="tmr", cfg_parity=True)),
        ],
    )
    def test_variants(self, text, expected):
        assert _parse_variant(text) == expected

    def test_bad_variant(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            _parse_variant("pentuple")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_evaluate_defaults(self):
        args = build_parser().parse_args(["evaluate"])
        assert args.benchmark == "write"
        assert args.sampler == "importance"
        assert args.samples == 1000

    def test_all_benchmarks_registered(self):
        assert set(BENCHMARKS) == {"write", "read", "dma"}


class TestCampaignParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["campaign", "run"])
        assert args.stop == "fixed"
        assert args.chunk_size == 50
        assert args.runs_dir == "runs"
        assert args.func.__name__ == "cmd_campaign_run"

    def test_adaptive_flags(self):
        args = build_parser().parse_args(
            [
                "campaign", "run", "--stop", "risk",
                "--epsilon", "0.01", "--delta", "0.1",
                "--max-samples", "5000", "--workers", "4",
            ]
        )
        assert args.stop == "risk"
        assert args.epsilon == 0.01
        assert args.max_samples == 5000

    def test_resume_requires_run_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "resume"])

    def test_status_run_id_optional(self):
        args = build_parser().parse_args(["campaign", "status"])
        assert args.run_id is None
        assert args.metrics is False

    def test_run_trace_flag(self):
        args = build_parser().parse_args(["campaign", "run", "--trace"])
        assert args.trace is True

    def test_obs_report_args(self):
        args = build_parser().parse_args(
            ["obs", "report", "abc", "--top", "5"]
        )
        assert args.run_id == "abc"
        assert args.top == 5
        assert args.func.__name__ == "cmd_obs_report"

    def test_obs_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs"])


class TestServiceParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8321
        assert args.jobs == 1
        assert args.func.__name__ == "cmd_serve"

    def test_submit_flags(self):
        args = build_parser().parse_args(
            ["submit", "--stop", "ci", "--priority", "3", "--wait",
             "--url", "http://h:1", "--json"]
        )
        assert args.stop == "ci"
        assert args.priority == 3
        assert args.wait and args.json
        assert args.url == "http://h:1"
        assert args.func.__name__ == "cmd_submit"

    def test_job_verbs_registered(self):
        for verb, func in (
            ("status", "cmd_job_status"),
            ("result", "cmd_job_result"),
            ("cancel", "cmd_job_cancel"),
        ):
            args = build_parser().parse_args([verb, "abc123"])
            assert args.job_id == "abc123"
            assert args.func.__name__ == func

    def test_campaign_json_flags(self):
        assert build_parser().parse_args(
            ["campaign", "run", "--json"]
        ).json is True
        assert build_parser().parse_args(
            ["campaign", "status", "x", "--json"]
        ).json is True
        assert build_parser().parse_args(
            ["campaign", "resume", "x", "--json"]
        ).json is True


class TestCliErrorHandling:
    def test_missing_run_is_clean_error_not_traceback(self, capsys, tmp_path):
        code = main(
            ["campaign", "status", "ghost", "--runs-dir", str(tmp_path)]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "ghost" in err and str(tmp_path) in err

    def test_corrupt_spec_names_the_path(self, capsys, tmp_path):
        from repro.campaign import CampaignSpec, RunStore

        store = RunStore.create(tmp_path, CampaignSpec(), run_id="broken")
        (store.path / "spec.json").write_text("{not json")
        code = main(
            ["campaign", "status", "broken", "--runs-dir", str(tmp_path)]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "spec.json" in err

    def test_resume_of_missing_run_is_clean(self, capsys, tmp_path):
        code = main(
            ["campaign", "resume", "ghost", "--runs-dir", str(tmp_path)]
        )
        assert code == 2
        assert "ghost" in capsys.readouterr().err

    def test_unreachable_service_is_clean(self, capsys):
        code = main(
            ["status", "job1", "--url", "http://127.0.0.1:1"]
        )
        assert code == 2
        assert "cannot reach" in capsys.readouterr().err


class TestCampaignJson:
    def _interrupted_store(self, tmp_path):
        from repro.campaign import CampaignSpec, RunStore

        store = RunStore.create(tmp_path, CampaignSpec(), run_id="frozen")
        store.write_checkpoint(
            {"status": "interrupted", "n_samples": 40, "n_success": 10,
             "ssf": 0.25}
        )
        return store

    def test_status_json_single_run(self, capsys, tmp_path):
        import json

        self._interrupted_store(tmp_path)
        code = main(
            ["campaign", "status", "frozen", "--runs-dir", str(tmp_path),
             "--json"]
        )
        # Interrupted runs exit nonzero so scripts notice failures.
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["run_id"] == "frozen"
        assert payload["status"] == "interrupted"
        assert payload["n_samples"] == 40
        assert len(payload["spec_hash"]) == 64
        assert payload["spec"]["benchmark"] == "write"

    def test_status_json_listing(self, capsys, tmp_path):
        import json

        self._interrupted_store(tmp_path)
        code = main(
            ["campaign", "status", "--runs-dir", str(tmp_path), "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"][0]["run_id"] == "frozen"

    def test_status_json_empty_dir(self, capsys, tmp_path):
        import json

        code = main(
            ["campaign", "status", "--runs-dir", str(tmp_path), "--json"]
        )
        assert code == 0
        assert json.loads(capsys.readouterr().out) == {"runs": []}


class TestCampaignCommands:
    def test_status_empty_runs_dir(self, capsys, tmp_path):
        code = main(
            ["campaign", "status", "--runs-dir", str(tmp_path / "none")]
        )
        assert code == 0
        assert "no campaign runs" in capsys.readouterr().out

    def _store_with_metrics(self, tmp_path):
        """A finished-looking run directory built without an engine."""
        from repro.campaign import CampaignSpec, RunStore
        from repro.obs import MetricsRegistry, SECONDS_BUCKETS

        store = RunStore.create(tmp_path, CampaignSpec(), run_id="fake")
        registry = MetricsRegistry()
        registry.counter("engine_samples_total").inc(10)
        registry.counter("engine_outcomes_total", category="masked").inc(7)
        registry.counter("engine_outcomes_total", category="needs_rtl").inc(3)
        registry.counter("engine_funnel_total", stage="sampled").inc(10)
        registry.counter("engine_funnel_total", stage="latched").inc(3)
        registry.histogram(
            "engine_stage_seconds", SECONDS_BUCKETS, stage="transient"
        ).observe(0.02)
        registry.gauge("campaign_ssf").set(0.3)
        store.write_metrics(registry)
        return store

    def test_obs_report_renders_from_metrics_file(self, capsys, tmp_path):
        self._store_with_metrics(tmp_path)
        code = main(["obs", "report", "fake", "--runs-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Stage-time breakdown" in out
        assert "Masking funnel" in out
        assert "transient" in out
        assert "needs_rtl" in out

    def test_obs_report_without_metrics_fails(self, capsys, tmp_path):
        from repro.campaign import CampaignSpec, RunStore

        RunStore.create(tmp_path, CampaignSpec(), run_id="bare")
        code = main(["obs", "report", "bare", "--runs-dir", str(tmp_path)])
        assert code == 1
        assert "no metrics.jsonl" in capsys.readouterr().err

    def test_status_metrics_renders_breakdown(self, capsys, tmp_path):
        self._store_with_metrics(tmp_path)
        code = main(
            ["campaign", "status", "fake", "--runs-dir", str(tmp_path),
             "--metrics"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Stage-time breakdown" in out
        assert "Outcome categories" in out

    def test_status_metrics_without_export(self, capsys, tmp_path):
        from repro.campaign import CampaignSpec, RunStore

        RunStore.create(tmp_path, CampaignSpec(), run_id="bare")
        code = main(
            ["campaign", "status", "bare", "--runs-dir", str(tmp_path),
             "--metrics"]
        )
        assert code == 0
        assert "no metrics exported" in capsys.readouterr().out

    @pytest.mark.slow
    def test_campaign_run_then_status(self, capsys, tmp_path):
        runs = str(tmp_path / "runs")
        code = main(
            [
                "campaign", "run", "--benchmark", "write",
                "-n", "20", "--window", "5", "--sampler", "random",
                "--chunk-size", "10", "--runs-dir", runs,
                "--run-id", "clitest",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Campaign" in out
        assert "clitest" in out

        assert main(["campaign", "status", "--runs-dir", runs]) == 0
        listing = capsys.readouterr().out
        assert "clitest" in listing and "complete" in listing

        assert main(
            ["campaign", "status", "clitest", "--runs-dir", runs]
        ) == 0
        detail = capsys.readouterr().out
        assert "complete" in detail
        assert "20" in detail

        # The run exported its merged metrics; both metric surfaces
        # render from that file alone.
        import pathlib

        assert (pathlib.Path(runs) / "clitest" / "metrics.jsonl").exists()
        assert main(
            ["campaign", "status", "clitest", "--runs-dir", runs,
             "--metrics"]
        ) == 0
        assert "Stage-time breakdown" in capsys.readouterr().out

        assert main(["obs", "report", "clitest", "--runs-dir", runs]) == 0
        report = capsys.readouterr().out
        assert "Masking funnel" in report
        assert "slowest samples" in report


class TestCommands:
    def test_info_runs(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "flip-flops" in out

    def test_info_with_variant(self, capsys):
        assert main(["info", "--variant", "tmr+parity"]) == 0
        assert "tmr+parity" in capsys.readouterr().out

    @pytest.mark.slow
    def test_evaluate_small_campaign(self, capsys):
        code = main(
            [
                "evaluate",
                "--benchmark",
                "write",
                "-n",
                "30",
                "--window",
                "5",
                "--sampler",
                "random",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "SSF" in out

    def test_export_verilog(self, capsys, tmp_path):
        out = str(tmp_path / "mpu.v")
        assert main(["export-verilog", "--out", out, "--module", "top"]) == 0
        text = (tmp_path / "mpu.v").read_text()
        assert text.startswith("module top (")
        assert "endmodule" in text

    def test_export_verilog_variant(self, capsys, tmp_path):
        out = str(tmp_path / "mpu_parity.v")
        assert main(["export-verilog", "--variant", "parity", "--out", out]) == 0
        assert "cfg_base0_par" in (tmp_path / "mpu_parity.v").read_text()

    @pytest.mark.slow
    def test_characterize_then_cached_evaluate(self, capsys, tmp_path):
        cache = str(tmp_path / "c.json")
        assert main(["characterize", "--benchmark", "write", "--out", cache]) == 0
        assert main(
            [
                "evaluate",
                "--benchmark",
                "write",
                "-n",
                "20",
                "--window",
                "5",
                "--charac-cache",
                cache,
            ]
        ) == 0

    @pytest.mark.slow
    def test_harden_command(self, capsys):
        assert main(["harden", "-n", "60", "--window", "6"]) == 0
        out = capsys.readouterr().out
        assert "Selective hardening" in out
        assert "area overhead" in out

    @pytest.mark.slow
    def test_enumerate_command(self, capsys):
        assert main(["enumerate", "--window", "4"]) == 0
        out = capsys.readouterr().out
        assert "exact SSF" in out
        assert "cfg_top0" in out

    @pytest.mark.slow
    def test_evaluate_with_variant_and_impact(self, capsys):
        code = main(
            [
                "evaluate", "--variant", "parity", "-n", "25",
                "--window", "4", "--sampler", "cone", "--impact-cycles", "2",
            ]
        )
        assert code == 0
        assert "none+parity" in capsys.readouterr().out
