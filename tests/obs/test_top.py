"""The ``repro top`` dashboard: pure rendering, event folding, and the
poll loop against a stub client (no terminal, no service, no clock)."""

import io

from repro.obs.top import (
    ANSI_REPAINT,
    TopApp,
    TopState,
    render,
    render_plain_line,
    supports_ansi,
)


def progress(n_samples, ssf=0.3, seq=0):
    return {"seq": seq,
            "event": {"type": "progress", "n_samples": n_samples,
                      "ssf": ssf}}


class StubClient:
    """Scripted service: each tick advances one step toward done."""

    def __init__(self, n_ticks=3, with_straggler=False):
        self.n_ticks = n_ticks
        self.with_straggler = with_straggler
        self.tick = 0

    def status(self, job_id):
        done = self.tick >= self.n_ticks
        return {"state": "done" if done else "running", "run_id": "r1",
                "n_samples_live": 50 * self.tick}

    def fleet_status(self):
        return {
            "dispatch": "fleet",
            "workers": [
                {"worker": "w0", "chunks_completed": self.tick,
                 "samples_total": 50 * self.tick,
                 "samples_per_s": 25.0, "last_seen_s": 0.1},
                {"worker": "w1", "chunks_completed": 0,
                 "samples_total": 0,
                 "samples_per_s": 0.0, "last_seen_s": 4.2},
            ],
            "runs": [{"job_id": "j1", "run_id": "r1",
                      "chunks": {"done": self.tick, "leased": 1,
                                 "pending": max(0, 3 - self.tick),
                                 "total": 4}}],
        }

    def events(self, job_id, after=0, timeout_s=1.0):
        self.tick += 1
        events = [progress(50 * self.tick, seq=after)]
        if self.with_straggler and self.tick == 2:
            events.append(
                {"seq": after + 1,
                 "event": {"type": "straggler", "worker": "w1",
                           "roundtrip_s": 9.5}})
        end = self.tick >= self.n_ticks
        if end:
            events.append({"seq": after + len(events),
                           "event": {"type": "end"}})
        return {"events": events, "next_after": after + len(events),
                "end": end}


class TestTopState:
    def test_folds_progress_and_status(self):
        state = TopState("j1")
        state.apply_status({"state": "running", "run_id": "r1"})
        state.apply_events(
            {"events": [progress(100, ssf=0.25)], "next_after": 1,
             "end": False})
        assert state.run_id == "r1"
        assert state.n_samples == 100
        assert state.ssf == 0.25
        assert state.last_event_seq == 1
        lo, hi = state.ci()
        assert lo < 0.25 < hi

    def test_samples_never_regress(self):
        """A stale fleet snapshot after a fresher event can't move the
        counter backwards."""
        state = TopState("j1")
        state.apply_events(
            {"events": [progress(200)], "next_after": 1, "end": False})
        state.apply_status({"state": "running", "n_samples_live": 50})
        assert state.n_samples == 200

    def test_straggler_and_end_events(self):
        state = TopState("j1")
        state.apply_events({
            "events": [
                {"seq": 0, "event": {"type": "straggler", "worker": "w1",
                                     "roundtrip_s": 9.5}},
                {"seq": 1, "event": {"type": "end"}},
            ],
            "next_after": 2, "end": True})
        assert state.stragglers == {"w1": 9.5}
        assert state.ended

    def test_fleet_snapshot_scoped_to_this_job(self):
        state = TopState("j1")
        state.apply_fleet({
            "workers": [{"worker": "w0"}],
            "runs": [
                {"job_id": "other", "chunks": {"done": 9}},
                {"job_id": "j1", "chunks": {"done": 2, "total": 4}},
            ]})
        assert state.chunks == {"done": 2, "total": 4}


class TestRender:
    def _state(self):
        state = TopState("j1")
        state.apply_status({"state": "running", "run_id": "r1"})
        state.apply_fleet(StubClient().fleet_status())
        state.apply_events(
            {"events": [progress(100)], "next_after": 1, "end": False})
        state.stragglers["w1"] = 9.5
        return state

    def test_full_frame_contents(self):
        text = render(self._state())
        assert "job j1" in text
        assert "run r1" in text
        assert "SSF: 0.30000" in text
        assert "95% CI" in text
        assert "w0" in text and "w1" in text
        assert "STRAGGLER (9.50s)" in text
        assert "[" in text  # progress bar

    def test_no_escape_codes_in_frame(self):
        assert "\x1b" not in render(self._state())

    def test_plain_line_is_one_line(self):
        line = render_plain_line(self._state())
        assert "\n" not in line
        assert "ssf=0.30000" in line
        assert "stragglers=w1" in line

    def test_renders_before_any_data(self):
        state = TopState("j1")
        assert "no workers attached" in render(state)
        assert "[unknown]" in render_plain_line(state)


class TestSupportsAnsi:
    def test_non_tty_stream(self):
        assert not supports_ansi(io.StringIO())

    def test_dumb_terminal(self, monkeypatch):
        class Tty(io.StringIO):
            def isatty(self):
                return True

        monkeypatch.setenv("TERM", "dumb")
        assert not supports_ansi(Tty())
        monkeypatch.setenv("TERM", "xterm-256color")
        assert supports_ansi(Tty())


class TestTopApp:
    def test_plain_mode_appends_and_exits_on_end(self):
        out = io.StringIO()
        app = TopApp(StubClient(n_ticks=3), "j1", out=out, ansi=False,
                     sleep=lambda s: None)
        state = app.run()
        assert state.ended
        lines = out.getvalue().strip().splitlines()
        assert len(lines) == 3
        assert lines[-1].startswith("[done]")
        assert "\x1b" not in out.getvalue()

    def test_ansi_mode_repaints_full_frames(self):
        out = io.StringIO()
        app = TopApp(StubClient(n_ticks=2), "j1", out=out, ansi=True,
                     sleep=lambda s: None)
        app.run()
        assert out.getvalue().count(ANSI_REPAINT) == 2
        assert "repro top — job j1" in out.getvalue()

    def test_exits_on_terminal_status_without_end_event(self):
        """A service restart can lose the event buffer; the terminal
        job state is the fallback exit condition."""

        class NoEndClient(StubClient):
            def events(self, job_id, after=0, timeout_s=1.0):
                self.tick += 1
                return {"events": [], "next_after": after, "end": False}

        app = TopApp(NoEndClient(n_ticks=2), "j1", out=io.StringIO(),
                     ansi=False, sleep=lambda s: None)
        state = app.run()
        assert state.state == "done"
        assert not state.ended

    def test_straggler_flag_reaches_the_frame(self):
        out = io.StringIO()
        app = TopApp(StubClient(n_ticks=3, with_straggler=True), "j1",
                     out=out, ansi=False, sleep=lambda s: None)
        app.run()
        assert "stragglers=w1" in out.getvalue()

    def test_survives_non_fleet_service(self):
        """fleet_status 409s on a local-dispatch service; top still
        renders off the event stream."""

        class LocalClient(StubClient):
            def fleet_status(self):
                raise RuntimeError("not in fleet mode")

        app = TopApp(LocalClient(n_ticks=2), "j1", out=io.StringIO(),
                     ansi=False, sleep=lambda s: None)
        state = app.run()
        assert state.ended
        assert state.workers == []

    def test_max_ticks_bounds_a_stuck_run(self):
        class StuckClient(StubClient):
            def status(self, job_id):
                return {"state": "running", "run_id": "r1"}

            def events(self, job_id, after=0, timeout_s=1.0):
                return {"events": [], "next_after": after, "end": False}

        app = TopApp(StuckClient(), "j1", out=io.StringIO(), ansi=False,
                     sleep=lambda s: None, max_ticks=4)
        state = app.run()
        assert state.ticks == 4
