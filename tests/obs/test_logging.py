"""One-time warning behaviour of the shared obs logger."""

import logging

import pytest

from repro.obs import get_logger, reset_warn_once, warn_once


@pytest.fixture(autouse=True)
def _fresh_warnings():
    reset_warn_once()
    yield
    reset_warn_once()


class TestWarnOnce:
    def test_fires_exactly_once_per_key(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            assert warn_once("k1", "configuration hazard") is True
            assert warn_once("k1", "configuration hazard") is False
        assert caplog.text.count("configuration hazard") == 1

    def test_distinct_keys_both_fire(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            assert warn_once("a", "msg a")
            assert warn_once("b", "msg b")
        assert "msg a" in caplog.text and "msg b" in caplog.text

    def test_reset_allows_refire(self):
        assert warn_once("k", "m")
        reset_warn_once()
        assert warn_once("k", "m")

    def test_logger_namespace(self):
        assert get_logger().name == "repro.obs"
        assert get_logger("engine").name == "repro.obs.engine"
