"""One-time warning behaviour of the shared obs logger, plus the
bounded structured-record buffer fleet workers ship telemetry through."""

import logging
import threading

import pytest

from repro.obs import LogBuffer, get_logger, reset_warn_once, warn_once


@pytest.fixture(autouse=True)
def _fresh_warnings():
    reset_warn_once()
    yield
    reset_warn_once()


class TestWarnOnce:
    def test_fires_exactly_once_per_key(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            assert warn_once("k1", "configuration hazard") is True
            assert warn_once("k1", "configuration hazard") is False
        assert caplog.text.count("configuration hazard") == 1

    def test_distinct_keys_both_fire(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            assert warn_once("a", "msg a")
            assert warn_once("b", "msg b")
        assert "msg a" in caplog.text and "msg b" in caplog.text

    def test_reset_allows_refire(self):
        assert warn_once("k", "m")
        reset_warn_once()
        assert warn_once("k", "m")

    def test_logger_namespace(self):
        assert get_logger().name == "repro.obs"
        assert get_logger("engine").name == "repro.obs.engine"

    def test_concurrent_same_key_fires_exactly_once(self):
        """Racing callers must not both claim the first firing: the
        check-then-add on the warned-key set is atomic."""
        fired = []
        barrier = threading.Barrier(8)

        def racer():
            barrier.wait()
            if warn_once("race-key", "concurrent hazard"):
                fired.append(threading.current_thread().name)

        threads = [threading.Thread(target=racer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(fired) == 1


class TestLogBuffer:
    def test_records_carry_bound_context(self):
        buf = LogBuffer()
        buf.bind(run_id="r1", worker="w0")
        buf.info("leased", chunk=3)
        (record,) = buf.records()
        assert record["message"] == "leased"
        assert record["level"] == "info"
        assert record["run_id"] == "r1"
        assert record["worker"] == "w0"
        assert record["chunk"] == 3
        assert record["t"] > 0

    def test_unbind_removes_context(self):
        buf = LogBuffer()
        buf.bind(lease_id="L1", chunk=0)
        buf.unbind("lease_id")
        buf.warning("lost lease")
        (record,) = buf.records()
        assert "lease_id" not in record
        assert record["chunk"] == 0

    def test_capacity_drops_oldest_and_counts(self):
        buf = LogBuffer(capacity=2)
        for i in range(5):
            buf.info("m", i=i)
        assert len(buf) == 2
        assert buf.n_dropped == 3
        assert [r["i"] for r in buf.records()] == [3, 4]

    def test_drain_empties_the_buffer(self):
        buf = LogBuffer()
        buf.error("boom")
        drained = buf.drain()
        assert len(drained) == 1
        assert buf.records() == []
        assert buf.drain() == []

    def test_mirrors_to_stdlib_logging(self, caplog):
        buf = LogBuffer(logger_name="fleet.worker")
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            buf.warning("lease lost", chunk=2)
        assert "lease lost" in caplog.text
