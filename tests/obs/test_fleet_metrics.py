"""Fleet SLO metric helpers: quantile gauges, per-worker series
lifecycle, and straggler/telemetry accounting."""

from repro.obs.fleet_metrics import (
    FLEET_LEASE_WAIT,
    FLEET_LOGS_SHIPPED,
    FLEET_QUEUE_WAIT,
    FLEET_ROUNDTRIP,
    FLEET_SPANS_SHIPPED,
    FLEET_STRAGGLERS,
    observe_lease_wait,
    observe_queue_wait,
    observe_roundtrip,
    record_straggler,
    record_telemetry_shipped,
    remove_worker_series,
    update_worker_rate,
)
from repro.obs.metrics import MetricsRegistry, deterministic_view


class TestHistogramQuantile:
    def test_interpolates_within_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", (1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.5, 3.0):
            hist.observe(value)
        # rank(0.5) = 2 → falls in the (1, 2] bucket.
        assert 1.0 <= hist.quantile(0.5) <= 2.0
        assert hist.quantile(0.0) <= hist.quantile(1.0)

    def test_empty_histogram_is_zero(self):
        hist = MetricsRegistry().histogram("h", (1.0, 2.0))
        assert hist.quantile(0.5) == 0.0

    def test_overflow_clamps_to_last_edge(self):
        hist = MetricsRegistry().histogram("h", (1.0, 2.0))
        hist.observe(100.0)
        assert hist.quantile(0.99) == 2.0


class TestSloObservations:
    def test_quantile_gauges_track_histogram(self):
        registry = MetricsRegistry()
        for seconds in (0.01, 0.02, 0.05):
            observe_roundtrip(registry, "w0", seconds)
        text = registry.to_prometheus()
        assert f"{FLEET_ROUNDTRIP}_p50{{worker=\"w0\"}}" in text
        assert f"{FLEET_ROUNDTRIP}_p99{{worker=\"w0\"}}" in text
        p50 = registry.gauge(
            FLEET_ROUNDTRIP + "_p50", deterministic=False, worker="w0"
        ).value
        p99 = registry.gauge(
            FLEET_ROUNDTRIP + "_p99", deterministic=False, worker="w0"
        ).value
        assert 0.0 < p50 <= p99

    def test_lease_wait_is_per_worker(self):
        registry = MetricsRegistry()
        observe_lease_wait(registry, "w0", 0.1)
        observe_lease_wait(registry, "w1", 0.2)
        text = registry.to_prometheus()
        assert f"{FLEET_LEASE_WAIT}_p50{{worker=\"w0\"}}" in text
        assert f"{FLEET_LEASE_WAIT}_p50{{worker=\"w1\"}}" in text

    def test_queue_wait_is_fleet_wide(self):
        registry = MetricsRegistry()
        observe_queue_wait(registry, 0.3)
        text = registry.to_prometheus()
        assert f"{FLEET_QUEUE_WAIT}_p50 " in text
        assert "worker=" not in text

    def test_all_slo_series_are_non_deterministic(self):
        """Wall-clock SLOs can never leak into the parity-checked view."""
        registry = MetricsRegistry()
        observe_roundtrip(registry, "w0", 0.5)
        observe_lease_wait(registry, "w0", 0.1)
        observe_queue_wait(registry, 0.2)
        record_straggler(registry, "w0")
        record_telemetry_shipped(registry, 3, 2)
        assert deterministic_view(registry.snapshot()) == []


class TestWorkerSeriesLifecycle:
    def test_remove_worker_series_drops_everything(self):
        registry = MetricsRegistry()
        update_worker_rate(registry, "w0", 120.0)
        observe_lease_wait(registry, "w0", 0.1)
        observe_roundtrip(registry, "w0", 0.5)
        record_straggler(registry, "w0")
        assert 'worker="w0"' in registry.to_prometheus()
        remove_worker_series(registry, "w0")
        assert 'worker="w0"' not in registry.to_prometheus()

    def test_remove_is_scoped_to_one_worker(self):
        registry = MetricsRegistry()
        for worker in ("w0", "w1"):
            observe_roundtrip(registry, worker, 0.5)
            record_straggler(registry, worker)
        remove_worker_series(registry, "w0")
        text = registry.to_prometheus()
        assert 'worker="w0"' not in text
        assert 'worker="w1"' in text


class TestTelemetryAccounting:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        record_telemetry_shipped(registry, 3, 2)
        record_telemetry_shipped(registry, 1, 0)
        assert registry.counter(
            FLEET_SPANS_SHIPPED, deterministic=False
        ).value == 4
        assert registry.counter(
            FLEET_LOGS_SHIPPED, deterministic=False
        ).value == 2

    def test_zero_shipments_create_no_series(self):
        registry = MetricsRegistry()
        record_telemetry_shipped(registry, 0, 0)
        text = registry.to_prometheus()
        assert FLEET_SPANS_SHIPPED not in text
        assert FLEET_LOGS_SHIPPED not in text

    def test_straggler_counter_is_monotonic_per_worker(self):
        registry = MetricsRegistry()
        record_straggler(registry, "w7")
        record_straggler(registry, "w7")
        assert registry.counter(
            FLEET_STRAGGLERS, deterministic=False, worker="w7"
        ).value == 2
