"""Report rendering from serialized snapshots — no live registry, no
engine, just the ``metrics.jsonl`` contract."""

import pytest

from repro.attack.spec import AttackSample
from repro.core.results import OutcomeCategory, SampleRecord
from repro.obs import (
    FUNNEL_STAGES,
    MetricsRegistry,
    load_metrics_jsonl,
    masking_funnel,
    metrics_from_records,
    observe_timing,
    outcome_rates,
    render_report,
    slowest_samples,
    stage_breakdown,
)


def make_record(e, category, n_bits=0, n_injected=0, analytical=False):
    return SampleRecord(
        sample=AttackSample(t=5, centre=10, radius_um=5.0, weight=1.0),
        e=e,
        category=category,
        flipped_bits=frozenset(("reg", i) for i in range(n_bits)),
        injection_cycle=5,
        n_pulses_injected=n_injected,
        n_pulses_latched=min(n_bits, n_injected),
        analytical=analytical,
    )


RECORDS = [
    make_record(0, OutcomeCategory.MASKED),
    make_record(0, OutcomeCategory.MASKED, n_injected=2),
    make_record(0, OutcomeCategory.MEMORY_ONLY, n_bits=1, n_injected=3,
                analytical=True),
    make_record(1, OutcomeCategory.NEEDS_RTL, n_bits=4, n_injected=5),
    make_record(0, OutcomeCategory.OUT_OF_RANGE),
]


def snapshot_with_timings():
    registry = metrics_from_records(RECORDS)
    for i, record in enumerate(RECORDS):
        observe_timing(
            registry,
            record,
            {"restart": 1e-3, "transient": 4e-3},
            5e-3 + i * 1e-3,
        )
    return registry.snapshot()


class TestAggregations:
    def test_masking_funnel_counts_and_order(self):
        funnel = masking_funnel(snapshot_with_timings())
        assert [stage for stage, _ in funnel] == list(FUNNEL_STAGES)
        counts = dict(funnel)
        assert counts["sampled"] == 5
        assert counts["in_window"] == 4   # one OUT_OF_RANGE
        assert counts["injected"] == 3
        assert counts["latched"] == 2
        assert counts["memory_only"] == 1
        assert counts["needs_rtl"] == 1
        assert counts["success"] == 1

    def test_outcome_rates_sorted_by_count(self):
        rows = outcome_rates(snapshot_with_timings())
        assert rows[0][0] == "masked"
        assert rows[0][1] == 2
        assert rows[0][2] == pytest.approx(0.4)
        assert sum(count for _, count, _ in rows) == 5

    def test_stage_breakdown_shares_sum_to_one(self):
        rows = stage_breakdown(snapshot_with_timings())
        assert {row["stage"] for row in rows} == {"restart", "transient"}
        assert rows[0]["stage"] == "transient"  # dominant stage first
        assert sum(row["share"] for row in rows) == pytest.approx(1.0)
        assert rows[0]["mean_s"] == pytest.approx(4e-3)

    def test_slowest_samples_descending(self):
        slowest = slowest_samples(snapshot_with_timings(), top_n=3)
        values = [item["value"] for item in slowest]
        assert values == sorted(values, reverse=True)
        assert len(slowest) == 3

    def test_timingless_snapshot_degrades_gracefully(self):
        snapshot = metrics_from_records(RECORDS).snapshot()
        assert stage_breakdown(snapshot) == []
        assert slowest_samples(snapshot) == []
        assert masking_funnel(snapshot)[0] == ("sampled", 5)


class TestRenderReport:
    def test_renders_every_section(self):
        text = render_report(snapshot_with_timings(), title="Run report: x")
        assert "Run report: x" in text
        assert "Stage-time breakdown" in text
        assert "Masking funnel" in text
        assert "Outcome categories" in text
        assert "slowest samples" in text
        assert "transient" in text

    def test_renders_from_jsonl_file_alone(self, tmp_path):
        """The acceptance property: the report needs nothing but the
        exported metrics.jsonl."""
        registry = MetricsRegistry.from_snapshot(snapshot_with_timings())
        path = tmp_path / "metrics.jsonl"
        path.write_text(registry.to_jsonl())
        text = render_report(load_metrics_jsonl(path))
        assert "Masking funnel" in text
        assert "needs_rtl" in text
