"""Tracer and stage-clock tests: no-op default, span recording, bounded
buffer, Chrome export."""

import time

from repro.obs import (
    NULL_CLOCK,
    NULL_TRACER,
    StageClock,
    Tracer,
)


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("anything", chunk=3) as span:
            span.set(more=1)
        NULL_TRACER.add_event("x", 0.0, 1.0)
        NULL_TRACER.add_laps([("draw", 0.0, 1.0)])

    def test_null_clock_records_nothing(self):
        assert NULL_CLOCK.active is False
        NULL_CLOCK.lap("draw")


class TestTracer:
    def test_span_records_duration_and_attrs(self):
        tracer = Tracer()
        with tracer.span("work", chunk=2) as span:
            span.set(extra="yes")
            time.sleep(0.001)
        (event,) = tracer.events
        assert event.name == "work"
        assert event.duration_s >= 0.001
        assert event.attrs == {"chunk": 2, "extra": "yes"}

    def test_buffer_bounded_with_drop_count(self):
        tracer = Tracer(max_events=2)
        for i in range(5):
            tracer.add_event("e", float(i), 0.1)
        assert len(tracer.events) == 2
        assert tracer.n_dropped == 3

    def test_add_laps_expands_to_events(self):
        tracer = Tracer()
        tracer.add_laps(
            [("draw", 0.0, 0.5), ("restart", 0.5, 0.25)], sample=7
        )
        assert [e.name for e in tracer.events] == ["draw", "restart"]
        assert all(e.attrs == {"sample": 7} for e in tracer.events)

    def test_chrome_export_shape(self):
        tracer = Tracer()
        tracer.add_event("stage", 1.0, 0.5, chunk=0)
        chrome = tracer.to_chrome(pid=42, tid=1)
        (event,) = chrome["traceEvents"]
        assert event == {
            "name": "stage",
            "ph": "X",
            "ts": 1_000_000.0,
            "dur": 500_000.0,
            "pid": 42,
            "tid": 1,
            "args": {"chunk": 0},
        }
        assert chrome["otherData"]["n_dropped"] == 0
        assert chrome["displayTimeUnit"] == "ms"


class TestStageClock:
    def test_laps_partition_elapsed_time(self):
        clock = StageClock()
        time.sleep(0.001)
        clock.lap("draw")
        time.sleep(0.002)
        clock.lap("transient")
        time.sleep(0.001)
        clock.lap("transient")
        totals = clock.stage_totals()
        assert set(totals) == {"draw", "transient"}
        assert totals["transient"] >= 0.003
        assert clock.total_seconds() == sum(totals.values())
        # Laps are contiguous: each starts where the previous ended.
        for (_, s0, d0), (_, s1, _) in zip(clock.laps, clock.laps[1:]):
            assert s1 == s0 + d0
