"""Tracer and stage-clock tests: no-op default, span recording, bounded
buffer, Chrome export, and the cross-process merge helpers fleet
telemetry is built on."""

import logging
import time

import pytest

from repro.obs import (
    NULL_CLOCK,
    NULL_TRACER,
    MetricsRegistry,
    SpanEvent,
    StageClock,
    Tracer,
    reset_warn_once,
)
from repro.obs.tracing import (
    chrome_instant,
    merge_chrome_trace,
    wall_offset,
)


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("anything", chunk=3) as span:
            span.set(more=1)
        NULL_TRACER.add_event("x", 0.0, 1.0)
        NULL_TRACER.add_laps([("draw", 0.0, 1.0)])

    def test_null_clock_records_nothing(self):
        assert NULL_CLOCK.active is False
        NULL_CLOCK.lap("draw")


class TestTracer:
    def test_span_records_duration_and_attrs(self):
        tracer = Tracer()
        with tracer.span("work", chunk=2) as span:
            span.set(extra="yes")
            time.sleep(0.001)
        (event,) = tracer.events
        assert event.name == "work"
        assert event.duration_s >= 0.001
        assert event.attrs == {"chunk": 2, "extra": "yes"}

    def test_buffer_bounded_with_drop_count(self):
        tracer = Tracer(max_events=2)
        for i in range(5):
            tracer.add_event("e", float(i), 0.1)
        assert len(tracer.events) == 2
        assert tracer.n_dropped == 3

    def test_add_laps_expands_to_events(self):
        tracer = Tracer()
        tracer.add_laps(
            [("draw", 0.0, 0.5), ("restart", 0.5, 0.25)], sample=7
        )
        assert [e.name for e in tracer.events] == ["draw", "restart"]
        assert all(e.attrs == {"sample": 7} for e in tracer.events)

    def test_chrome_export_shape(self):
        tracer = Tracer()
        tracer.add_event("stage", 1.0, 0.5, chunk=0)
        chrome = tracer.to_chrome(pid=42, tid=1)
        (event,) = chrome["traceEvents"]
        assert event == {
            "name": "stage",
            "ph": "X",
            "ts": 1_000_000.0,
            "dur": 500_000.0,
            "pid": 42,
            "tid": 1,
            "args": {"chunk": 0},
        }
        assert chrome["otherData"]["n_dropped"] == 0
        assert chrome["displayTimeUnit"] == "ms"

    def test_drop_surfaces_metric_and_one_time_warning(self, caplog):
        reset_warn_once()
        registry = MetricsRegistry()
        tracer = Tracer(max_events=1, metrics=registry)
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            for i in range(4):
                tracer.add_event("e", float(i), 0.1)
        assert tracer.n_dropped == 3
        counter = registry.counter(
            "tracer_events_dropped", deterministic=False
        )
        assert counter.value == 3
        assert not counter.deterministic
        assert caplog.text.count("tracer buffer full") == 1

    def test_export_spans_normalizes_to_wall_clock(self):
        tracer = Tracer()
        start = time.perf_counter()
        tracer.add_event("work", start, 0.5, chunk=1)
        (span,) = tracer.export_spans()
        # Shipped start must be on the wall clock (epoch seconds), not
        # the process-local perf_counter origin.
        assert abs(span["start_s"] - (start + wall_offset())) < 0.05
        assert span["duration_s"] == 0.5
        assert span["attrs"] == {"chunk": 1}
        # Round-trips through the shipping format.
        assert SpanEvent.from_dict(span).name == "work"


class TestMergedTrace:
    def test_lanes_get_named_metadata_and_synthetic_pids(self):
        lanes = [
            {"pid": 2, "tid": 0, "name": "worker w0",
             "spans": [{"name": "chunk.evaluate", "start_s": 1.0,
                        "duration_s": 0.2, "attrs": {"chunk": 0}}]},
            {"pid": 3, "tid": 0, "name": "worker w1", "spans": []},
        ]
        trace = merge_chrome_trace(lanes, n_dropped=2)
        meta = {
            (e["pid"], e["name"]): e["args"]["name"]
            for e in trace["traceEvents"] if e["ph"] == "M"
        }
        assert meta[(2, "process_name")] == "worker w0"
        assert meta[(3, "process_name")] == "worker w1"
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert [(s["name"], s["pid"]) for s in spans] == [
            ("chunk.evaluate", 2)
        ]
        assert trace["otherData"]["n_dropped"] == 2

    def test_instants_ride_along(self):
        instant = chrome_instant("lease.grant", 1.5, 2, chunk=4)
        assert instant["ph"] == "i"
        assert instant["s"] == "t"
        assert instant["ts"] == pytest.approx(1.5e6)
        trace = merge_chrome_trace([], [instant])
        assert trace["traceEvents"] == [instant]


class TestStageClock:
    def test_laps_partition_elapsed_time(self):
        clock = StageClock()
        time.sleep(0.001)
        clock.lap("draw")
        time.sleep(0.002)
        clock.lap("transient")
        time.sleep(0.001)
        clock.lap("transient")
        totals = clock.stage_totals()
        assert set(totals) == {"draw", "transient"}
        assert totals["transient"] >= 0.003
        assert clock.total_seconds() == sum(totals.values())
        # Laps are contiguous: each starts where the previous ended.
        for (_, s0, d0), (_, s1, _) in zip(clock.laps, clock.laps[1:]):
            assert s1 == s0 + d0
