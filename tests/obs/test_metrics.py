"""Unit tests for the metrics registry: collector semantics, exact
shard merging, deterministic flags, and the jsonl/Prometheus exporters."""

import json

import numpy as np
import pytest

from repro.obs import (
    BIT_COUNT_BUCKETS,
    MetricsRegistry,
    SECONDS_BUCKETS,
    deterministic_view,
)


class TestCollectors:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("hits_total").inc()
        registry.counter("hits_total").inc(4)
        assert registry.value("hits_total") == 5

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("hits_total").inc(-1)

    def test_labels_key_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("outcomes_total", category="masked").inc(2)
        registry.counter("outcomes_total", category="needs_rtl").inc(3)
        assert registry.value("outcomes_total", category="masked") == 2
        assert registry.value("outcomes_total", category="needs_rtl") == 3

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(1.0)
        gauge.set(7.0)
        assert registry.value("depth") == 7.0

    def test_histogram_binning_with_overflow(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency", edges=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            hist.observe(value)
        # counts[i] covers value <= edges[i]; final bin is overflow.
        assert hist.counts == [2, 1, 1]
        assert hist.count == 4
        assert hist.sum == pytest.approx(106.5)
        assert hist.mean == pytest.approx(106.5 / 4)

    def test_histogram_requires_sorted_edges(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("bad", edges=(2.0, 1.0))
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("empty", edges=())

    def test_topk_keeps_largest(self):
        registry = MetricsRegistry()
        top = registry.topk("slow", k=2)
        for value in (1.0, 5.0, 3.0, 4.0):
            top.offer(value, t=int(value))
        assert [item["value"] for item in top.items] == [5.0, 4.0]

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")


class TestDeterministicFlags:
    def test_seconds_suffix_defaults_nondeterministic(self):
        registry = MetricsRegistry()
        registry.histogram("stage_seconds", edges=SECONDS_BUCKETS).observe(1e-3)
        registry.counter("samples_total").inc()
        names = {d["name"]: d["deterministic"] for d in registry.snapshot()}
        assert names == {"stage_seconds": False, "samples_total": True}

    def test_explicit_flag_overrides_default(self):
        registry = MetricsRegistry()
        registry.counter("checkpoints_total", deterministic=False).inc()
        (entry,) = registry.snapshot()
        assert entry["deterministic"] is False

    def test_deterministic_view_filters(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc()
        registry.histogram("b_seconds", edges=SECONDS_BUCKETS).observe(0.1)
        view = deterministic_view(registry.snapshot())
        assert [d["name"] for d in view] == ["a_total"]
        assert registry.snapshot(deterministic_only=True) == view


def random_observations(seed, n=200):
    # Integer-valued observations: float addition over them is exact, so
    # histogram sums stay bit-identical under any merge grouping.  (Real
    # fractional sums are only reproducible for a *fixed* chunk plan,
    # which is what campaigns guarantee.)
    rng = np.random.default_rng(seed)
    values = [float(v) for v in rng.integers(0, 40, size=n)]
    categories = rng.choice(["masked", "memory_only", "needs_rtl"], size=n)
    return list(zip(values, categories))


def record_into(registry, observations):
    for value, category in observations:
        registry.counter("samples_total").inc()
        registry.counter("outcomes_total", category=category).inc()
        registry.histogram("bits", edges=BIT_COUNT_BUCKETS).observe(value)
        registry.gauge("last_value").set(value)


class TestMerging:
    def test_merge_is_grouping_invariant(self):
        """Merging per-chunk snapshots in order gives the same registry
        whatever the chunk boundaries were — the property that makes
        merged metrics independent of chunk size and worker count."""
        observations = random_observations(seed=7)
        whole = MetricsRegistry()
        record_into(whole, observations)

        for n_chunks in (1, 3, 7):
            merged = MetricsRegistry()
            for shard in np.array_split(np.arange(len(observations)), n_chunks):
                chunk = MetricsRegistry()
                record_into(chunk, [observations[i] for i in shard])
                merged.merge_snapshot(chunk.snapshot())
            assert merged.snapshot() == whole.snapshot()

    def test_histogram_merge_is_exact_bucketwise_addition(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.histogram("h", edges=(1.0, 2.0)).observe(0.5)
        b.histogram("h", edges=(1.0, 2.0)).observe(1.5)
        b.histogram("h", edges=(1.0, 2.0)).observe(9.0)
        a.merge_snapshot(b.snapshot())
        merged = a.histogram("h", edges=(1.0, 2.0))
        assert merged.counts == [1, 1, 1]
        assert merged.count == 3

    def test_histogram_merge_rejects_mismatched_edges(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.histogram("h", edges=(1.0, 2.0)).observe(0.5)
        b.histogram("h", edges=(1.0, 3.0)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge_snapshot(b.snapshot())

    def test_gauge_merge_takes_later_snapshot(self):
        merged = MetricsRegistry()
        for value in (3.0, 8.0):
            chunk = MetricsRegistry()
            chunk.gauge("g").set(value)
            merged.merge_snapshot(chunk.snapshot())
        assert merged.value("g") == 8.0

    def test_gauge_merge_skips_unset(self):
        merged = MetricsRegistry()
        chunk = MetricsRegistry()
        chunk.gauge("g").set(3.0)
        merged.merge_snapshot(chunk.snapshot())
        empty = MetricsRegistry()
        empty.gauge("g")
        merged.merge_snapshot(empty.snapshot())
        assert merged.value("g") == 3.0

    def test_topk_merge_keeps_global_largest(self):
        merged = MetricsRegistry()
        for values in ((1.0, 9.0), (5.0, 7.0)):
            chunk = MetricsRegistry()
            for value in values:
                chunk.topk("slow", k=2).offer(value)
            merged.merge_snapshot(chunk.snapshot())
        items = merged.topk("slow", k=2).items
        assert [item["value"] for item in items] == [9.0, 7.0]

    def test_from_snapshot_roundtrip(self):
        registry = MetricsRegistry()
        record_into(registry, random_observations(seed=11, n=50))
        restored = MetricsRegistry.from_snapshot(registry.snapshot())
        assert restored.snapshot() == registry.snapshot()


class TestExporters:
    def test_jsonl_roundtrip(self):
        registry = MetricsRegistry()
        record_into(registry, random_observations(seed=3, n=30))
        lines = [
            json.loads(line)
            for line in registry.to_jsonl().splitlines()
            if line
        ]
        assert MetricsRegistry.from_snapshot(lines).snapshot() == (
            registry.snapshot()
        )

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("samples_total").inc(3)
        registry.gauge("workers").set(4)
        registry.histogram("bits", edges=(1.0, 2.0)).observe(0.5)
        registry.histogram("bits", edges=(1.0, 2.0)).observe(9.0)
        registry.topk("slow", k=2).offer(1.0)
        text = registry.to_prometheus()
        assert "# TYPE samples_total counter" in text
        assert "samples_total 3" in text
        assert "workers 4" in text
        # Buckets are cumulative and capped by +Inf == count.
        assert 'bits_bucket{le="1"} 1' in text
        assert 'bits_bucket{le="2"} 1' in text
        assert 'bits_bucket{le="+Inf"} 2' in text
        assert "bits_count 2" in text
        assert "slow" not in text  # topk has no prometheus mapping
