"""Tests for the holistic attack-parameter distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attack.distributions import (
    RadiusDistribution,
    SpatialDistribution,
    TemporalDistribution,
)
from repro.errors import AttackModelError


class TestTemporal:
    def test_uniform_pmf(self):
        d = TemporalDistribution(50)
        assert d.pmf(0) == d.pmf(49) == 1 / 50
        assert d.pmf(50) == 0.0
        assert d.pmf(-1) == 0.0

    @given(st.integers(1, 200))
    def test_pmf_sums_to_one(self, window):
        d = TemporalDistribution(window)
        assert sum(d.pmf(t) for t in d.support()) == pytest.approx(1.0)

    def test_samples_in_support(self):
        d = TemporalDistribution(7)
        rng = np.random.default_rng(0)
        draws = [d.sample(rng) for _ in range(200)]
        assert set(draws) <= set(range(7))
        assert len(set(draws)) == 7  # all values reachable

    def test_validation(self):
        with pytest.raises(AttackModelError):
            TemporalDistribution(0)


class TestSpatial:
    UNIVERSE = list(range(10, 40))
    TARGETS = [12, 20]

    def test_uniform_mode(self):
        d = SpatialDistribution(self.UNIVERSE)
        assert d.pmf(10) == pytest.approx(1 / 30)
        assert d.pmf(99) == 0.0
        assert sum(d.pmf(n) for n in self.UNIVERSE) == pytest.approx(1.0)

    def test_delta_mode(self):
        d = SpatialDistribution(self.UNIVERSE, self.TARGETS, concentration=1.0)
        assert d.pmf(12) == pytest.approx(0.5)
        assert d.pmf(15) == 0.0
        rng = np.random.default_rng(1)
        assert {d.sample(rng) for _ in range(100)} == set(self.TARGETS)

    @given(st.floats(0.0, 1.0))
    @settings(max_examples=20)
    def test_mixture_normalized(self, c):
        d = SpatialDistribution(self.UNIVERSE, self.TARGETS, concentration=c)
        assert sum(d.pmf(n) for n in self.UNIVERSE) == pytest.approx(1.0)

    def test_concentration_monotone_on_targets(self):
        low = SpatialDistribution(self.UNIVERSE, self.TARGETS, 0.2)
        high = SpatialDistribution(self.UNIVERSE, self.TARGETS, 0.8)
        assert high.pmf(12) > low.pmf(12)
        assert high.pmf(30) < low.pmf(30)

    def test_validation(self):
        with pytest.raises(AttackModelError):
            SpatialDistribution([])
        with pytest.raises(AttackModelError):
            SpatialDistribution(self.UNIVERSE, concentration=0.5)
        with pytest.raises(AttackModelError):
            SpatialDistribution(self.UNIVERSE, [999], concentration=0.5)
        with pytest.raises(AttackModelError):
            SpatialDistribution(self.UNIVERSE, self.TARGETS, concentration=1.5)


class TestRadius:
    def test_pmf(self):
        d = RadiusDistribution((2.0, 4.0))
        assert d.pmf(2.0) == 0.5
        assert d.pmf(3.0) == 0.0

    def test_sampling(self):
        d = RadiusDistribution((2.0, 4.0, 8.0))
        rng = np.random.default_rng(0)
        assert {d.sample(rng) for _ in range(100)} == {2.0, 4.0, 8.0}

    def test_validation(self):
        with pytest.raises(AttackModelError):
            RadiusDistribution(())
        with pytest.raises(AttackModelError):
            RadiusDistribution((0.0,))
