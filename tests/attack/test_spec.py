"""Tests for the attack specification bundle."""

import numpy as np
import pytest

from repro.attack.distributions import (
    RadiusDistribution,
    SpatialDistribution,
    TemporalDistribution,
)
from repro.attack.spec import AttackSpec, select_subblock
from repro.attack.techniques import RadiationTechnique
from repro.errors import AttackModelError
from repro.gatesim.timing import TimingModel


def make_spec(universe):
    return AttackSpec(
        technique=RadiationTechnique(timing=TimingModel()),
        temporal=TemporalDistribution(10),
        spatial=SpatialDistribution(universe),
        radius=RadiusDistribution((3.0, 5.0)),
    )


class TestDensity:
    def test_factorized_density(self, mpu_placement):
        universe = list(range(100, 140))
        spec = make_spec(universe)
        assert spec.density(3, 105, 3.0) == pytest.approx(
            (1 / 10) * (1 / 40) * (1 / 2)
        )
        assert spec.density(11, 105, 3.0) == 0.0
        assert spec.density(3, 99, 3.0) == 0.0
        assert spec.density(3, 105, 4.0) == 0.0

    def test_nominal_sampling_weight_is_one(self):
        spec = make_spec(list(range(100, 140)))
        rng = np.random.default_rng(0)
        for _ in range(20):
            s = spec.sample_nominal(rng)
            assert s.weight == 1.0
            assert spec.density(s.t, s.centre, s.radius_um) > 0

    def test_density_sums_to_one(self):
        universe = list(range(100, 120))
        spec = make_spec(universe)
        total = sum(
            spec.density(t, g, r)
            for t in range(10)
            for g in universe
            for r in (3.0, 5.0)
        )
        assert total == pytest.approx(1.0)


class TestSubblockSelection:
    def test_fraction_respected(self, mpu_placement):
        nl = mpu_placement.netlist
        seeds = [nl.register_dff("viol_q", 0).nid]
        block = select_subblock(mpu_placement, seeds, fraction=0.125)
        physical = sum(
            1
            for n in nl.nodes
            if n.kind.value not in ("input", "const0", "const1")
        )
        assert len(block) == pytest.approx(0.125 * physical, abs=2)

    def test_block_is_contiguous_around_seed(self, mpu_placement):
        nl = mpu_placement.netlist
        seed = nl.register_dff("viol_q", 0).nid
        block = select_subblock(mpu_placement, [seed], fraction=0.05)
        # every member is nearer the seed centroid than almost every
        # non-member: check max member distance < 90th pct of non-members
        sx, sy = mpu_placement.position(seed)
        members = [
            np.hypot(*(np.array(mpu_placement.position(n)) - (sx, sy)))
            for n in block
        ]
        others = [
            np.hypot(*(np.array(mpu_placement.position(n.nid)) - (sx, sy)))
            for n in nl.nodes
            if n.nid not in set(block)
            and n.kind.value not in ("input", "const0", "const1")
        ]
        assert max(members) <= np.quantile(others, 0.2)

    def test_validation(self, mpu_placement):
        with pytest.raises(AttackModelError):
            select_subblock(mpu_placement, [], fraction=0.1)
        with pytest.raises(AttackModelError):
            select_subblock(mpu_placement, [0], fraction=0.0)
