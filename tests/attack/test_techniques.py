"""Tests for the physical injection techniques."""

import numpy as np
import pytest

from repro.attack.techniques import (
    ClockGlitchTechnique,
    RadiationTechnique,
    VoltageGlitchTechnique,
)
from repro.errors import AttackModelError
from repro.gatesim.timing import TimingModel
from repro.netlist.cells import GateKind


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


class TestRadiation:
    def test_impacted_set_grows_with_radius(self, mpu_placement, rng):
        tech = RadiationTechnique(timing=TimingModel())
        centre = mpu_placement.netlist.register_dff("viol_q", 0).nid
        small = tech.build_injection(mpu_placement, centre, 3.0, rng)
        large = tech.build_injection(mpu_placement, centre, 9.0, rng)
        n_small = len(small.gate_pulses) + len(small.struck_dffs)
        n_large = len(large.gate_pulses) + len(large.struck_dffs)
        assert n_large > n_small

    def test_width_decays_with_distance(self, mpu_placement, rng):
        tech = RadiationTechnique(timing=TimingModel())
        # choose a combinational centre so it carries the peak width
        centre = next(
            n.nid
            for n in mpu_placement.netlist.nodes
            if n.kind.is_combinational
        )
        inj = tech.build_injection(mpu_placement, centre, 9.0, rng)
        assert inj.gate_pulses[centre] == pytest.approx(tech.peak_width_ps)
        for nid, width in inj.gate_pulses.items():
            assert 0 < width <= tech.peak_width_ps

    def test_centre_dff_always_struck(self, mpu_placement, rng):
        tech = RadiationTechnique(timing=TimingModel())
        centre = mpu_placement.netlist.register_dff("cfg_top0", 12).nid
        inj = tech.build_injection(mpu_placement, centre, 3.0, rng)
        assert centre in inj.struck_dffs

    def test_target_filters(self, mpu_placement, rng):
        comb_only = RadiationTechnique(
            timing=TimingModel(), target_filter="comb_only"
        )
        seq_only = RadiationTechnique(
            timing=TimingModel(), target_filter="seq_only"
        )
        centre = mpu_placement.netlist.register_dff("viol_q", 0).nid
        a = comb_only.build_injection(mpu_placement, centre, 9.0, rng)
        assert a.struck_dffs == []
        b = seq_only.build_injection(mpu_placement, centre, 9.0, rng)
        assert b.gate_pulses == {}
        assert b.struck_dffs  # flops near the decision register exist

    def test_strike_time_within_cycle(self, mpu_placement, rng):
        timing = TimingModel()
        tech = RadiationTechnique(timing=timing)
        centre = mpu_placement.netlist.register_dff("viol_q", 0).nid
        for _ in range(20):
            inj = tech.build_injection(mpu_placement, centre, 5.0, rng)
            assert 0 <= inj.strike_time_ps < timing.clock_period_ps

    def test_validation(self):
        with pytest.raises(AttackModelError):
            RadiationTechnique(timing=TimingModel(), peak_width_ps=0)
        with pytest.raises(AttackModelError):
            RadiationTechnique(timing=TimingModel(), dff_upset_fraction=0)
        with pytest.raises(AttackModelError):
            RadiationTechnique(timing=TimingModel(), target_filter="bogus")
        tech = RadiationTechnique(timing=TimingModel())
        with pytest.raises(AttackModelError):
            tech.build_injection(None, 0, -1.0, np.random.default_rng(0))


class TestGlitchTechniques:
    def test_clock_glitch_hits_slow_paths_only(self, mpu_placement, rng):
        tech = ClockGlitchTechnique(timing=TimingModel(), glitch_depth_ps=300.0)
        centre = mpu_placement.netlist.register_dff("viol_q", 0).nid
        inj = tech.build_injection(mpu_placement, centre, 40.0, rng)
        # every struck gate settles inside the stolen window
        threshold = TimingModel().clock_period_ps - 300.0
        from repro.attack.techniques import _arrival_times

        arrival = _arrival_times(mpu_placement)
        for nid in inj.gate_pulses:
            assert arrival[nid] >= threshold

    def test_voltage_glitch_slowdown_validation(self, mpu_placement, rng):
        tech = VoltageGlitchTechnique(timing=TimingModel(), slowdown=1.0)
        with pytest.raises(AttackModelError):
            tech.build_injection(mpu_placement, 0, 5.0, rng)

    def test_voltage_glitch_produces_pulses(self, mpu_placement, rng):
        tech = VoltageGlitchTechnique(timing=TimingModel(), slowdown=2.0)
        # centre near the deep logic: use the slowest node
        from repro.attack.techniques import _arrival_times

        arrival = _arrival_times(mpu_placement)
        centre = int(np.argmax(arrival))
        inj = tech.build_injection(mpu_placement, centre, 10.0, rng)
        assert inj.gate_pulses
