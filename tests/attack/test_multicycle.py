"""Tests for the multi-cycle impact extension."""

import numpy as np
import pytest

from repro import CrossLevelEngine, RandomSampler, default_attack_spec
from repro.attack.spec import AttackSample
from repro.attack.techniques import RadiationTechnique
from repro.core.results import OutcomeCategory
from repro.errors import AttackModelError
from repro.gatesim.timing import TimingModel


class TestTechniqueParameter:
    def test_default_single_cycle(self):
        assert RadiationTechnique(timing=TimingModel()).impact_cycles == 1

    def test_validation(self):
        with pytest.raises(AttackModelError):
            RadiationTechnique(timing=TimingModel(), impact_cycles=0)


class TestEngineMultiCycle:
    @pytest.fixture(scope="class")
    def engines(self, small_context):
        single = default_attack_spec(small_context, window=10)
        multi = default_attack_spec(small_context, window=10)
        # Odd impact count: deterministic per-cycle storage-node strikes
        # toggle the cell, so an even count would cancel pairwise.
        multi.technique.impact_cycles = 3
        return (
            CrossLevelEngine(small_context, single),
            CrossLevelEngine(small_context, multi),
            single,
            multi,
        )

    def test_multi_cycle_latches_more(self, engines, small_context):
        """Sustained exposure must produce at least as many faulty runs."""
        single_engine, multi_engine, single_spec, multi_spec = engines
        r1 = single_engine.evaluate(RandomSampler(single_spec), 250, seed=9)
        r4 = multi_engine.evaluate(RandomSampler(multi_spec), 250, seed=9)
        # (the masked-run counts are not directly comparable: the rng
        # streams diverge, so the drawn (t, g, r) sequences differ)
        injected_1 = sum(rec.n_pulses_injected for rec in r1.records)
        injected_4 = sum(rec.n_pulses_injected for rec in r4.records)
        assert injected_4 > 2 * injected_1
        latched_1 = sum(rec.n_pulses_latched for rec in r1.records)
        latched_4 = sum(rec.n_pulses_latched for rec in r4.records)
        assert latched_4 > latched_1

    def test_multi_cycle_never_uses_analytical_path(self, engines):
        _s, multi_engine, _ss, multi_spec = engines
        result = multi_engine.evaluate(RandomSampler(multi_spec), 150, seed=3)
        assert all(not rec.analytical for rec in result.records)

    def test_double_flip_cancellation(self, engines, small_context):
        """The same DFF struck in two consecutive cycles ends fault-free in
        the accumulated flip set (XOR semantics)."""
        _s, multi_engine, _ss, _ms = engines
        nl = small_context.netlist
        centre = nl.register_dff("cfg_base5", 3).nid
        rng = np.random.default_rng(1)
        spec = default_attack_spec(small_context, window=10)
        spec.technique.impact_cycles = 2  # even -> strikes cancel pairwise
        engine = CrossLevelEngine(small_context, spec)
        record = engine.run_sample(
            AttackSample(t=6, centre=centre, radius_um=1.5, weight=1.0), rng
        )
        assert ("cfg_base5", 3) not in record.flipped_bits

    def test_impact_clipped_at_run_end(self, small_context):
        spec = default_attack_spec(small_context, window=10)
        spec.technique.impact_cycles = 10**6
        engine = CrossLevelEngine(small_context, spec)
        rng = np.random.default_rng(0)
        record = engine.run_sample(
            AttackSample(t=0, centre=small_context.responding[0],
                         radius_um=3.0, weight=1.0),
            rng,
        )
        assert record is not None  # terminated despite the huge impact
