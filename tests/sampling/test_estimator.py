"""Tests for the SSF estimator."""

import numpy as np
import pytest

from repro.attack.spec import AttackSample
from repro.sampling.estimator import SsfEstimator


def sample(weight=1.0):
    return AttackSample(t=0, centre=0, radius_um=3.0, weight=weight)


class TestSsfEstimator:
    def test_unweighted_mean(self):
        est = SsfEstimator()
        for e in [1, 0, 0, 1]:
            est.push(sample(), e)
        assert est.ssf == pytest.approx(0.5)
        assert est.n_success == 2
        assert est.success_rate() == 0.5

    def test_weighted_mean(self):
        est = SsfEstimator()
        est.push(sample(0.1), 1)
        est.push(sample(1.0), 0)
        assert est.ssf == pytest.approx(0.05)

    def test_history_tracks_running_mean(self):
        est = SsfEstimator(record_history=True)
        est.push(sample(), 1)
        est.push(sample(), 0)
        assert est.history == [1.0, 0.5]

    def test_variance_matches_numpy(self):
        rng = np.random.default_rng(0)
        est = SsfEstimator()
        values = []
        for _ in range(500):
            w = float(rng.uniform(0.1, 2.0))
            e = int(rng.random() < 0.1)
            est.push(sample(w), e)
            values.append(w * e)
        assert est.variance == pytest.approx(np.var(values, ddof=1), rel=1e-9)

    def test_confidence_interval_brackets(self):
        est = SsfEstimator()
        for i in range(1000):
            est.push(sample(), int(i % 40 == 0))
        lo, hi = est.raw_confidence_interval()
        assert lo < est.success_rate() < hi

    def test_convergence_criterion(self):
        est = SsfEstimator()
        assert not est.converged()
        rng = np.random.default_rng(1)
        for _ in range(5000):
            est.push(sample(), int(rng.random() < 0.3))
        assert est.converged(rel_tol=0.2)

    def test_zero_ssf_never_converges(self):
        est = SsfEstimator()
        for _ in range(1000):
            est.push(sample(), 0)
        assert not est.converged()

    def test_samples_needed_uses_variance(self):
        est = SsfEstimator()
        for i in range(100):
            est.push(sample(), i % 2)
        n = est.samples_needed(epsilon=0.01, delta=0.05)
        assert n > 1000

    def test_summary_fields(self):
        est = SsfEstimator()
        est.push(sample(), 1)
        est.push(sample(), 0)
        summary = est.summary()
        assert summary["n_samples"] == 2
        assert summary["n_success"] == 1
        assert "variance" in summary
