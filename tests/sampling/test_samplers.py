"""Tests for the three sampling strategies.

The central property is *unbiasedness*: for any indicator supported inside
the cones, the weighted estimate must match the nominal probability.  We
check it with an artificial success oracle so no simulation noise enters.
"""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.sampling import FaninConeSampler, ImportanceSampler, RandomSampler
from repro import default_attack_spec


@pytest.fixture(scope="module")
def spec(small_context):
    return default_attack_spec(small_context, window=10)


@pytest.fixture(scope="module")
def samplers(small_context, spec):
    ch = small_context.characterization
    return {
        "random": RandomSampler(spec),
        "cone": FaninConeSampler(spec, ch),
        "importance": ImportanceSampler(
            spec, ch, placement=small_context.placement
        ),
    }


class TestBasicContracts:
    def test_random_weights_are_one(self, samplers):
        rng = np.random.default_rng(0)
        for _ in range(50):
            assert samplers["random"].sample(rng).weight == 1.0

    def test_samples_inside_nominal_support(self, spec, samplers):
        rng = np.random.default_rng(1)
        for name, sampler in samplers.items():
            for _ in range(100):
                s = sampler.sample(rng)
                assert spec.density(s.t, s.centre, s.radius_um) > 0, name

    def test_weights_are_exact_density_ratios(self, spec, samplers, small_context):
        rng = np.random.default_rng(2)
        imp = samplers["importance"]
        for _ in range(100):
            s = imp.sample(rng)
            g = imp.g_T(s.t) * imp.g_P_given_T(s.centre, s.t)
            f = spec.temporal.pmf(s.t) * spec.spatial.pmf(s.centre)
            assert s.weight == pytest.approx(f / g)

    def test_cone_samples_in_cones(self, samplers, small_context):
        ch = small_context.characterization
        rng = np.random.default_rng(3)
        for _ in range(100):
            s = samplers["cone"].sample(rng)
            assert s.centre in ch.omega_nodes(s.t)

    def test_gT_is_a_distribution(self, samplers, spec):
        imp = samplers["importance"]
        total = sum(imp.g_T(t) for t in spec.temporal.support())
        assert total == pytest.approx(1.0)

    def test_alpha_beta_validation(self, spec, small_context):
        ch = small_context.characterization
        with pytest.raises(SamplingError):
            ImportanceSampler(spec, ch, alpha=-1)
        with pytest.raises(SamplingError):
            ImportanceSampler(spec, ch, beta=-0.5)


class TestUnbiasedness:
    def oracle(self, small_context):
        """Artificial success indicator: inside the cones, deterministic in
        (t, centre) — flips of the two critical config cells at t >= 1 and
        the decision cone at t == 0."""
        ch = small_context.characterization
        nl = small_context.netlist
        crit = {
            nl.register_dff("cfg_top0", 12).nid,
            nl.register_dff("cfg_perm1", 2).nid,
        }
        frame0 = ch.omega_nodes(0)

        def e(sample):
            if sample.t == 0:
                return int(sample.centre in frame0 and sample.centre % 3 == 0)
            return int(sample.centre in crit)

        return e

    def estimate(self, sampler, oracle, n, seed):
        rng = np.random.default_rng(seed)
        acc = 0.0
        for _ in range(n):
            s = sampler.sample(rng)
            acc += s.weight * oracle(s)
        return acc / n

    def exact(self, spec, oracle, small_context):
        total = 0.0
        for t in spec.temporal.support():
            for g in spec.spatial.universe:
                class S:  # tiny ad-hoc sample
                    pass

                s = S()
                s.t, s.centre = t, g
                total += spec.temporal.pmf(t) * spec.spatial.pmf(g) * oracle(s)
        return total

    def test_all_strategies_agree_with_exact_value(
        self, spec, samplers, small_context
    ):
        oracle = self.oracle(small_context)
        truth = self.exact(spec, oracle, small_context)
        assert truth > 0
        for name, sampler in samplers.items():
            est = self.estimate(sampler, oracle, 8000, seed=11)
            assert est == pytest.approx(truth, rel=0.35), (name, est, truth)

    def test_importance_variance_lower_than_random(
        self, spec, samplers, small_context
    ):
        oracle = self.oracle(small_context)
        rng_r = np.random.default_rng(5)
        rng_i = np.random.default_rng(5)
        vals_r, vals_i = [], []
        for _ in range(4000):
            s = samplers["random"].sample(rng_r)
            vals_r.append(s.weight * oracle(s))
            s = samplers["importance"].sample(rng_i)
            vals_i.append(s.weight * oracle(s))
        assert np.var(vals_i) < np.var(vals_r)


class TestHardLifetimeGate:
    @pytest.fixture(scope="class")
    def full_spec(self, small_context):
        # Whole-die universe so short-lived pipeline registers (req_*) are
        # part of the nominal support.
        return default_attack_spec(
            small_context, window=10, subblock_fraction=1.0
        )

    def test_gate_removes_short_lived_nodes_at_deep_frames(
        self, full_spec, small_context
    ):
        ch = small_context.characterization
        gated = ImportanceSampler(full_spec, ch, hard_lifetime_gate=True)
        ungated = ImportanceSampler(full_spec, ch, hard_lifetime_gate=False)
        deep = max(t for t in full_spec.temporal.support() if gated.support_size(t))
        assert gated.support_size(deep) < ungated.support_size(deep)

    def test_gated_support_only_long_lived(self, full_spec, small_context):
        ch = small_context.characterization
        gated = ImportanceSampler(
            full_spec, ch, hard_lifetime_gate=True, beta=1.0
        )
        for t in range(1, 10):
            if t not in gated._tables:
                continue
            for nid in gated._tables[t].nodes:
                assert ch.L(int(nid)) >= t
