"""Unit + property tests for packed bit sequences."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.bitvec import BitSequence, hamming_weight, pack_bits, unpack_bits

bits_lists = st.lists(st.integers(0, 1), min_size=1, max_size=200)


class TestPackUnpack:
    def test_roundtrip_simple(self):
        bits = [1, 0, 1, 1, 0, 0, 1]
        assert unpack_bits(pack_bits(bits), len(bits)) == bits

    def test_empty(self):
        assert pack_bits([]).size == 0
        assert hamming_weight(pack_bits([])) == 0

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            pack_bits([0, 2, 1])

    @given(bits_lists)
    def test_roundtrip_property(self, bits):
        assert unpack_bits(pack_bits(bits), len(bits)) == bits

    @given(bits_lists)
    def test_hamming_weight_matches_sum(self, bits):
        assert hamming_weight(pack_bits(bits)) == sum(bits)

    def test_word_boundary(self):
        bits = [1] * 64 + [0] * 63 + [1]
        packed = pack_bits(bits)
        assert packed.size == 2
        assert hamming_weight(packed) == 65
        assert unpack_bits(packed, 128) == bits


class TestBitSequence:
    def test_from_values_switching(self):
        # values 1,1,0,1,1 -> switches at cycles 2 and 3 only
        seq = BitSequence.from_values([1, 1, 0, 1, 1])
        assert seq.to_bits() == [0, 0, 1, 1, 0]

    def test_cycle_zero_never_switches(self):
        assert BitSequence.from_values([1]).to_bits() == [0]

    def test_get_set(self):
        seq = BitSequence(10)
        seq.set(3, 1)
        assert seq.get(3) == 1
        seq.set(3, 0)
        assert seq.get(3) == 0
        with pytest.raises(IndexError):
            seq.get(10)
        with pytest.raises(IndexError):
            seq.set(-1, 1)

    def test_and_requires_equal_length(self):
        with pytest.raises(ValueError):
            BitSequence(4) & BitSequence(5)

    @given(bits_lists)
    def test_popcount(self, bits):
        assert BitSequence.from_bits(bits).popcount() == sum(bits)

    @given(bits_lists, st.integers(0, 32))
    def test_shift_left_semantics(self, bits, n):
        seq = BitSequence.from_bits(bits).shift_left(n)
        expected = bits[n:] + [0] * min(n, len(bits))
        assert seq.to_bits() == expected[: len(bits)]

    @given(bits_lists, st.integers(0, 32))
    def test_shift_right_semantics(self, bits, n):
        seq = BitSequence.from_bits(bits).shift_right(n)
        expected = [0] * min(n, len(bits)) + bits[: max(len(bits) - n, 0)]
        assert seq.to_bits() == expected[: len(bits)]

    @given(bits_lists, st.integers(-16, 16))
    def test_shift_negative_is_inverse_direction(self, bits, n):
        seq = BitSequence.from_bits(bits)
        assert seq.shift_left(-5) == seq.shift_right(5)
        assert seq.shift_right(-3) == seq.shift_left(3)

    @given(bits_lists)
    def test_xor_or_and_consistency(self, bits):
        a = BitSequence.from_bits(bits)
        b = BitSequence.from_bits(list(reversed(bits)))
        assert (a ^ b).popcount() == sum(
            x != y for x, y in zip(bits, reversed(bits))
        )
        # (a & b) | (a ^ b) == a | b
        assert ((a & b) | (a ^ b)) == (a | b)

    def test_equality_and_hash(self):
        a = BitSequence.from_bits([1, 0, 1])
        b = BitSequence.from_bits([1, 0, 1])
        assert a == b and hash(a) == hash(b)
        assert a != BitSequence.from_bits([1, 0, 0])


class TestCorrelation:
    def test_paper_example(self):
        """The worked example from Section 4 of the paper (Figure 3).

        Signatures are given MSB-first in the paper; our sequences index
        cycle 0 first, so reverse the strings.
        """
        def seq(s):
            return BitSequence.from_bits([int(c) for c in reversed(s)])

        rs = seq("01001101")
        g1 = seq("00101101")
        g2 = seq("01100111")
        g3 = seq("01001111")
        assert g1.correlation_with(rs, 0) == pytest.approx(3 / 4)
        assert g2.correlation_with(rs, 0) == pytest.approx(3 / 5)
        assert g3.correlation_with(rs, 1) == pytest.approx(2 / 5)

    def test_zero_for_silent_node(self):
        silent = BitSequence.from_bits([0, 0, 0, 0])
        rs = BitSequence.from_bits([1, 1, 1, 1])
        assert silent.correlation_with(rs, 0) == 0.0

    @given(bits_lists, st.integers(0, 8))
    def test_correlation_bounded(self, bits, shift):
        a = BitSequence.from_bits(bits)
        b = BitSequence.from_bits(bits[::-1])
        assert 0.0 <= a.correlation_with(b, shift) <= 1.0

    @given(bits_lists)
    def test_self_correlation_at_zero_shift(self, bits):
        a = BitSequence.from_bits(bits)
        if a.popcount():
            assert a.correlation_with(a, 0) == pytest.approx(1.0)
