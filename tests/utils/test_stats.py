"""Tests for streaming statistics."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.stats import (
    EmpiricalDistribution,
    RunningStats,
    chi2_sf,
    chi_square_gof,
    kolmogorov_sf,
    ks_1samp,
    ks_2samp,
    samples_for_risk,
    wilson_interval,
)

floats = st.lists(
    st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
    min_size=2,
    max_size=200,
)


class TestRunningStats:
    @given(floats)
    def test_matches_numpy(self, values):
        stats = RunningStats()
        stats.extend(values)
        assert stats.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-6)
        assert stats.variance == pytest.approx(
            np.var(values, ddof=1), rel=1e-6, abs=1e-4
        )

    @given(floats, floats)
    def test_merge_equals_concatenation(self, a, b):
        left = RunningStats()
        left.extend(a)
        right = RunningStats()
        right.extend(b)
        left.merge(right)
        combined = RunningStats()
        combined.extend(a + b)
        assert left.count == combined.count
        assert left.mean == pytest.approx(combined.mean, rel=1e-9, abs=1e-6)
        assert left.variance == pytest.approx(combined.variance, rel=1e-6, abs=1e-4)

    def test_merge_with_empty(self):
        stats = RunningStats()
        stats.extend([1.0, 2.0])
        stats.merge(RunningStats())
        assert stats.count == 2

    def test_history_recording(self):
        stats = RunningStats(record_history=True)
        stats.extend([1.0, 3.0])
        assert stats.history == [1.0, 2.0]

    def test_variance_of_single_sample(self):
        stats = RunningStats()
        stats.push(5.0)
        assert stats.variance == 0.0
        assert stats.std_error == float("inf")

    def test_std_error_shrinks(self):
        stats = RunningStats()
        rng = np.random.default_rng(0)
        stats.extend(rng.normal(size=100))
        early = stats.std_error
        stats.extend(rng.normal(size=900))
        assert stats.std_error < early


class TestWilson:
    def test_zero_successes(self):
        lo, hi = wilson_interval(0, 100)
        assert lo == 0.0 and 0 < hi < 0.05

    def test_contains_proportion(self):
        lo, hi = wilson_interval(27, 1000)
        assert lo < 0.027 < hi

    def test_input_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(10, 5)

    @given(st.integers(0, 500), st.integers(1, 500))
    def test_interval_ordered_and_bounded(self, k, n):
        if k > n:
            return
        lo, hi = wilson_interval(k, n)
        assert 0.0 <= lo <= hi <= 1.0


class TestChi2Sf:
    def test_known_critical_values(self):
        # Classic chi-square table entries (alpha = 0.05).
        assert chi2_sf(3.841, 1) == pytest.approx(0.05, abs=5e-4)
        assert chi2_sf(5.991, 2) == pytest.approx(0.05, abs=5e-4)
        assert chi2_sf(18.307, 10) == pytest.approx(0.05, abs=5e-4)

    def test_df2_closed_form(self):
        # For df=2 the survival function is exactly exp(-x/2).
        for x in (0.1, 1.0, 4.0, 25.0, 120.0):
            assert chi2_sf(x, 2) == pytest.approx(math.exp(-x / 2), rel=1e-12)

    def test_boundaries_and_validation(self):
        assert chi2_sf(0.0, 3) == 1.0
        assert chi2_sf(-1.0, 3) == 1.0
        assert chi2_sf(1e4, 3) == pytest.approx(0.0, abs=1e-12)
        with pytest.raises(ValueError):
            chi2_sf(1.0, 0)

    @given(st.floats(0.01, 200.0), st.integers(1, 80))
    def test_is_a_survival_function(self, x, df):
        p = chi2_sf(x, df)
        assert 0.0 <= p <= 1.0
        # Monotone non-increasing in x.
        assert chi2_sf(x + 1.0, df) <= p + 1e-12


class TestChiSquareGof:
    def test_perfect_fit_has_p_one(self):
        observed = {"a": 50, "b": 50}
        result = chi_square_gof(observed, {"a": 0.5, "b": 0.5}, min_expected=5.0)
        assert result.statistic == pytest.approx(0.0)
        assert result.p_value == pytest.approx(1.0)

    def test_gross_mismatch_rejected(self):
        observed = {"a": 95, "b": 5}
        result = chi_square_gof(observed, {"a": 0.5, "b": 0.5})
        assert result.p_value < 1e-6

    def test_outside_support_is_fatal(self):
        result = chi_square_gof({"a": 5, "zz": 1}, {"a": 1.0})
        assert result.p_value == 0.0
        assert math.isinf(result.statistic)

    def test_small_cells_are_pooled(self):
        probs = {"a": 0.48, "b": 0.48, "c": 0.02, "d": 0.02}
        observed = {"a": 48, "b": 48, "c": 2, "d": 2}
        result = chi_square_gof(observed, probs, min_expected=5.0)
        assert result.n_pooled == 2
        assert result.n_cells < len(probs)
        assert result.p_value > 0.5

    def test_degenerate_support_is_vacuous(self):
        result = chi_square_gof({"a": 10}, {"a": 1.0})
        assert result.p_value == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            chi_square_gof({}, {"a": 1.0})
        with pytest.raises(ValueError):
            chi_square_gof({"a": 0}, {"a": 1.0})

    def test_zero_probability_counts_as_outside_support(self):
        result = chi_square_gof({"a": 3}, {"a": 0.0, "b": 1.0})
        assert result.p_value == 0.0


class TestChebyshevBound:
    def test_paper_bound_shape(self):
        # N >= sigma^2 / (delta eps^2): quadrupling precision needs 16x N.
        base = samples_for_risk(0.01, 0.01, 0.05)
        finer = samples_for_risk(0.01, 0.0025, 0.05)
        assert finer == pytest.approx(16 * base, rel=0.01)

    def test_zero_variance(self):
        assert samples_for_risk(0.0, 0.01, 0.05) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            samples_for_risk(0.1, 0.0, 0.05)
        with pytest.raises(ValueError):
            samples_for_risk(0.1, 0.1, 1.5)
        with pytest.raises(ValueError):
            samples_for_risk(-1.0, 0.1, 0.5)


class TestKolmogorovSf:
    def test_reference_values(self):
        # Classical table values of the Kolmogorov distribution.
        assert kolmogorov_sf(1.36) == pytest.approx(0.0495, abs=5e-4)
        assert kolmogorov_sf(1.22) == pytest.approx(0.1019, abs=5e-4)
        assert kolmogorov_sf(1.63) == pytest.approx(0.0100, abs=5e-4)

    def test_limits(self):
        assert kolmogorov_sf(0.0) == 1.0
        assert kolmogorov_sf(-3.0) == 1.0
        assert kolmogorov_sf(10.0) == pytest.approx(0.0, abs=1e-12)

    def test_monotone_decreasing(self):
        xs = [0.2 * i for i in range(1, 20)]
        values = [kolmogorov_sf(x) for x in xs]
        assert all(a >= b - 1e-15 for a, b in zip(values, values[1:]))


class TestKs1Samp:
    def test_uniform_sample_against_uniform_cdf(self):
        rng = np.random.default_rng(1)
        sample = rng.uniform(0.0, 1.0, size=500).tolist()
        result = ks_1samp(sample, lambda x: min(1.0, max(0.0, x)))
        assert result.p_value > 0.05
        assert result.statistic < 0.08

    def test_shifted_sample_rejected(self):
        rng = np.random.default_rng(6)
        sample = (rng.uniform(0.0, 1.0, size=500) ** 2).tolist()
        result = ks_1samp(sample, lambda x: min(1.0, max(0.0, x)))
        assert result.p_value < 1e-6

    def test_exact_statistic_small_sample(self):
        # n=1, x=0.5 against U(0,1): D = max(1 - 0.5, 0.5 - 0) = 0.5.
        result = ks_1samp([0.5], lambda x: x)
        assert result.statistic == pytest.approx(0.5)
        assert result.n == 1

    def test_normal_sample_against_normal_cdf(self):
        rng = np.random.default_rng(2)
        sample = rng.normal(0.0, 1.0, size=800).tolist()
        cdf = lambda x: 0.5 * (1.0 + math.erf(x / math.sqrt(2)))  # noqa: E731
        assert ks_1samp(sample, cdf).p_value > 0.05

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            ks_1samp([], lambda x: x)


class TestKs2Samp:
    def test_same_distribution_accepted(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=400).tolist()
        b = rng.normal(size=300).tolist()
        result = ks_2samp(a, b)
        assert result.p_value > 0.05
        assert (result.n, result.m) == (400, 300)

    def test_shifted_distribution_rejected(self):
        rng = np.random.default_rng(4)
        a = rng.normal(0.0, 1.0, size=400).tolist()
        b = rng.normal(1.0, 1.0, size=400).tolist()
        assert ks_2samp(a, b).p_value < 1e-6

    def test_identical_samples_have_zero_statistic(self):
        a = [1.0, 2.0, 3.0, 4.0]
        result = ks_2samp(a, list(a))
        assert result.statistic == 0.0
        assert result.p_value == 1.0

    def test_ties_are_exact(self):
        # Discrete data with heavy ties: ECDFs evaluated on the merged
        # support, D = |3/4 - 1/4| at x=1 for these two samples.
        result = ks_2samp([1, 1, 1, 2], [1, 2, 2, 2])
        assert result.statistic == pytest.approx(0.5)

    def test_disjoint_supports_have_statistic_one(self):
        assert ks_2samp([0.0, 0.1], [5.0, 6.0]).statistic == pytest.approx(1.0)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            ks_2samp([], [1.0])


class TestEmpiricalDistribution:
    def test_fit_recovers_frequencies(self):
        dist = EmpiricalDistribution.fit(["a", "b", "a", "a"])
        assert dist.pmf("a") == pytest.approx(0.75)
        assert dist.pmf("b") == pytest.approx(0.25)
        assert dist.pmf("zz") == 0.0

    def test_fit_is_order_independent(self):
        a = EmpiricalDistribution.fit([3, 1, 1, 2])
        b = EmpiricalDistribution.fit([1, 2, 1, 3])
        assert a == b

    def test_quantile_inverts_cdf(self):
        dist = EmpiricalDistribution.from_counts({"x": 1, "y": 3})
        # Sorted by repr: "x" before "y"; P(x)=0.25.
        assert dist.quantile(0.0) == "x"
        assert dist.quantile(0.2499) == "x"
        assert dist.quantile(0.25) == "y"
        assert dist.quantile(0.999) == "y"

    def test_quantile_draws_match_fitted_pmf(self):
        rng = np.random.default_rng(5)
        dist = EmpiricalDistribution.from_counts({"a": 2, "b": 5, "c": 3})
        draws = [dist.quantile(float(u)) for u in rng.random(4000)]
        freq = {k: draws.count(k) / len(draws) for k in ("a", "b", "c")}
        for outcome in ("a", "b", "c"):
            assert freq[outcome] == pytest.approx(dist.pmf(outcome), abs=0.03)

    def test_quantile_range_validated(self):
        dist = EmpiricalDistribution.fit([1])
        with pytest.raises(ValueError):
            dist.quantile(1.0)
        with pytest.raises(ValueError):
            dist.quantile(-0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            EmpiricalDistribution.fit([])
        with pytest.raises(ValueError):
            EmpiricalDistribution.from_counts({"a": 0})

    def test_as_dict_round_trip(self):
        dist = EmpiricalDistribution.from_counts({(1, 2): 3, (0, 1): 1})
        clone = EmpiricalDistribution.from_counts(
            {k: int(round(v * 4)) for k, v in dist.as_dict().items()}
        )
        assert clone == dist
