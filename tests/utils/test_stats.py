"""Tests for streaming statistics."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.stats import RunningStats, samples_for_risk, wilson_interval

floats = st.lists(
    st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
    min_size=2,
    max_size=200,
)


class TestRunningStats:
    @given(floats)
    def test_matches_numpy(self, values):
        stats = RunningStats()
        stats.extend(values)
        assert stats.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-6)
        assert stats.variance == pytest.approx(
            np.var(values, ddof=1), rel=1e-6, abs=1e-4
        )

    @given(floats, floats)
    def test_merge_equals_concatenation(self, a, b):
        left = RunningStats()
        left.extend(a)
        right = RunningStats()
        right.extend(b)
        left.merge(right)
        combined = RunningStats()
        combined.extend(a + b)
        assert left.count == combined.count
        assert left.mean == pytest.approx(combined.mean, rel=1e-9, abs=1e-6)
        assert left.variance == pytest.approx(combined.variance, rel=1e-6, abs=1e-4)

    def test_merge_with_empty(self):
        stats = RunningStats()
        stats.extend([1.0, 2.0])
        stats.merge(RunningStats())
        assert stats.count == 2

    def test_history_recording(self):
        stats = RunningStats(record_history=True)
        stats.extend([1.0, 3.0])
        assert stats.history == [1.0, 2.0]

    def test_variance_of_single_sample(self):
        stats = RunningStats()
        stats.push(5.0)
        assert stats.variance == 0.0
        assert stats.std_error == float("inf")

    def test_std_error_shrinks(self):
        stats = RunningStats()
        rng = np.random.default_rng(0)
        stats.extend(rng.normal(size=100))
        early = stats.std_error
        stats.extend(rng.normal(size=900))
        assert stats.std_error < early


class TestWilson:
    def test_zero_successes(self):
        lo, hi = wilson_interval(0, 100)
        assert lo == 0.0 and 0 < hi < 0.05

    def test_contains_proportion(self):
        lo, hi = wilson_interval(27, 1000)
        assert lo < 0.027 < hi

    def test_input_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(10, 5)

    @given(st.integers(0, 500), st.integers(1, 500))
    def test_interval_ordered_and_bounded(self, k, n):
        if k > n:
            return
        lo, hi = wilson_interval(k, n)
        assert 0.0 <= lo <= hi <= 1.0


class TestChebyshevBound:
    def test_paper_bound_shape(self):
        # N >= sigma^2 / (delta eps^2): quadrupling precision needs 16x N.
        base = samples_for_risk(0.01, 0.01, 0.05)
        finer = samples_for_risk(0.01, 0.0025, 0.05)
        assert finer == pytest.approx(16 * base, rel=0.01)

    def test_zero_variance(self):
        assert samples_for_risk(0.0, 0.01, 0.05) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            samples_for_risk(0.1, 0.0, 0.05)
        with pytest.raises(ValueError):
            samples_for_risk(0.1, 0.1, 1.5)
        with pytest.raises(ValueError):
            samples_for_risk(-1.0, 0.1, 0.5)
