"""Tests for random-stream plumbing."""

import numpy as np

from repro.utils.rng import RngFactory, as_generator


class TestAsGenerator:
    def test_passthrough(self):
        gen = np.random.default_rng(3)
        assert as_generator(gen) is gen

    def test_from_seed_deterministic(self):
        a = as_generator(42).integers(0, 1 << 30, size=8)
        b = as_generator(42).integers(0, 1 << 30, size=8)
        assert np.array_equal(a, b)

    def test_none_is_allowed(self):
        assert as_generator(None) is not None


class TestRngFactory:
    def test_same_name_same_stream(self):
        f = RngFactory(7)
        a = f.stream("sampler").integers(0, 1 << 30, size=8)
        b = RngFactory(7).stream("sampler").integers(0, 1 << 30, size=8)
        assert np.array_equal(a, b)

    def test_distinct_names_distinct_streams(self):
        f = RngFactory(7)
        a = f.stream("sampler").integers(0, 1 << 30, size=8)
        b = f.stream("precharac").integers(0, 1 << 30, size=8)
        assert not np.array_equal(a, b)

    def test_distinct_seeds_distinct_streams(self):
        a = RngFactory(1).stream("x").integers(0, 1 << 30, size=8)
        b = RngFactory(2).stream("x").integers(0, 1 << 30, size=8)
        assert not np.array_equal(a, b)

    def test_child_factories_independent(self):
        f = RngFactory(7)
        a = f.child("engine").stream("x").integers(0, 1 << 30, size=8)
        b = f.child("charac").stream("x").integers(0, 1 << 30, size=8)
        assert not np.array_equal(a, b)
