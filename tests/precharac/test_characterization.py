"""Tests for the orchestrated pre-characterization (uses small_context)."""

import pytest

from repro.errors import CharacterizationError
from repro.precharac.characterization import (
    CharacterizationConfig,
    classify_registers,
    precharacterize,
)
from repro.precharac.lifetime import LifetimeCampaign, RegisterCharacter


class TestClassification:
    def make_campaign(self, entries):
        campaign = LifetimeCampaign(horizon=100)
        for (reg, bit), (life, cont) in entries.items():
            campaign.results[(reg, bit)] = RegisterCharacter(
                register=reg,
                bit=bit,
                lifetime=life,
                contamination=cont,
                ever_masked=life < 100,
            )
        return campaign

    def test_split_by_lifetime_and_contamination(self):
        campaign = self.make_campaign(
            {
                ("cfg", 0): (100.0, 0.0),   # memory-type
                ("cfg", 1): (100.0, 9.0),   # long-lived but contaminating
                ("pipe", 0): (3.0, 1.0),    # short-lived
            }
        )
        memory, computation = classify_registers(
            campaign, CharacterizationConfig(lifetime_horizon=100)
        )
        assert ("cfg", 0) in memory
        assert ("cfg", 1) in computation
        assert ("pipe", 0) in computation


class TestSystemCharacterization:
    def test_majority_of_bits_memory_type(self, small_context):
        """Paper Fig. 4: more than half the characterized registers are
        memory-type (long lifetime, ~zero contamination)."""
        ch = small_context.characterization
        n_mem, n_comp = len(ch.memory_type), len(ch.computation_type)
        assert n_mem + n_comp > 200
        assert n_mem > (n_mem + n_comp) / 2

    def test_decision_registers_are_computation_type(self, small_context):
        ch = small_context.characterization
        assert ch.is_memory_type("cfg_base5", 3)
        assert not ch.is_memory_type("viol_q", 0)
        assert not ch.is_memory_type("req_addr", 0)

    def test_omega_frames_match_window(self, small_context):
        ch = small_context.characterization
        assert ch.omega_nodes(0)
        assert ch.omega_nodes(ch.config.max_frame)
        assert ch.omega_nodes(ch.config.max_frame + 1) == set()

    def test_L_for_registers_is_their_lifetime(self, small_context):
        ch = small_context.characterization
        nid = ch.netlist.register_dff("cfg_base5", 3).nid
        assert ch.L(nid) == ch.lifetime.lifetime_of("cfg_base5", 3)

    def test_L_for_comb_gates_is_max_latching(self, small_context):
        """The gate feeding viol_q's D pin can only latch into viol_q, so
        its L equals viol_q's lifetime; gates feeding config bits inherit
        the long config lifetime."""
        ch = small_context.characterization
        nl = ch.netlist
        viol_q = nl.register_dff("viol_q", 0)
        viol_d = viol_q.fanins[0]
        assert ch.L(viol_d) >= ch.lifetime.lifetime_of("viol_q", 0)
        cfg = nl.register_dff("cfg_base5", 3)
        cfg_d = cfg.fanins[0]
        assert ch.L(cfg_d) == ch.lifetime.lifetime_of("cfg_base5", 3)

    def test_sample_space_profile_shrinks(self, small_context):
        """Fig. 8(b): cone registers are a strict subset of all registers,
        computation-type cone registers a further subset."""
        profile = small_context.characterization.sample_space_profile(8)
        for frame in range(1, 9):
            assert profile["cone_registers"][frame] < profile["total"][frame]
            assert (
                profile["cone_computation_registers"][frame]
                <= profile["cone_registers"][frame]
            )
        # deep frames: only long-lived (memory-type) registers remain
        assert profile["cone_computation_registers"][8] < 30

    def test_cone_register_bits_listing(self, small_context):
        bits = small_context.characterization.cone_register_bits()
        assert ("viol_q", 0) in bits
        assert ("cfg_top0", 12) in bits

    def test_memory_type_registers_whole(self, small_context):
        regs = small_context.characterization.memory_type_registers()
        assert "cfg_base5" in regs
        assert "viol_q" not in regs

    def test_requires_responding_signals(self, small_context):
        with pytest.raises(CharacterizationError):
            precharacterize(
                small_context.netlist, [], small_context.mpu_trace, None, 100
            )
