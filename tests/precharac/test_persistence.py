"""Round-trip tests for characterization persistence."""

import json

import pytest

from repro.errors import CharacterizationError
from repro.precharac.persistence import (
    load_characterization,
    save_characterization,
)
from repro.soc.memmap import MemoryMap
from repro.soc.mpu import build_mpu_netlist


class TestRoundTrip:
    def test_roundtrip_preserves_everything_used(self, small_context, tmp_path):
        ch = small_context.characterization
        path = tmp_path / "charac.json"
        save_characterization(ch, path)
        loaded = load_characterization(path, small_context.netlist)

        assert loaded.responding == ch.responding
        assert loaded.memory_type == ch.memory_type
        assert loaded.computation_type == ch.computation_type
        assert loaded.signatures.correlations == ch.signatures.correlations
        assert loaded.lifetime.horizon == ch.lifetime.horizon
        assert loaded.lifetime.results.keys() == ch.lifetime.results.keys()
        for frame in range(ch.config.max_frame + 1):
            assert loaded.omega_nodes(frame) == ch.omega_nodes(frame)
        for node in small_context.netlist.nodes:
            assert loaded.L(node.nid) == ch.L(node.nid)

    def test_loaded_characterization_drives_sampler(
        self, small_context, tmp_path
    ):
        from repro import ImportanceSampler, default_attack_spec

        path = tmp_path / "charac.json"
        save_characterization(small_context.characterization, path)
        loaded = load_characterization(path, small_context.netlist)
        spec = default_attack_spec(small_context, window=10)
        fresh = ImportanceSampler(
            spec, small_context.characterization,
            placement=small_context.placement,
        )
        restored = ImportanceSampler(
            spec, loaded, placement=small_context.placement
        )
        for t in spec.temporal.support():
            assert fresh.g_T(t) == pytest.approx(restored.g_T(t))


class TestGuards:
    def test_wrong_netlist_rejected(self, small_context, tmp_path):
        path = tmp_path / "charac.json"
        save_characterization(small_context.characterization, path)
        other = build_mpu_netlist(MemoryMap(n_mpu_regions=4))
        with pytest.raises(CharacterizationError):
            load_characterization(path, other)

    def test_bad_version_rejected(self, small_context, tmp_path):
        path = tmp_path / "charac.json"
        save_characterization(small_context.characterization, path)
        payload = json.loads(path.read_text())
        payload["version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(CharacterizationError):
            load_characterization(path, small_context.netlist)

    def test_missing_file_rejected(self, small_context, tmp_path):
        with pytest.raises(CharacterizationError):
            load_characterization(tmp_path / "nope.json", small_context.netlist)

    def test_corrupt_json_rejected(self, small_context, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(CharacterizationError):
            load_characterization(path, small_context.netlist)
