"""Round-trip tests for characterization persistence."""

import json

import pytest

from repro.errors import CharacterizationError
from repro.precharac.persistence import (
    load_characterization,
    save_characterization,
)
from repro.soc.memmap import MemoryMap
from repro.soc.mpu import build_mpu_netlist


class TestRoundTrip:
    def test_roundtrip_preserves_everything_used(self, small_context, tmp_path):
        ch = small_context.characterization
        path = tmp_path / "charac.json"
        save_characterization(ch, path)
        loaded = load_characterization(path, small_context.netlist)

        assert loaded.responding == ch.responding
        assert loaded.memory_type == ch.memory_type
        assert loaded.computation_type == ch.computation_type
        assert loaded.signatures.correlations == ch.signatures.correlations
        assert loaded.lifetime.horizon == ch.lifetime.horizon
        assert loaded.lifetime.results.keys() == ch.lifetime.results.keys()
        for frame in range(ch.config.max_frame + 1):
            assert loaded.omega_nodes(frame) == ch.omega_nodes(frame)
        for node in small_context.netlist.nodes:
            assert loaded.L(node.nid) == ch.L(node.nid)

    def test_loaded_characterization_drives_sampler(
        self, small_context, tmp_path
    ):
        from repro import ImportanceSampler, default_attack_spec

        path = tmp_path / "charac.json"
        save_characterization(small_context.characterization, path)
        loaded = load_characterization(path, small_context.netlist)
        spec = default_attack_spec(small_context, window=10)
        fresh = ImportanceSampler(
            spec, small_context.characterization,
            placement=small_context.placement,
        )
        restored = ImportanceSampler(
            spec, loaded, placement=small_context.placement
        )
        for t in spec.temporal.support():
            assert fresh.g_T(t) == pytest.approx(restored.g_T(t))


class TestFieldFidelity:
    """The derived quantities the samplers consume must survive the trip
    bit-for-bit, not just structurally."""

    @pytest.fixture()
    def loaded(self, small_context, tmp_path):
        path = tmp_path / "charac.json"
        save_characterization(small_context.characterization, path)
        return load_characterization(path, small_context.netlist)

    def test_correlation_values_exact(self, small_context, loaded):
        ch = small_context.characterization
        assert loaded.signatures.correlations
        for key, value in ch.signatures.correlations.items():
            assert loaded.signatures.correlations[key] == value
        assert loaded.signatures.n_cycles == ch.signatures.n_cycles

    def test_register_characters_exact(self, small_context, loaded):
        ch = small_context.characterization
        assert loaded.lifetime.results
        for key, char in ch.lifetime.results.items():
            restored = loaded.lifetime.results[key]
            assert restored.register == char.register
            assert restored.bit == char.bit
            assert restored.lifetime == char.lifetime
            assert restored.contamination == char.contamination
            assert restored.ever_masked == char.ever_masked
            assert restored.trials == char.trials

    def test_node_lifetime_exact(self, small_context, loaded):
        ch = small_context.characterization
        for node in small_context.netlist.nodes:
            assert loaded.node_lifetime[node.nid] == ch.node_lifetime[node.nid]

    def test_config_preserved(self, small_context, loaded):
        assert loaded.config == small_context.characterization.config


class TestGuards:
    def test_wrong_netlist_rejected(self, small_context, tmp_path):
        path = tmp_path / "charac.json"
        save_characterization(small_context.characterization, path)
        other = build_mpu_netlist(MemoryMap(n_mpu_regions=4))
        with pytest.raises(CharacterizationError):
            load_characterization(path, other)

    def test_bad_version_rejected(self, small_context, tmp_path):
        path = tmp_path / "charac.json"
        save_characterization(small_context.characterization, path)
        payload = json.loads(path.read_text())
        payload["version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(CharacterizationError):
            load_characterization(path, small_context.netlist)

    def test_missing_file_rejected(self, small_context, tmp_path):
        with pytest.raises(CharacterizationError):
            load_characterization(tmp_path / "nope.json", small_context.netlist)

    def test_corrupt_json_rejected(self, small_context, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(CharacterizationError):
            load_characterization(path, small_context.netlist)

    def test_tampered_node_count_rejected(self, small_context, tmp_path):
        path = tmp_path / "charac.json"
        save_characterization(small_context.characterization, path)
        payload = json.loads(path.read_text())
        payload["fingerprint"]["n_nodes"] += 1
        path.write_text(json.dumps(payload))
        with pytest.raises(CharacterizationError):
            load_characterization(path, small_context.netlist)

    def test_tampered_register_manifest_rejected(self, small_context, tmp_path):
        path = tmp_path / "charac.json"
        save_characterization(small_context.characterization, path)
        payload = json.loads(path.read_text())
        payload["fingerprint"]["registers"]["phantom_reg"] = 8
        path.write_text(json.dumps(payload))
        with pytest.raises(CharacterizationError):
            load_characterization(path, small_context.netlist)
