"""Tests for switching signatures and bit-flip correlation extraction."""

import pytest

from repro.errors import CharacterizationError
from repro.netlist.cones import ConeExtractor
from repro.precharac.signatures import (
    analyze_signatures,
    compute_signatures,
    correlate_cones,
)
from repro.soc.mpu import default_responding_signals
from repro.soc.programs import reconfig_workload, synthetic_workload
from repro.soc.soc import Soc


@pytest.fixture(scope="module")
def synthetic_trace():
    bench = synthetic_workload(seed=11)
    soc = Soc()
    soc.load_program(bench.program.words)
    soc.reset()
    soc.record_mpu_trace = True
    soc.run_until_halt()
    return list(soc.mpu_trace)


@pytest.fixture(scope="module")
def reconfig_trace():
    bench = reconfig_workload(seed=12)
    soc = Soc()
    soc.load_program(bench.program.words)
    soc.reset()
    soc.record_mpu_trace = True
    soc.run_until_halt()
    return list(soc.mpu_trace)


class TestComputeSignatures:
    def test_every_node_has_a_signature(self, mpu_netlist, synthetic_trace):
        sigs = compute_signatures(mpu_netlist, synthetic_trace)
        assert len(sigs) == len(mpu_netlist)
        n_cycles = len(synthetic_trace)
        assert all(sig.length == n_cycles for sig in sigs.values())

    def test_constants_never_switch(self, mpu_netlist, synthetic_trace):
        sigs = compute_signatures(mpu_netlist, synthetic_trace)
        for node in mpu_netlist.nodes:
            if node.kind.value in ("const0", "const1"):
                assert sigs[node.nid].popcount() == 0

    def test_live_request_registers_switch(self, mpu_netlist, synthetic_trace):
        sigs = compute_signatures(mpu_netlist, synthetic_trace)
        req0 = mpu_netlist.register_dff("req_addr", 0).nid
        assert sigs[req0].popcount() > 0

    def test_static_cfg_bits_do_not_switch(self, mpu_netlist, synthetic_trace):
        """In the static workload the configuration is written once at boot
        and never toggled again afterwards."""
        sigs = compute_signatures(mpu_netlist, synthetic_trace)
        cfg = mpu_netlist.register_dff("cfg_top0", 12).nid
        assert sigs[cfg].popcount() <= 1  # at most the boot write

    def test_empty_trace_rejected(self, mpu_netlist):
        with pytest.raises(CharacterizationError):
            compute_signatures(mpu_netlist, [])


class TestCorrelation:
    def test_decision_cone_correlates(self, mpu_netlist, synthetic_trace):
        responding = default_responding_signals(mpu_netlist)
        cones = ConeExtractor(mpu_netlist).extract_many(
            responding, max_fanin_depth=4
        )
        analysis = analyze_signatures(
            mpu_netlist, cones, synthetic_trace, responding
        )
        # the gate driving viol_q's D pin must be strongly correlated
        viol_d = mpu_netlist.node(
            mpu_netlist.register_dff("viol_q", 0).nid
        ).fanins[0]
        assert analysis.corr(viol_d, 0) > 0.5

    def test_correlations_bounded(self, mpu_netlist, synthetic_trace):
        responding = default_responding_signals(mpu_netlist)
        cones = ConeExtractor(mpu_netlist).extract_many(
            responding, max_fanin_depth=4
        )
        analysis = analyze_signatures(
            mpu_netlist, cones, synthetic_trace, responding
        )
        assert analysis.correlations
        for value in analysis.correlations.values():
            assert 0.0 <= value <= 1.0

    def test_reconfig_excites_critical_cfg_bits(
        self, mpu_netlist, reconfig_trace
    ):
        """The excitation workload must give the decision-critical
        configuration bits non-zero correlation at some frame, while bits
        the layouts never change stay at zero."""
        responding = default_responding_signals(mpu_netlist)
        cones = ConeExtractor(mpu_netlist).extract_many(
            responding, max_fanin_depth=12
        )
        analysis = analyze_signatures(
            mpu_netlist, cones, reconfig_trace, responding
        )
        critical = mpu_netlist.register_dff("cfg_top0", 12).nid
        assert any(
            analysis.corr(critical, f) > 0.0 for f in range(1, 13)
        )
        neutral = mpu_netlist.register_dff("cfg_base3", 7).nid
        assert all(
            analysis.corr(neutral, f) == 0.0 for f in range(0, 13)
        )

    def test_silent_nodes_have_no_entry(self, mpu_netlist, synthetic_trace):
        responding = default_responding_signals(mpu_netlist)
        cones = ConeExtractor(mpu_netlist).extract_many(
            responding, max_fanin_depth=3
        )
        sigs = compute_signatures(mpu_netlist, synthetic_trace)
        corr = correlate_cones(mpu_netlist, cones, sigs, responding)
        for (nid, _frame) in corr:
            assert sigs[nid].popcount() > 0
