"""Tests for the error lifetime / contamination campaign."""

import pytest

from repro.errors import CharacterizationError
from repro.precharac.lifetime import run_lifetime_campaign
from repro.soc.programs import synthetic_workload
from repro.soc.soc import Soc


@pytest.fixture(scope="module")
def campaign():
    bench = synthetic_workload(seed=11)
    soc = Soc()
    soc.load_program(bench.program.words)
    soc.reset()
    n_cycles = soc.run_until_halt() + 10
    bits = [
        ("cfg_top0", 12),     # static config: error lives forever
        ("cfg_base5", 3),     # disabled-region config: forever, no effect
        ("req_addr", 4),      # overwritten by the next request
        ("req_valid", 0),
        ("viol_q", 0),
        ("sticky_flag", 0),   # sticky: never cleared in this workload
    ]
    return run_lifetime_campaign(
        soc, n_cycles, bits, horizon=60, n_trials=2, seed=3
    )


class TestLifetimeCampaign:
    def test_static_config_never_masks(self, campaign):
        char = campaign.results[("cfg_base5", 3)]
        assert char.lifetime == campaign.horizon
        assert not char.ever_masked
        assert char.contamination == 0.0

    def test_pipeline_registers_mask_quickly(self, campaign):
        char = campaign.results[("req_addr", 4)]
        assert char.lifetime < campaign.horizon / 2
        assert char.ever_masked

    def test_decision_register_shorter_lived_than_config(self, campaign):
        viol = campaign.results[("viol_q", 0)]
        cfg = campaign.results[("cfg_base5", 3)]
        assert viol.lifetime < cfg.lifetime
        assert viol.ever_masked

    def test_sticky_flag_zero_contamination(self, campaign):
        # A flipped sticky flag never propagates anywhere (nothing reads
        # it in this workload); it only converges once the golden run sets
        # the flag itself.
        char = campaign.results[("sticky_flag", 0)]
        assert char.contamination == 0.0
        assert char.lifetime > campaign.results[("req_addr", 4)].lifetime

    def test_register_means_aggregation(self, campaign):
        means = campaign.register_means()
        assert means["cfg_base5"][0] == campaign.horizon

    def test_histogram_values(self, campaign):
        values = campaign.histogram("lifetime")["values"]
        assert len(values) == len(campaign.results)
        with pytest.raises(CharacterizationError):
            campaign.histogram("bogus")

    def test_lifetime_of_unknown_bit_is_zero(self, campaign):
        assert campaign.lifetime_of("nope", 0) == 0.0


class TestValidation:
    def test_horizon_too_long_rejected(self):
        soc = Soc()
        soc.load_program(synthetic_workload(seed=1).program.words)
        with pytest.raises(CharacterizationError):
            run_lifetime_campaign(soc, 50, [("viol_q", 0)], horizon=60)
