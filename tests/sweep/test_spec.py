"""Unit tests for SweepSpec validation, expansion, and serialization."""

import json

import pytest

from repro.errors import SweepError
from repro.sweep import (
    SweepSpec,
    VALID_AXES,
    load_sweep_spec,
)

BASE = {
    "benchmark": "write",
    "sampler": "random",
    "chunk_size": 20,
    "stopping": {"mode": "fixed", "n_samples": 40},
}


def make_spec(**kwargs):
    kwargs.setdefault("base", dict(BASE))
    kwargs.setdefault("axes", {"variant": ("none", "parity")})
    return SweepSpec(**kwargs)


class TestValidation:
    def test_unknown_axis_names_the_valid_ones(self):
        with pytest.raises(SweepError) as excinfo:
            make_spec(axes={"windw": (1, 2)})
        message = str(excinfo.value)
        assert "unknown sweep axis 'windw'" in message
        for name in ("variant", "window", "stopping.n_samples"):
            assert name in message

    def test_non_semantic_axis_is_rejected(self):
        # batch/trace/telemetry/... are excluded from the spec hash, so
        # an axis over them would collapse to one cached point.
        with pytest.raises(SweepError, match="excluded from the spec hash"):
            make_spec(axes={"batch": (True, False)})

    def test_empty_axis_is_rejected(self):
        with pytest.raises(SweepError, match="non-empty list"):
            make_spec(axes={"window": ()})

    def test_no_axes_is_rejected(self):
        with pytest.raises(SweepError, match="at least one axis"):
            make_spec(axes={})

    def test_unknown_base_field_names_the_valid_ones(self):
        with pytest.raises(SweepError) as excinfo:
            make_spec(base={"benchmrk": "write"})
        message = str(excinfo.value)
        assert "unknown campaign field 'benchmrk'" in message
        assert "benchmark" in message

    def test_unknown_document_field_is_rejected(self):
        with pytest.raises(SweepError, match="unknown sweep field 'axis'"):
            SweepSpec.from_dict(
                {"axes": {"window": [1]}, "axis": {"window": [1]}}
            )

    def test_invalid_point_error_names_the_point(self):
        spec = make_spec(axes={"sampler": ("random", "bogus")})
        with pytest.raises(
            SweepError, match=r"sweep point \(sampler=bogus\)"
        ):
            spec.expand()

    def test_negative_regression_margin_rejected(self):
        with pytest.raises(SweepError, match="regression_margin"):
            make_spec(regression_margin=-0.1)

    def test_non_semantic_fields_allowed_in_base(self):
        # They configure execution without forking points.
        spec = make_spec(base={**BASE, "batch": False, "trace": True})
        assert spec.expand().points


class TestExpansion:
    def test_cartesian_order_last_axis_fastest(self):
        spec = make_spec(
            axes={"variant": ("none", "parity"), "window": (10, 20)}
        )
        labels = [point.label for point in spec.expand().points]
        assert labels == [
            "variant=none,window=10",
            "variant=none,window=20",
            "variant=parity,window=10",
            "variant=parity,window=20",
        ]

    def test_overrides_reach_the_campaign_spec(self):
        spec = make_spec(
            axes={"window": (17,), "stopping.n_samples": (60,)}
        )
        (point,) = spec.expand().points
        assert point.spec.window == 17
        assert point.spec.stopping.n_samples == 60
        assert point.spec.stopping.mode == "fixed"  # base preserved
        assert point.spec.chunk_size == 20

    def test_indexes_are_contiguous(self):
        spec = make_spec(axes={"seed": (1, 2, 3)})
        assert [p.index for p in spec.expand().points] == [0, 1, 2]

    def test_variant_aliases_collapse_to_one_point(self):
        # "dual+parity" and "parity+dual" normalize to one variant, so
        # they share a spec hash and expansion keeps the first.
        spec = make_spec(axes={"variant": ("dual+parity", "parity+dual")})
        plan = spec.expand()
        assert len(plan.points) == 1
        assert plan.n_raw == 2
        assert plan.n_duplicates == 1
        assert plan.points[0].label == "variant=dual+parity"

    def test_valid_axes_cover_stopping_fields(self):
        assert "stopping.n_samples" in VALID_AXES
        assert "stopping.epsilon" in VALID_AXES


class TestSweepHash:
    def test_axis_declaration_order_does_not_matter(self):
        a = make_spec(
            axes={"variant": ("none", "parity"), "window": (10, 20)}
        )
        b = make_spec(
            axes={"window": (10, 20), "variant": ("none", "parity")}
        )
        assert a.sweep_hash() == b.sweep_hash()

    def test_different_values_change_the_hash(self):
        a = make_spec(axes={"window": (10, 20)})
        b = make_spec(axes={"window": (10, 30)})
        assert a.sweep_hash() != b.sweep_hash()


class TestSerialization:
    def test_file_round_trip(self, tmp_path):
        spec = make_spec(
            axes={"variant": ("none", "parity"), "seed": (1, 2)},
            baseline_report="base.json",
            regression_margin=0.01,
        )
        path = tmp_path / "sweep.json"
        path.write_text(spec.to_json())
        loaded = load_sweep_spec(path)
        assert loaded.to_dict() == spec.to_dict()
        assert loaded.sweep_hash() == spec.sweep_hash()

    def test_missing_file_raises_sweep_error(self, tmp_path):
        with pytest.raises(SweepError, match="cannot load sweep spec"):
            load_sweep_spec(tmp_path / "nope.json")

    def test_corrupt_file_raises_sweep_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SweepError, match="cannot load sweep spec"):
            load_sweep_spec(path)

    def test_non_object_document_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text(json.dumps([1, 2]))
        with pytest.raises(SweepError, match="JSON object"):
            load_sweep_spec(path)
