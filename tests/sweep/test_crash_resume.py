"""Sweep crash-safety: SIGKILL the coordinator, restart, bit-identical
report.

Two kill windows, mirroring ``tests/service/test_crash_resume.py``:

* **mid-fan-out** — the coordinator dies with only a prefix of the
  design space submitted (``fanout_batch=1`` plus a per-batch delay
  widens the window);
* **mid-aggregation** — every member job is terminal but ``report.json``
  has not been written yet (``report_delay_s`` widens the window).

In both cases the parent restarts the sweep over the same directories
and the finished report must be byte-identical to a reference sweep
that was never interrupted: resume is a plain re-run, with the
service's content-addressed dedup absorbing every resubmission.
"""

import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.service import EvaluationService, ServiceClient, ServiceServer
from repro.sweep import SweepRunner, SweepSpec, SweepStore

from tests.campaign.stubs import BernoulliEngine, StubSampler

pytestmark = pytest.mark.skipif(
    not hasattr(signal, "SIGKILL"), reason="needs POSIX SIGKILL"
)

SWEEP = SweepSpec(
    name="crash-sweep",
    base={
        "benchmark": "write",
        "sampler": "random",
        "chunk_size": 20,
        "stopping": {"mode": "fixed", "n_samples": 60},
    },
    axes={
        "variant": ("none", "parity"),
        "seed": (1, 2, 3),
    },
)

N_POINTS = 6

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent

CHILD_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
sys.path.insert(0, {root!r})
from repro.service import EvaluationService, ServiceClient, ServiceServer
from repro.sweep import SweepRunner, SweepStore
from tests.campaign.stubs import BernoulliEngine, StubSampler
from tests.sweep.test_crash_resume import SWEEP

service = EvaluationService(
    {runs_dir!r},
    max_concurrency=2,
    engine_factory=lambda spec: (
        BernoulliEngine(p=0.3, delay_s=0.1), StubSampler()
    ),
)
server = ServiceServer(service, port=0)
server.start()
store = SweepStore.create({sweeps_dir!r}, SWEEP, sweep_id="crash")
SweepRunner(
    SWEEP,
    store,
    ServiceClient(server.url),
    poll_s=0.05,
    fanout_batch=1,
    fanout_delay_s={fanout_delay_s},
    report_delay_s={report_delay_s},
).run()
"""


def stub_factory(spec):
    return BernoulliEngine(p=0.3, delay_s=0.1), StubSampler()


def reference_report(tmp_path) -> str:
    """Uninterrupted sweep in pristine directories."""
    service = EvaluationService(
        tmp_path / "ref-runs", max_concurrency=2, engine_factory=stub_factory
    )
    server = ServiceServer(service, port=0)
    server.start()
    try:
        store = SweepStore.create(
            tmp_path / "ref-sweeps", SWEEP, sweep_id="ref"
        )
        SweepRunner(
            SWEEP, store, ServiceClient(server.url), poll_s=0.05
        ).run()
        return store.read_report_text()
    finally:
        server.stop(cancel_running=True)


def spawn_child(tmp_path, fanout_delay_s, report_delay_s):
    script = CHILD_SCRIPT.format(
        src=str(REPO_ROOT / "src"),
        root=str(REPO_ROOT),
        runs_dir=str(tmp_path / "runs"),
        sweeps_dir=str(tmp_path / "sweeps"),
        fanout_delay_s=fanout_delay_s,
        report_delay_s=report_delay_s,
    )
    return subprocess.Popen([sys.executable, "-c", script])


def kill_when(child, predicate, timeout_s=60.0):
    """SIGKILL the child once ``predicate()`` is true."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if child.poll() is not None:
            raise AssertionError(
                f"child exited on its own (rc={child.returncode}) "
                "before the kill window"
            )
        if predicate():
            os.kill(child.pid, signal.SIGKILL)
            child.wait(timeout=30)
            assert child.returncode == -signal.SIGKILL
            return
        time.sleep(0.02)
    raise AssertionError("kill window never opened")


def resume_and_report(tmp_path) -> str:
    """Restart the sweep in-process over the same directories."""
    service = EvaluationService(
        tmp_path / "runs", max_concurrency=2, engine_factory=stub_factory
    )
    server = ServiceServer(service, port=0)
    server.start()
    try:
        store = SweepStore.open(tmp_path / "sweeps", "crash")
        SweepRunner(
            SWEEP, store, ServiceClient(server.url), poll_s=0.05
        ).run()
        return store.read_report_text()
    finally:
        server.stop(cancel_running=True)


class TestSweepCrashResume:
    def test_sigkill_mid_fan_out_resumes_to_identical_report(
        self, tmp_path
    ):
        reference = reference_report(tmp_path)
        points_log = tmp_path / "sweeps" / "crash" / "points.jsonl"

        child = spawn_child(
            tmp_path, fanout_delay_s=0.4, report_delay_s=0.0
        )

        def partial_fan_out():
            if not points_log.exists():
                return False
            lines = [
                l for l in points_log.read_text().splitlines() if l
            ]
            return len(lines) >= 2

        try:
            kill_when(child, partial_fan_out)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=30)

        # Mid-fan-out: only a prefix of the design space was submitted.
        store = SweepStore.open(tmp_path / "sweeps", "crash")
        assert 0 < len(store.read_points()) < N_POINTS
        assert store.read_report_text() is None

        assert resume_and_report(tmp_path) == reference

    def test_sigkill_mid_aggregation_resumes_to_identical_report(
        self, tmp_path
    ):
        reference = reference_report(tmp_path)

        child = spawn_child(
            tmp_path, fanout_delay_s=0.0, report_delay_s=30.0
        )
        store_path = tmp_path / "sweeps" / "crash"

        def all_done_no_report():
            if (store_path / "report.json").exists():
                return False
            if not (store_path / "points.jsonl").exists():
                return False
            points = SweepStore(store_path).read_points()
            return len(points) == N_POINTS and all(
                p.get("state") == "done" for p in points.values()
            )

        try:
            kill_when(child, all_done_no_report)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=30)

        # Mid-aggregation: every member finished, no report written.
        store = SweepStore.open(tmp_path / "sweeps", "crash")
        assert len(store.read_points()) == N_POINTS
        assert store.read_report_text() is None

        assert resume_and_report(tmp_path) == reference
