"""Hypothesis properties of design-space expansion and the Pareto front.

Pinned invariants (ISSUE 10):

* expansion is deterministic and order-stable;
* every expanded point carries a distinct ``spec_hash``;
* duplicate points collapse (same digest set, first occurrence wins);
* the Pareto front is invariant under point reordering.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sweep import pareto_front

from tests.strategies import sweep_specs


@given(sweep_specs())
@settings(max_examples=40, deadline=None)
def test_expansion_is_deterministic_and_order_stable(spec):
    first = spec.expand()
    second = spec.expand()
    assert [
        (p.index, p.label, p.digest, p.overrides) for p in first.points
    ] == [
        (p.index, p.label, p.digest, p.overrides) for p in second.points
    ]
    assert first.n_raw == second.n_raw
    assert [p.index for p in first.points] == list(range(len(first.points)))


@given(sweep_specs())
@settings(max_examples=40, deadline=None)
def test_every_point_has_a_distinct_spec_hash(spec):
    digests = [p.digest for p in spec.expand().points]
    assert len(digests) == len(set(digests))


@given(sweep_specs())
@settings(max_examples=40, deadline=None)
def test_duplicate_axis_values_collapse_to_the_same_points(spec):
    axes = {name: tuple(values) for name, values in spec.axes.items()}
    name = next(iter(axes))
    axes[name] = axes[name] + (axes[name][0],)  # repeat one value
    doubled = dataclasses.replace(spec, axes=axes)

    base_plan = spec.expand()
    doubled_plan = doubled.expand()
    assert {p.digest for p in doubled_plan.points} == {
        p.digest for p in base_plan.points
    }
    assert doubled_plan.n_raw > base_plan.n_raw
    assert doubled_plan.n_duplicates > base_plan.n_duplicates


@st.composite
def pareto_rows(draw):
    """Synthetic report point rows with drawn (area, ssf) coordinates."""
    n = draw(st.integers(1, 12))
    coord = st.floats(
        min_value=0.0, max_value=10.0,
        allow_nan=False, allow_infinity=False,
    )
    return [
        {
            "label": f"p{i}",
            "area_um2": draw(coord),
            "ssf": draw(coord),
        }
        for i in range(n)
    ]


@given(pareto_rows(), st.randoms())
@settings(max_examples=80, deadline=None)
def test_pareto_front_is_invariant_under_reordering(rows, rng):
    front = pareto_front(rows)
    shuffled = list(rows)
    rng.shuffle(shuffled)
    assert pareto_front(shuffled) == front


@given(pareto_rows())
@settings(max_examples=80, deadline=None)
def test_pareto_front_members_are_undominated(rows):
    front = set(pareto_front(rows))
    assert front, "a non-empty point set always has a Pareto front"
    by_label = {row["label"]: row for row in rows}
    for label in front:
        row = by_label[label]
        dominators = [
            other
            for other in rows
            if other["area_um2"] <= row["area_um2"]
            and other["ssf"] <= row["ssf"]
            and (
                other["area_um2"] < row["area_um2"]
                or other["ssf"] < row["ssf"]
            )
        ]
        assert not dominators
