"""SweepRunner against an embedded evaluation service (stub engine).

Covers the tentpole acceptance path: an 8-point design space executes
through the service job queue, a second identical invocation is served
entirely from the content-addressed result cache, and the comparative
report carries per-point SSF ± CI, a Pareto table, and a regression
verdict against a pinned baseline.
"""

import json

import pytest

from repro.errors import EvaluationError, SweepError
from repro.obs.sweep_metrics import sweep_cache_hit_ratio
from repro.service import (
    EvaluationService,
    ServiceClient,
    ServiceServer,
)
from repro.sweep import (
    SweepRunner,
    SweepSpec,
    SweepStore,
    report_json,
    sweep_status,
)

from tests.campaign.stubs import BernoulliEngine, StubSampler

SWEEP = SweepSpec(
    name="hardening-sweep",
    base={
        "benchmark": "write",
        "sampler": "random",
        "chunk_size": 20,
        "stopping": {"mode": "fixed", "n_samples": 40},
    },
    axes={
        "variant": ("none", "parity"),
        "window": (40, 50),
        "seed": (1, 2),
    },
)


def stub_factory(spec):
    return BernoulliEngine(p=0.3), StubSampler()


@pytest.fixture()
def server(tmp_path):
    service = EvaluationService(
        tmp_path / "runs", max_concurrency=2, engine_factory=stub_factory
    )
    server = ServiceServer(service, port=0)
    server.start()
    yield server
    server.stop(cancel_running=True)


def run_sweep(server, tmp_path, sweep_id, spec=SWEEP, **kwargs):
    store = SweepStore.create(tmp_path / "sweeps", spec, sweep_id=sweep_id)
    runner = SweepRunner(
        spec,
        store,
        ServiceClient(server.url),
        poll_s=0.05,
        timeout_s=120.0,
        **kwargs,
    )
    return runner, store, runner.run()


class TestSweepExecution:
    def test_eight_points_execute_through_the_service_queue(
        self, server, tmp_path
    ):
        runner, store, report = run_sweep(server, tmp_path, "cold")
        assert report["n_points"] == 8
        assert len(server.service.jobs) == 8
        for job in server.service.jobs.values():
            assert job.state == "done"
        for row in report["points"]:
            assert row["ci_low"] <= row["ssf"] <= row["ci_high"]
            assert row["n_samples"] == 40
            assert row["area_um2"] > 0
        # parity points cost area over the baseline variant
        overhead = {
            row["axes"]["variant"]: row["area_overhead"]
            for row in report["points"]
        }
        assert overhead["none"] == 0.0
        assert overhead["parity"] > 0.0
        assert report["pareto"], "Pareto front must not be empty"
        assert report["regression"]["verdict"] == "no_baseline"

    def test_second_invocation_is_all_cache_hits(self, server, tmp_path):
        _, _, cold = run_sweep(server, tmp_path, "cold")
        runner, store, warm = run_sweep(server, tmp_path, "warm")
        status = sweep_status(store)
        assert status["n_cached"] == 8
        assert status["cache_hit_ratio"] == 1.0
        assert sweep_cache_hit_ratio(runner.metrics, "warm") == 1.0
        # The canonical report ignores cache provenance entirely.
        assert report_json(warm) == report_json(cold)

    def test_restarted_service_serves_sweep_from_durable_cache(
        self, server, tmp_path
    ):
        run_sweep(server, tmp_path, "cold")
        server.stop()
        # Fresh service over the same runs dir: fresh metrics registry,
        # warm content-addressed cache — the acceptance criterion's
        # "hit ratio 1.0 on /v1/metrics".
        service = EvaluationService(
            tmp_path / "runs", engine_factory=stub_factory
        )
        restarted = ServiceServer(service, port=0)
        restarted.start()
        try:
            _, _, _ = run_sweep(restarted, tmp_path, "warm")
            metrics = ServiceClient(restarted.url).metrics_text()
            assert "service_cache_hit_ratio 1" in metrics
        finally:
            restarted.stop(cancel_running=True)

    def test_rerun_on_same_store_returns_the_existing_report(
        self, server, tmp_path
    ):
        runner, store, report = run_sweep(server, tmp_path, "once")
        again = SweepRunner(
            SWEEP, store, ServiceClient(server.url), poll_s=0.05
        ).run()
        assert report_json(again) == report_json(report)

    def test_progress_events_stream_on_the_sweep_topic(
        self, server, tmp_path
    ):
        runner, store, _ = run_sweep(server, tmp_path, "events")
        events = [e for _, e in runner.events.events_after("events", 0)]
        kinds = [e["type"] for e in events]
        assert kinds[0] == "sweep_started"
        assert "point" in kinds
        assert "sweep_progress" in kinds
        assert kinds[-2:] == ["sweep_complete", "end"]
        started = events[0]
        assert started["n_points"] == 8

    def test_point_log_survives_for_offline_status(self, server, tmp_path):
        _, store, _ = run_sweep(server, tmp_path, "status")
        status = sweep_status(store)  # no client: durable log only
        assert status["n_submitted"] == 8
        assert status["complete"] is True
        assert status["states"]["done"] + status["states"]["cached"] == 8


class TestRegression:
    def test_pinned_baseline_verdicts(self, server, tmp_path):
        _, store, report = run_sweep(server, tmp_path, "base")
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(report_json(report))

        import dataclasses

        pinned = dataclasses.replace(
            SWEEP, baseline_report=str(baseline_path)
        )
        _, _, second = run_sweep(
            server, tmp_path, "regress", spec=pinned
        )
        regression = second["regression"]
        assert regression["verdict"] == "pass"
        assert regression["baseline"]["name"] == "hardening-sweep"
        assert len(regression["points"]) == 8
        assert all(
            row["verdict"] == "unchanged" for row in regression["points"]
        )

    def test_regressed_verdict_when_baseline_ci_is_below(
        self, server, tmp_path
    ):
        _, _, report = run_sweep(server, tmp_path, "base")
        doctored = json.loads(report_json(report))
        for row in doctored["points"]:
            row["ci_low"] = 0.0
            row["ci_high"] = 1e-9  # far below any real estimate
        baseline_path = tmp_path / "doctored.json"
        baseline_path.write_text(json.dumps(doctored))

        import dataclasses

        pinned = dataclasses.replace(
            SWEEP, baseline_report=str(baseline_path)
        )
        _, _, second = run_sweep(
            server, tmp_path, "regressed", spec=pinned
        )
        assert second["regression"]["verdict"] == "regressed"

    def test_missing_baseline_fails_before_fan_out(self, server, tmp_path):
        import dataclasses

        pinned = dataclasses.replace(
            SWEEP, baseline_report=str(tmp_path / "nope.json")
        )
        store = SweepStore.create(
            tmp_path / "sweeps", pinned, sweep_id="nobase"
        )
        runner = SweepRunner(
            pinned, store, ServiceClient(server.url), poll_s=0.05
        )
        with pytest.raises(SweepError, match="cannot load baseline"):
            runner.run()
        assert not server.service.jobs  # nothing was submitted


class TestFailurePropagation:
    def test_failed_point_fails_the_sweep_naming_the_label(self, tmp_path):
        def flaky_factory(spec):
            if spec.seed == 13:
                raise EvaluationError("injected engine failure")
            return BernoulliEngine(p=0.3), StubSampler()

        service = EvaluationService(
            tmp_path / "runs", engine_factory=flaky_factory
        )
        server = ServiceServer(service, port=0)
        server.start()
        try:
            spec = SweepSpec(
                name="flaky",
                base=dict(SWEEP.base),
                axes={"seed": (1, 13)},
            )
            store = SweepStore.create(
                tmp_path / "sweeps", spec, sweep_id="flaky"
            )
            runner = SweepRunner(
                spec, store, ServiceClient(server.url), poll_s=0.05
            )
            with pytest.raises(SweepError, match=r"\(seed=13\)"):
                runner.run()
            assert store.read_report() is None
        finally:
            server.stop(cancel_running=True)
