"""Hardening-sweep (campaign-of-campaigns) test suite."""
