"""End-to-end integration: the full pipeline on a reduced configuration.

Covers the complete paper flow in one place — context assembly,
pre-characterization, all three sampling strategies, the cross-level engine
with analytical fast path, attribution, and hardening — asserting the
paper's qualitative findings hold on the reproduced system.
"""

import pytest

from repro import (
    CrossLevelEngine,
    FaninConeSampler,
    HardeningStudy,
    ImportanceSampler,
    OutcomeCategory,
    RandomSampler,
    attribute_ssf,
    default_attack_spec,
)
from repro.analysis.patterns import pattern_statistics
from repro.core.hardening import critical_bits


@pytest.fixture(scope="module")
def campaign(small_context):
    spec = default_attack_spec(small_context, window=10)
    engine = CrossLevelEngine(small_context, spec)
    sampler = ImportanceSampler(
        spec,
        small_context.characterization,
        placement=small_context.placement,
    )
    result = engine.evaluate(sampler, n_samples=700, seed=17)
    return small_context, spec, engine, result


class TestEndToEnd:
    def test_ssf_positive_and_plausible(self, campaign):
        _ctx, _spec, _engine, result = campaign
        assert 0.0 < result.ssf < 0.5
        assert result.n_success > 0

    def test_analytical_path_used(self, campaign):
        _ctx, _spec, _engine, result = campaign
        analytical = [r for r in result.records if r.analytical]
        assert analytical
        # memory-only faults all went through the analytical evaluator
        for record in analytical:
            assert record.category == OutcomeCategory.MEMORY_ONLY

    def test_outcome_mix_matches_paper_shape(self, campaign):
        """Masked dominates; memory-only exceeds the RTL-resume bucket
        (Fig. 10(a): 68.3% / 28.6% / 3.1%).  Shape only."""
        _ctx, _spec, _engine, result = campaign
        fractions = result.category_fractions()
        assert fractions[OutcomeCategory.MASKED] > 0.35

    def test_error_patterns_multibit_present(self, campaign):
        """Fig. 7(a): single-bit errors dominate but multi-byte patterns
        exist — neither the single-bit nor the single-byte model is
        faithful."""
        _ctx, _spec, _engine, result = campaign
        stats = pattern_statistics(
            [r.flipped_bits for r in result.records],
            _ctx.netlist.register_widths(),
        )
        fr = stats.fractions()
        assert fr.get("single_bit", 0) > 0.2
        assert fr.get("multi_byte", 0) > 0.0

    def test_ssf_concentrated_in_few_bits(self, campaign):
        """The paper's headline: a few percent of registers carry almost
        all of the SSF (necessity-based attribution)."""
        ctx, _spec, engine, result = campaign
        shares = attribute_ssf(result, engine.outcome_oracle())
        assert shares
        critical = critical_bits(shares, coverage=0.95)
        total_bits = sum(ctx.netlist.register_widths().values())
        assert len(critical) / total_bits < 0.08

    def test_hardening_improves_ssf_cheaply(self, campaign):
        ctx, _spec, engine, result = campaign
        study = HardeningStudy(
            ctx.netlist, result, oracle=engine.outcome_oracle()
        )
        outcome = study.harden_for_coverage(0.95)
        assert outcome.ssf_improvement > 3.0
        assert outcome.area_overhead < 0.06


class TestStrategyComparison:
    def test_variance_ordering(self, small_context):
        """Fig. 9: importance sampling converges faster than fanin-cone
        sampling, which beats random sampling."""
        spec = default_attack_spec(small_context, window=10)
        engine = CrossLevelEngine(small_context, spec)
        ch = small_context.characterization
        n = 500
        random_result = engine.evaluate(RandomSampler(spec), n, seed=29)
        cone_result = engine.evaluate(FaninConeSampler(spec, ch), n, seed=29)
        imp_result = engine.evaluate(
            ImportanceSampler(spec, ch, placement=small_context.placement),
            n,
            seed=29,
        )
        assert imp_result.variance < random_result.variance
        assert cone_result.variance <= random_result.variance * 1.2
