"""Shared fixtures.

The expensive artifacts (elaborated MPU netlist, evaluation context with a
reduced pre-characterization) are session-scoped: they are deterministic,
read-only for most tests, and building them once keeps the suite fast.
Tests that mutate SoC state build their own instances.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.core.context import build_context
from repro.gatesim.logic import LogicEvaluator
from repro.netlist.placement import GridPlacer
from repro.precharac.characterization import CharacterizationConfig
from repro.soc.memmap import DEFAULT_MEMORY_MAP
from repro.soc.mpu import build_mpu_netlist
from repro.soc.programs import illegal_write_benchmark
from repro.soc.soc import Soc


# ----------------------------------------------------------------------
# Hypothesis profiles — select with HYPOTHESIS_PROFILE=ci|dev.
# ``ci`` is derandomized so the conformance job is reproducible run to
# run (a property failure in CI replays identically on a laptop).
# ----------------------------------------------------------------------
settings.register_profile(
    "ci",
    derandomize=True,
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture(scope="session")
def mpu_netlist():
    return build_mpu_netlist(DEFAULT_MEMORY_MAP)


@pytest.fixture(scope="session")
def mpu_evaluator(mpu_netlist):
    return LogicEvaluator(mpu_netlist)


@pytest.fixture(scope="session")
def mpu_placement(mpu_netlist):
    return GridPlacer(pitch_um=2.0, jitter=0.25, seed=7).place(mpu_netlist)


@pytest.fixture()
def soc_write_bench():
    """A fresh SoC loaded with the illegal-write benchmark."""
    bench = illegal_write_benchmark()
    soc = Soc()
    soc.load_program(bench.program.words)
    soc.reset()
    return soc, bench


SMALL_CHARAC = CharacterizationConfig(
    max_frame=12,
    lifetime_horizon=60,
    lifetime_trials=1,
    seed=5,
)


@pytest.fixture(scope="session")
def small_context():
    """Full evaluation context with a reduced (fast) characterization."""
    return build_context(
        illegal_write_benchmark(),
        charac_config=SMALL_CHARAC,
    )
