"""Legacy setup shim.

Kept so ``pip install -e . --no-use-pep517 --no-build-isolation`` works in
offline environments that lack the ``wheel`` package (PEP 660 editable
installs need it). All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
