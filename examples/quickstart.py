"""Quickstart: estimate the SSF of the illegal-memory-write attack.

Runs the complete paper pipeline on the bundled SoC:

1. build the evaluation context (golden run + checkpoints, MPU netlist,
   placement, pre-characterization);
2. define the holistic attack model (radiation spots, 50-cycle temporal
   window, sub-block spatial range);
3. run a Monte Carlo campaign with the pre-characterization-driven
   importance sampler;
4. print the SSF estimate with its convergence statistics.

Run:  python examples/quickstart.py
"""

from repro import (
    CrossLevelEngine,
    ImportanceSampler,
    build_context,
    default_attack_spec,
    illegal_write_benchmark,
)
from repro.analysis.reporting import format_table


def main() -> None:
    print("Building evaluation context (golden run + pre-characterization)...")
    context = build_context(illegal_write_benchmark())
    print(
        f"  benchmark runs {context.n_cycles} cycles; "
        f"target cycle Tt = {context.target_cycle}"
    )
    ch = context.characterization
    print(
        f"  pre-characterization: {len(ch.memory_type)} memory-type and "
        f"{len(ch.computation_type)} computation-type register bits"
    )

    spec = default_attack_spec(context, window=50)
    engine = CrossLevelEngine(context, spec)
    sampler = ImportanceSampler(
        spec, ch, placement=context.placement
    )

    print("Running 1000 fault-attack samples (importance sampling)...")
    result = engine.evaluate(sampler, n_samples=1000, seed=2024)

    rows = [
        ["SSF estimate", f"{result.ssf:.5f}"],
        ["sample variance", f"{result.variance:.3e}"],
        ["successful attacks", f"{result.n_success}/{result.n_samples}"],
        ["wall time", f"{result.wall_time_s:.1f} s"],
    ]
    for category, fraction in result.category_fractions().items():
        if fraction:
            rows.append([f"outcome: {category.value}", f"{100 * fraction:.1f} %"])
    print()
    print(format_table(["quantity", "value"], rows, title="SSF evaluation"))


if __name__ == "__main__":
    main()
