"""Scenario 2: differential fault analysis against a cipher block.

The paper's attack model covers a second target category — leaking system
information, with ``Te`` the injection time and ``Tt`` the observation
time of the (faulty) output. This example runs it end-to-end on the toy
SPN cipher: radiation spots are injected during encryption at gate level,
the faulty ciphertexts feed the classical last-round DFA, and the campaign
reports how many injections a blind vs an aimed attacker needs to recover
the whitening key.

Run:  python examples/dfa_key_recovery.py
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.scenarios import DfaCampaign
from repro.scenarios.cipher import N_KEYS


def run_campaign(label, keys, aim_at_state, n_samples, seed):
    campaign = DfaCampaign(keys)
    if aim_at_state:
        campaign.universe = [
            campaign.netlist.register_dff("state", b).nid for b in range(16)
        ]
    report = campaign.evaluate(n_samples, seed=seed)
    by_round = report.usefulness_by_round()
    return [
        label,
        f"{report.ssf:.3f}",
        f"{report.masked_fraction:.2f}",
        "yes" if report.key_recovered else "no",
        report.injections_to_recovery or "-",
        " ".join(f"r{r}:{v:.2f}" for r, v in by_round.items()),
    ], report


def main() -> None:
    rng = np.random.default_rng(2024)
    keys = [int(rng.integers(0, 1 << 16)) for _ in range(N_KEYS)]
    print(f"Secret whitening key: {keys[-1]:#06x} (the attacker's target)\n")

    rows = []
    row, blind = run_campaign("blind (whole die)", keys, False, 2500, seed=9)
    rows.append(row)
    row, aimed = run_campaign("aimed (state register)", keys, True, 2000, seed=9)
    rows.append(row)

    print(
        format_table(
            [
                "attacker",
                "P(useful pair)",
                "masked",
                "key recovered",
                "# injections",
                "usefulness by round",
            ],
            rows,
            title="DFA campaigns against the SPN cipher",
        )
    )
    for label, report in (("blind", blind), ("aimed", aimed)):
        if report.key_recovered:
            ok = report.recovered_key == keys[-1]
            print(
                f"\n{label}: recovered {report.recovered_key:#06x} "
                f"({'CORRECT' if ok else 'WRONG'}) after "
                f"{report.injections_to_recovery} injections"
            )
    print(
        "\nNote: in this 16-bit miniature, diffusion never exceeds the "
        "single-bit-per-nibble fault model, so even early-round faults "
        "leak — the 'last round only' rule of thumb is a property of "
        "full-width ciphers, and the framework measures rather than "
        "assumes it."
    )


if __name__ == "__main__":
    main()
