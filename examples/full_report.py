"""Generate a complete vulnerability-assessment report.

The design-review deliverable: one markdown document with the SSF estimate
and its confidence, the fault outcome mix, the observed error patterns,
the critical register bits (necessity-attributed), and a hardening
recommendation.

Run:  python examples/full_report.py [output.md]
"""

import sys

from repro import (
    CrossLevelEngine,
    ImportanceSampler,
    build_context,
    default_attack_spec,
    illegal_write_benchmark,
)
from repro.analysis import vulnerability_report


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "vulnerability_report.md"
    print("Building evaluation context...")
    context = build_context(illegal_write_benchmark())
    spec = default_attack_spec(context, window=50)
    engine = CrossLevelEngine(context, spec)
    sampler = ImportanceSampler(
        spec, context.characterization, placement=context.placement
    )
    print("Running the campaign (1200 samples)...")
    result = engine.evaluate(sampler, n_samples=1200, seed=7)

    report = vulnerability_report(
        context, result, oracle=engine.outcome_oracle()
    )
    with open(out_path, "w") as handle:
        handle.write(report)
    print(f"\nWrote {out_path} ({len(report.splitlines())} lines):\n")
    print(report)


if __name__ == "__main__":
    main()
