"""Compare structural MPU countermeasures end-to-end.

Evaluates the same importance-sampled attack campaign against five MPU
builds — baseline, configuration parity, dual-rail decision registers,
dual+parity, TMR+parity — and prints the measured SSF / area trade-off.
Expected phenomenology:

* parity eliminates the dominant single-bit configuration attacks
  (fail-secure violations) at the cost of parity trees and storage;
* dual-rail decision registers alone barely help: the configuration
  attacks don't touch them, and the shared check logic remains a
  common-mode path;
* the combinations stack.

Run:  python examples/countermeasure_comparison.py   (several minutes:
five full contexts are built and attacked)
"""

from repro.analysis.reporting import format_table
from repro.countermeasures import CountermeasureStudy, STANDARD_VARIANTS
from repro.soc.programs import illegal_write_benchmark


def main() -> None:
    study = CountermeasureStudy(
        illegal_write_benchmark,
        variants=STANDARD_VARIANTS,
        n_samples=800,
        window=50,
        seed=11,
    )
    print("Evaluating", len(study.variants), "MPU variants "
          "(context build + campaign each)...")
    results = []
    for variant in study.variants:
        result = study.evaluate_variant(variant)
        results.append(result)
        print(
            f"  {result.name:12s} SSF={result.ssf:.5f} "
            f"({result.n_success} successes, {result.wall_time_s:.0f}s)"
        )
    base_area = results[0].area_um2
    for result in results:
        result.area_overhead = result.area_um2 / base_area - 1.0

    print()
    print(
        format_table(
            ["countermeasure", "SSF", "# succ", "improvement", "area overhead"],
            CountermeasureStudy.table_rows(results),
            title="Structural countermeasure comparison (illegal-write benchmark)",
        )
    )


if __name__ == "__main__":
    main()
