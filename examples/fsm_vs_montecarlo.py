"""Compare the FSM-level baseline with the cross-level Monte Carlo view.

The paper positions its framework against FSM-level analyses (related work
[11], AVFSM): those are fast and exhaustive over *state encodings*, but
blind to combinational transients, latch windows, configuration-register
faults and attack-parameter uncertainty.  This example runs both on the
same platform:

1. the AVFSM-style census over the (core_state, viol_q, grant_q) machine:
   don't-care encodings and single-bit bypass faults;
2. the cross-level SSF campaign, with its per-register attribution.

The punchline reproduces the paper's motivation: the state-level census
can only see the decision registers (3 of ~330 flops), while the measured
SSF is dominated by configuration-register faults the FSM abstraction
cannot express.

Run:  python examples/fsm_vs_montecarlo.py
"""

from repro import (
    CrossLevelEngine,
    ImportanceSampler,
    attribute_ssf,
    build_context,
    default_attack_spec,
    illegal_write_benchmark,
)
from repro.analysis.reporting import format_table
from repro.fsmcheck import analyze_fsm
from repro.fsmcheck.extract import extract_fsm_from_workloads
from repro.soc import Soc
from repro.soc.programs import illegal_read_benchmark, synthetic_workload


def fsm_view() -> None:
    print("== FSM-level analysis (AVFSM-style baseline) ==\n")
    extraction = extract_fsm_from_workloads(
        Soc,
        [
            illegal_write_benchmark(),
            illegal_read_benchmark(),
            synthetic_workload(3),
        ],
        registers=["core_state", "viol_q", "grant_q"],
    )
    report = analyze_fsm(extraction, lambda s: s[1] == 1)
    summary = report.summary()
    rows = [[key, value] for key, value in summary.items()]
    print(format_table(["metric", "value"], rows))
    print("\nBypass faults found at the state level:")
    for fault in report.bypass_faults:
        print(
            f"  state {fault.from_state} --bit {fault.bit} flip--> "
            f"{fault.to_state}"
        )
    print()


def montecarlo_view() -> None:
    print("== Cross-level Monte Carlo view (this paper) ==\n")
    context = build_context(illegal_write_benchmark())
    spec = default_attack_spec(context, window=50)
    engine = CrossLevelEngine(context, spec)
    sampler = ImportanceSampler(
        spec, context.characterization, placement=context.placement
    )
    result = engine.evaluate(sampler, n_samples=1000, seed=31)
    print(f"SSF = {result.ssf:.5f} ({result.n_success} successes)\n")

    shares = attribute_ssf(result, engine.outcome_oracle())
    total = sum(shares.values()) or 1.0
    decision_regs = {"viol_q", "grant_q", "core_state"}
    fsm_share = sum(
        value for (reg, _b), value in shares.items() if reg in decision_regs
    )
    rows = [
        [f"{reg}[{bit}]", f"{100 * value / total:.1f} %"]
        for (reg, bit), value in sorted(
            shares.items(), key=lambda kv: kv[1], reverse=True
        )[:8]
    ]
    print(format_table(["register bit", "SSF share"], rows))
    print(
        f"\nSSF share on FSM-visible registers: {100 * fsm_share / total:.1f} % — "
        "the rest lives in state the FSM abstraction cannot see."
    )


def main() -> None:
    fsm_view()
    montecarlo_view()


if __name__ == "__main__":
    main()
