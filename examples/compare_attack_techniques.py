"""Compare fault-injection techniques and attacker accuracy levels.

The paper's holistic model makes the framework technique-agnostic: only the
distribution ``f_{T,P}`` and the physical injection model change.  This
example evaluates the same benchmark under

* radiation spots (the paper's primary technique),
* clock glitching, and
* supply-voltage glitching,

and then sweeps the attacker's *temporal accuracy* (how tightly the
injection cycle brackets the target cycle) — the effect the paper's
Fig. 11(a) demonstrates: a sloppier attacker dilutes the SSF.

Run:  python examples/compare_attack_techniques.py
"""

from repro import (
    AttackSpec,
    ClockGlitchTechnique,
    CrossLevelEngine,
    OutcomeCategory,
    RadiationTechnique,
    RadiusDistribution,
    SpatialDistribution,
    RandomSampler,
    TemporalDistribution,
    VoltageGlitchTechnique,
    build_context,
    default_attack_spec,
    illegal_write_benchmark,
)
from repro.analysis.reporting import format_table, normalize_series

N_SAMPLES = 600


def technique_comparison(context) -> None:
    # Radiation is a local spot; clock/voltage glitches stress the whole
    # die at once, so their spatial model is "everything within a radius
    # covering the die, centred anywhere".
    local = default_attack_spec(context, window=50)
    globl = default_attack_spec(
        context, window=50, subblock_fraction=1.0, radii_um=(500.0,)
    )
    setups = {
        "radiation (local spot)": (
            RadiationTechnique(timing=context.timing),
            local,
        ),
        "clock glitch (global)": (
            ClockGlitchTechnique(timing=context.timing, glitch_depth_ps=450.0),
            globl,
        ),
        "voltage glitch (global)": (
            VoltageGlitchTechnique(timing=context.timing, slowdown=1.6),
            globl,
        ),
    }
    rows = []
    for name, (technique, base) in setups.items():
        spec = AttackSpec(
            technique=technique,
            temporal=base.temporal,
            spatial=base.spatial,
            radius=base.radius,
        )
        engine = CrossLevelEngine(context, spec)
        result = engine.evaluate(RandomSampler(spec), N_SAMPLES, seed=7)
        faulty = 1.0 - result.category_fractions()[OutcomeCategory.MASKED]
        rows.append(
            [
                name,
                f"{result.ssf:.5f}",
                result.n_success,
                f"{100 * faulty:.1f} %",
                f"{result.wall_time_s:.1f}s",
            ]
        )
    print(
        format_table(
            ["technique", "SSF", "successes", "faulty runs", "time"],
            rows,
            title=f"\nTechnique comparison ({N_SAMPLES} samples each)",
        )
    )


def temporal_accuracy_sweep(context) -> None:
    rows = []
    ssfs = []
    windows = [1, 5, 10, 50, 100]
    for window in windows:
        # centred window: inaccurate attackers waste shots past the target
        spec = default_attack_spec(context, window=window, temporal_centre=4)
        engine = CrossLevelEngine(context, spec)
        result = engine.evaluate(RandomSampler(spec), N_SAMPLES, seed=13)
        ssfs.append(result.ssf)
    for window, ssf, norm in zip(
        windows, ssfs, normalize_series(ssfs, reference=ssfs[-1])
    ):
        rows.append([window, f"{ssf:.5f}", f"{norm:.2f}x"])
    print(
        format_table(
            ["temporal window (cycles)", "SSF", "vs window=100"],
            rows,
            title="\nTemporal accuracy sweep (smaller window = sharper attacker)",
        )
    )


def main() -> None:
    print("Building evaluation context...")
    context = build_context(illegal_write_benchmark())
    technique_comparison(context)
    temporal_accuracy_sweep(context)


if __name__ == "__main__":
    main()
