"""Selective hardening: find the critical registers and protect them.

Reproduces the design-guidance loop of the paper's Section 6:

1. estimate SSF with importance sampling;
2. attribute the SSF to register bits using necessity analysis (which
   flipped bits each successful attack actually depended on);
3. harden the smallest bit set covering 95% of the SSF with resilient
   flip-flops (10x resilience at 3x cell area, after [19, 20]);
4. report the security improvement against the area cost, plus a small
   coverage/area Pareto sweep.

Run:  python examples/hardening_study.py
"""

from repro import (
    CrossLevelEngine,
    HardeningStudy,
    ImportanceSampler,
    attribute_ssf,
    build_context,
    default_attack_spec,
    illegal_write_benchmark,
)
from repro.analysis.reporting import format_table
from repro.core.hardening import critical_bits


def main() -> None:
    print("Building evaluation context...")
    context = build_context(illegal_write_benchmark())
    spec = default_attack_spec(context, window=50)
    engine = CrossLevelEngine(context, spec)
    sampler = ImportanceSampler(
        spec, context.characterization, placement=context.placement
    )

    print("Estimating SSF (1500 samples)...")
    result = engine.evaluate(sampler, n_samples=1500, seed=99)
    print(f"  SSF = {result.ssf:.5f} ({result.n_success} successes)")

    oracle = engine.outcome_oracle()
    shares = attribute_ssf(result, oracle)
    ranked = sorted(shares.items(), key=lambda kv: kv[1], reverse=True)
    total_share = sum(shares.values())
    rows = [
        [f"{reg}[{bit}]", f"{100 * share / total_share:.1f} %"]
        for (reg, bit), share in ranked[:10]
    ]
    print(format_table(["register bit", "SSF share"], rows,
                       title="\nTop SSF-critical register bits"))

    crit = critical_bits(shares, coverage=0.95)
    total_bits = sum(context.netlist.register_widths().values())
    print(
        f"\n{len(crit)} bits ({100 * len(crit) / total_bits:.1f}% of "
        f"{total_bits} register bits) cover 95% of the SSF"
    )

    study = HardeningStudy(context.netlist, result, oracle=oracle)
    rows = []
    for outcome in study.pareto((0.5, 0.8, 0.9, 0.95, 0.99)):
        summary = outcome.summary()
        rows.append(
            [
                summary["n_hardened_bits"],
                f"{summary['covered_ssf_share_pct']:.1f} %",
                f"{summary['ssf_improvement_x']}x",
                f"{summary['area_overhead_pct']:.2f} %",
            ]
        )
    print(
        format_table(
            ["hardened bits", "SSF covered", "SSF improvement", "area overhead"],
            rows,
            title="\nHardening Pareto sweep (10x resilience, 3x cell area)",
        )
    )


if __name__ == "__main__":
    main()
