"""Using the substrates directly: evaluate a custom block, no SoC needed.

The framework's lower layers are a standalone toolkit.  This example
builds a small *secure comparator* block with the HDL DSL (a password check
whose `unlock` decision register is the security-critical state), elaborates
it to gates, places it, and mounts a radiation attack campaign against the
injection cycle alone — gate-level only, no RTL platform around it.

This is the workflow for screening a single IP block early, before it is
integrated into a full system.

Run:  python examples/custom_hardware.py
"""

import numpy as np

from repro.attack import RadiationTechnique
from repro.gatesim import TimingModel, TransientInjection, TransientSimulator
from repro.gatesim import for_netlist
from repro.hdl import Module
from repro.netlist import ConeExtractor, GridPlacer
from repro.analysis.reporting import format_table


def build_password_checker():
    """unlock_q <= (attempt == stored) & try_valid, with a lockout counter."""
    m = Module("password_checker")
    attempt = m.input("attempt", 16)
    try_valid = m.input("try_valid", 1)
    stored = m.register("stored_key", 16, init=0xB5C3)
    unlock_q = m.register("unlock_q", 1)
    fail_count = m.register("fail_count", 4)

    match = attempt.eq(stored)
    locked_out = fail_count.ge(m.const(5, 4))
    grant = match & try_valid & ~locked_out
    m.connect(stored, stored)  # key is static
    m.connect(unlock_q, grant)
    fail = try_valid & ~match
    next_count = fail.mux(fail_count + 1, fail_count)
    m.connect(fail_count, locked_out.mux(fail_count, next_count))

    m.output("unlock", unlock_q)
    m.output("locked_out", locked_out)
    return m.finalize()


def main() -> None:
    netlist = build_password_checker()
    print(f"Elaborated: {netlist.stats()}")

    placement = GridPlacer(pitch_um=2.0, jitter=0.2, seed=1).place(netlist)
    timing = for_netlist(netlist)
    print(f"Clock period: {timing.clock_period_ps:.0f} ps")

    # Security question: can a radiation spot force unlock_q with a WRONG
    # attempt on the inputs?
    sim = TransientSimulator(netlist, timing)
    technique = RadiationTechnique(timing=timing)
    unlock = netlist.register_dff("unlock_q", 0).nid
    cones = ConeExtractor(netlist).extract(unlock, max_fanin_depth=2)
    frame0 = sorted(cones.fanin[0])
    print(f"unlock_q decision cone: {len(frame0)} nodes")

    inputs = {"attempt": 0x1234, "try_valid": 1}  # wrong password
    state = {"stored_key": 0xB5C3, "unlock_q": 0, "fail_count": 0}

    rng = np.random.default_rng(0)
    rows = []
    for radius in (3.0, 5.0, 8.0):
        n_unlock = 0
        n_faulty = 0
        n_trials = 400
        for _ in range(n_trials):
            centre = int(frame0[rng.integers(0, len(frame0))])
            injection = technique.build_injection(placement, centre, radius, rng)
            result = sim.simulate_cycle(inputs, state, injection)
            n_faulty += bool(result.any_fault)
            if result.faulty_next_state.get("unlock_q", 0) & 1:
                n_unlock += 1
        rows.append(
            [
                f"{radius:.0f} um",
                f"{100 * n_faulty / n_trials:.1f} %",
                f"{100 * n_unlock / n_trials:.2f} %",
            ]
        )
    print(
        format_table(
            ["spot radius", "any latched fault", "forced unlock"],
            rows,
            title="\nRadiation campaign against the unlock decision "
            "(wrong password on inputs)",
        )
    )
    print(
        "\nInterpretation: the forced-unlock rate is this block's per-shot "
        "vulnerability; feed the block into the full cross-level engine "
        "for a system-level SSF."
    )


if __name__ == "__main__":
    main()
