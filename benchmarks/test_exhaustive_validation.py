"""Extension experiment — Monte Carlo validation against enumeration.

Under the classical single-bit-upset model (one register bit flips, at a
uniform timing distance), the fault space is small enough to enumerate
completely, yielding the *exact* SSF.  The Monte Carlo estimator run over
the same support must agree — the strongest end-to-end correctness check
the framework admits — and the run-time comparison shows why the paper's
sampling approach exists: enumeration cost scales with (bits x cycles)
while sampling cost scales with the target precision only.

The checks themselves live in :mod:`repro.conformance` (the differential
harness also run by `repro conformance` and the CI conformance job); this
benchmark drives the same runner over the *full* cone-register bit census
of the write benchmark — a far larger fault space than the registry's
curated designs — and renders the paper-style table.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.conformance import ConformanceDesign, DifferentialConfig, run_design

WINDOW = 25


@pytest.mark.slow
def test_exhaustive_validation(benchmark, write_context, emit):
    bits = tuple(write_context.characterization.cone_register_bits())
    design = ConformanceDesign(
        name="exhaustive-validation",
        description=f"every cone register bit of the write benchmark, "
        f"window {WINDOW}",
        benchmark="write",
        bits=bits,
        window=WINDOW,
    )
    # The exact SSF here is ~0.016, so the default ±0.05 target would fire
    # after one chunk; ±0.01 forces a real Monte Carlo run.
    config = DifferentialConfig(epsilon=0.01, max_samples=4000, seed=1234)

    report = benchmark.pedantic(
        lambda: run_design(design, config, context=write_context),
        rounds=1,
        iterations=1,
    )

    exact = report.exact_ssf
    rows = [
        ["exact SSF (enumeration)", f"{exact:.5f}"],
        ["evaluations (enumeration)", report.n_enumerated],
        ["enumeration wall time", f"{report.enumeration_wall_s:.1f} s"],
    ]
    for v in report.verdicts:
        rows.extend(
            [
                [f"{v.sampler} MC SSF", f"{v.ssf:.5f}"],
                [f"{v.sampler} samples", v.n_samples],
                [
                    f"{v.sampler} {v.ci_kind} CI",
                    f"[{v.ci_low:.5f}, {v.ci_high:.5f}]",
                ],
                [
                    f"{v.sampler} exact inside CI",
                    "yes" if v.covers_exact else "NO",
                ],
                [f"{v.sampler} oracle mismatches", v.n_outcome_mismatches],
                [f"{v.sampler} g fit p-value", f"{v.gof.p_value:.4f}"],
            ]
        )
    uniform = next(v for v in report.verdicts if v.sampler == "uniform")
    top = sorted(
        uniform.per_bit_expected.items(), key=lambda kv: kv[1], reverse=True
    )[:6]
    emit(
        "exhaustive_validation",
        "\n\n".join(
            [
                format_table(
                    ["quantity", "value"],
                    rows,
                    title="Single-bit-upset model: exact enumeration vs "
                    "Monte Carlo",
                ),
                format_table(
                    ["register bit", "# granting draws (oracle)"],
                    [[label, n] for label, n in top],
                    title="Bits with successful single-bit faults",
                ),
            ]
        ),
    )

    # Both samplers must pass the full differential contract: CI covers
    # the exact SSF, every MC record agrees with the oracle's truth
    # table, per-bit success counts match, and the realized draw
    # distribution fits its spec.
    assert report.passed, report.to_dict()
    assert {v.sampler for v in report.verdicts} == {"uniform", "importance"}
    # The known critical bits dominate the exact census.
    assert any(label.startswith("cfg_top0[") for label, _n in top)
