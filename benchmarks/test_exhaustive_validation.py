"""Extension experiment — Monte Carlo validation against enumeration.

Under the classical single-bit-upset model (one register bit flips, at a
uniform timing distance), the fault space is small enough to enumerate
completely, yielding the *exact* SSF.  The Monte Carlo estimator run over
the same support must agree — the strongest end-to-end correctness check
the framework admits — and the run-time comparison shows why the paper's
sampling approach exists: enumeration cost scales with (bits x cycles)
while sampling cost scales with the target precision only.
"""

from repro import (
    AttackSpec,
    CrossLevelEngine,
    RadiusDistribution,
    RandomSampler,
    SpatialDistribution,
    TemporalDistribution,
    default_attack_spec,
)
from repro.analysis.reporting import format_table
from repro.analysis.statistics import ssf_confidence_interval
from repro.attack.techniques import PinpointUpsetTechnique
from repro.core.exhaustive import enumerate_single_bit_faults

N_MC = 4000
WINDOW = 25


def test_exhaustive_validation(benchmark, write_context, emit):
    ch = write_context.characterization
    dff_cells = sorted(
        write_context.netlist.register_dff(reg, bit).nid
        for reg, bit in ch.cone_register_bits()
    )
    spec = AttackSpec(
        technique=PinpointUpsetTechnique(timing=write_context.timing),
        temporal=TemporalDistribution(WINDOW),
        spatial=SpatialDistribution(dff_cells),
        radius=RadiusDistribution((1.0,)),
    )
    engine = CrossLevelEngine(write_context, spec)

    def run():
        exact = enumerate_single_bit_faults(
            engine,
            timing_distances=list(range(WINDOW)),
        )
        mc = engine.evaluate(RandomSampler(spec), N_MC, seed=1234)
        return exact, mc

    exact, mc = benchmark.pedantic(run, rounds=1, iterations=1)
    lo, hi = ssf_confidence_interval(mc, seed=5)

    per_bit = exact.per_bit_success_count()
    top = sorted(per_bit.items(), key=lambda kv: kv[1], reverse=True)[:6]
    rows = [
        ["exact SSF (enumeration)", f"{exact.ssf_exact:.5f}"],
        ["evaluations (enumeration)", exact.n_evaluations],
        ["enumeration wall time", f"{exact.wall_time_s:.1f} s"],
        ["Monte Carlo SSF", f"{mc.ssf:.5f}"],
        ["MC 95% bootstrap CI", f"[{lo:.5f}, {hi:.5f}]"],
        ["MC samples", mc.n_samples],
        ["MC wall time", f"{mc.wall_time_s:.1f} s"],
        ["exact inside MC CI", "yes" if lo <= exact.ssf_exact <= hi else "NO"],
    ]
    bit_rows = [
        [f"{reg}[{bit}]", count, f"{exact.ssf_of_bit((reg, bit)):.3f}"]
        for (reg, bit), count in top
    ]
    emit(
        "exhaustive_validation",
        "\n\n".join(
            [
                format_table(
                    ["quantity", "value"],
                    rows,
                    title="Single-bit-upset model: exact enumeration vs "
                    "Monte Carlo",
                ),
                format_table(
                    ["register bit", f"# granting t of {WINDOW}", "per-bit SSF"],
                    bit_rows,
                    title="Bits with successful single-bit faults (exact)",
                ),
            ]
        ),
    )

    # The exact value must lie inside the Monte Carlo confidence interval,
    # and the point estimates must be close.
    assert lo <= exact.ssf_exact <= hi
    assert abs(mc.ssf - exact.ssf_exact) < 0.35 * max(exact.ssf_exact, 1e-6)
    # The known critical bits dominate the exact census.
    assert any(reg == "cfg_top0" for (reg, _b), _c in top)
