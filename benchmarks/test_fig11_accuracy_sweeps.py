"""Fig. 11 — impact of temporal accuracy and parameter variation on SSF.

Paper: (a) shrinking the temporal-accuracy range (uniform window around the
target) increases the normalized SSF significantly for both the memory-
write and the memory-read benchmark; (b) concentrating the spatial
distribution from uniform over all gates to a delta on the target gates
also raises the SSF sharply.  Both sweeps demonstrate why the intrinsic
uncertainty of the attack process must be modelled.
"""

from repro import (
    CrossLevelEngine,
    RandomSampler,
    default_attack_spec,
)
from repro.analysis.reporting import format_table, normalize_series

N_SAMPLES = 900
WINDOWS = [1, 3, 10, 30, 100]
CONCENTRATIONS = [0.0, 0.5, 0.9, 1.0]


AIM = 4  # the attacker aims a few cycles before the target check


def sweep_temporal(context, seed):
    """The paper's semantics: the window is centred at the aimed cycle, so
    an inaccurate attacker also wastes injections after the target."""
    ssfs = []
    for window in WINDOWS:
        spec = default_attack_spec(
            context, window=window, temporal_centre=AIM
        )
        engine = CrossLevelEngine(context, spec)
        result = engine.evaluate(RandomSampler(spec), N_SAMPLES, seed=seed)
        ssfs.append(result.ssf)
    return ssfs


def sweep_spatial(context, seed):
    ssfs = []
    for concentration in CONCENTRATIONS:
        spec = default_attack_spec(
            context, window=50, concentration=concentration
        )
        engine = CrossLevelEngine(context, spec)
        result = engine.evaluate(RandomSampler(spec), N_SAMPLES, seed=seed)
        ssfs.append(result.ssf)
    return ssfs


def test_fig11_accuracy_sweeps(benchmark, write_context, read_context, emit):
    def run():
        return {
            "temporal_write": sweep_temporal(write_context, seed=61),
            "temporal_read": sweep_temporal(read_context, seed=62),
            "spatial_write": sweep_spatial(write_context, seed=63),
            "spatial_read": sweep_spatial(read_context, seed=64),
        }

    data = benchmark.pedantic(run, rounds=1, iterations=1)

    # Normalize to the widest/least-accurate setting, like the paper.
    rows_a = []
    norm_w = normalize_series(
        data["temporal_write"], reference=data["temporal_write"][-1] or 1.0
    )
    norm_r = normalize_series(
        data["temporal_read"], reference=data["temporal_read"][-1] or 1.0
    )
    for window, w, nw, r, nr in zip(
        WINDOWS, data["temporal_write"], norm_w, data["temporal_read"], norm_r
    ):
        rows_a.append(
            [window, f"{w:.5f}", f"{nw:.2f}x", f"{r:.5f}", f"{nr:.2f}x"]
        )

    rows_b = []
    norm_w = normalize_series(
        data["spatial_write"], reference=data["spatial_write"][0] or 1.0
    )
    norm_r = normalize_series(
        data["spatial_read"], reference=data["spatial_read"][0] or 1.0
    )
    labels = ["uniform", "0.5", "0.9", "delta"]
    for label, w, nw, r, nr in zip(
        labels, data["spatial_write"], norm_w, data["spatial_read"], norm_r
    ):
        rows_b.append(
            [label, f"{w:.5f}", f"{nw:.1f}x", f"{r:.5f}", f"{nr:.1f}x"]
        )

    text = "\n\n".join(
        [
            format_table(
                [
                    "temporal window (cycles)",
                    "SSF (write)",
                    "normalized",
                    "SSF (read)",
                    "normalized",
                ],
                rows_a,
                title="Fig. 11(a) — SSF vs temporal accuracy "
                "(smaller window = more accurate attacker)",
            ),
            format_table(
                [
                    "spatial accuracy",
                    "SSF (write)",
                    "normalized",
                    "SSF (read)",
                    "normalized",
                ],
                rows_b,
                title="Fig. 11(b) — SSF vs spatial accuracy (uniform -> delta)",
            ),
        ]
    )
    emit("fig11_accuracy_sweeps", text)

    # Monotone trends of the paper (allowing Monte Carlo noise at the ends):
    # a sharper attacker achieves a higher SSF.
    assert data["temporal_write"][0] > data["temporal_write"][-1]
    assert data["temporal_read"][0] > data["temporal_read"][-1]
    assert data["spatial_write"][-1] > data["spatial_write"][0]
    assert data["spatial_read"][-1] > data["spatial_read"][0]
