"""Sweep fan-out throughput guard (PR 10 tentpole acceptance).

Runs one hardening sweep cold (every member job evaluated) and once
more warm (every member served from the content-addressed result
cache), through a real HTTP evaluation service with the stub engine.
Measures points/sec for both passes and the warm-pass cache-hit ratio.

Acceptance (fails the build): the warm pass is 100% cache hits and at
least ``MIN_WARM_SPEEDUP``× faster than the cold pass, and the two
reports are byte-identical — caching must change the wall clock, never
the answer.

Results go to ``benchmarks/results/BENCH_sweep.json`` so CI can archive
and trend them.  ``REPRO_BENCH_QUICK=1`` shrinks the design space for
the CI smoke job.
"""

import json
import os
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:  # for `tests.campaign.stubs`
    sys.path.insert(0, str(REPO_ROOT))

from repro.service import (  # noqa: E402
    EvaluationService,
    ServiceClient,
    ServiceServer,
)
from repro.sweep import SweepRunner, SweepSpec, SweepStore  # noqa: E402

from tests.campaign.stubs import BernoulliEngine, StubSampler  # noqa: E402

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
CHUNK_DELAY_S = 0.02        # per-chunk sleep: the simulated evaluation cost
N_SAMPLES = 80 if QUICK else 200
SEEDS = (1, 2) if QUICK else (1, 2, 3, 4)
MIN_WARM_SPEEDUP = 2.0      # cached pass must clearly beat re-evaluation

SWEEP = SweepSpec(
    name="bench-sweep",
    base={
        "benchmark": "write",
        "sampler": "random",
        "chunk_size": 20,
        "stopping": {"mode": "fixed", "n_samples": N_SAMPLES},
    },
    axes={
        "variant": ("none", "parity", "tmr+parity"),
        "seed": SEEDS,
    },
)


def _run_sweep(server, sweeps_dir, sweep_id):
    """One full sweep; returns (wall_s, report_text, status)."""
    from repro.sweep import sweep_status

    store = SweepStore.create(sweeps_dir, SWEEP, sweep_id=sweep_id)
    runner = SweepRunner(
        SWEEP,
        store,
        ServiceClient(server.url),
        poll_s=0.02,
        timeout_s=300.0,
    )
    start = time.perf_counter()
    runner.run()
    wall_s = time.perf_counter() - start
    return wall_s, store.read_report_text(), sweep_status(store)


def test_sweep_fanout(tmp_path, emit):
    service = EvaluationService(
        tmp_path / "runs",
        max_concurrency=4,
        engine_factory=lambda spec: (
            BernoulliEngine(p=0.3, delay_s=CHUNK_DELAY_S),
            StubSampler(),
        ),
    )
    server = ServiceServer(service, port=0)
    server.start()
    try:
        cold_s, cold_report, cold_status = _run_sweep(
            server, tmp_path / "sweeps", "cold"
        )
        warm_s, warm_report, warm_status = _run_sweep(
            server, tmp_path / "sweeps", "warm"
        )
    finally:
        server.stop(cancel_running=True)

    n_points = cold_status["n_points"]
    rows = [
        {
            "pass": name,
            "wall_s": round(wall_s, 3),
            "points_per_s": round(n_points / wall_s, 2),
            "cache_hit_ratio": status["cache_hit_ratio"],
        }
        for name, wall_s, status in (
            ("cold", cold_s, cold_status),
            ("warm", warm_s, warm_status),
        )
    ]
    speedup = round(rows[0]["wall_s"] / rows[1]["wall_s"], 2)

    payload = {
        "bench": "sweep",
        "quick": QUICK,
        "n_points": n_points,
        "n_samples_per_point": N_SAMPLES,
        "chunk_delay_s": CHUNK_DELAY_S,
        "warm_speedup": speedup,
        "rows": rows,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_sweep.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    lines = [
        f"Sweep fan-out ({n_points} points x {N_SAMPLES} samples, "
        f"{CHUNK_DELAY_S}s/chunk{', quick' if QUICK else ''})"
    ]
    for row in rows:
        lines.append(
            f"  {row['pass']:>4}: {row['points_per_s']:>7} points/s"
            f"  wall {row['wall_s']:>7}s"
            f"  cache hits {row['cache_hit_ratio']:.2f}"
        )
    lines.append(f"  warm speedup {speedup}x")
    emit("sweep", "\n".join(lines))

    # Caching changes the wall clock, never the answer.
    assert warm_report == cold_report
    assert rows[0]["cache_hit_ratio"] == 0.0
    assert rows[1]["cache_hit_ratio"] == 1.0
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm sweep speedup {speedup}x below the "
        f"{MIN_WARM_SPEEDUP}x acceptance bar: {rows}"
    )
