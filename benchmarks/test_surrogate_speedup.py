"""Two-stage multi-fidelity exact-sample-reduction guard (PR 8 satellite).

The multi-fidelity claim: a two-stage campaign (surrogate screen + exact
confirmation) reaches the same CI-converged SSF as a pure exact campaign
while spending ≥3× fewer *exact-engine* samples — the cost that
dominates wall time on real designs.  Both campaigns run the write-cfg
pinpoint design to the same Wilson-CI stopping target through the real
campaign runner (chunked scheduler, durable-log seed policy), and both
final estimates are checked against the exhaustively enumerated ground
truth, so a regression in either accuracy or screening efficiency fails
the suite.

The exact-sample ratio counts the *campaign* spend (fallbacks +
confirmations for the two-stage run).  The calibration budget is
reported alongside but amortized away from the ratio: the artifact is a
pure function of (design, workload, seed), cached content-addressed by
the service and reused across every campaign that shares it.

Results go to ``benchmarks/results/BENCH_surrogate.json`` so CI can
archive and trend them.  ``REPRO_BENCH_QUICK=1`` shrinks the budgets
for the CI smoke job.
"""

import json
import os
import pathlib
import time

import pytest

from repro.campaign import CampaignRunner, CampaignSpec, StoppingConfig
from repro.conformance import get_design
from repro.conformance.differential import build_samplers
from repro.core.exhaustive import enumerate_single_bit_faults
from repro.surrogate import (
    CalibrationConfig,
    SurrogateEngine,
    TwoStageEngine,
    calibrate,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
SEED = 2024
CI_WIDTH = 0.10 if QUICK else 0.05
MAX_SAMPLES = 3000 if QUICK else 20_000
CALIBRATION_SAMPLES = 160 if QUICK else 400
MIN_EXACT_REDUCTION = 3.0   # the acceptance bar of the multi-fidelity claim
SSF_TOLERANCE = 0.06 if QUICK else 0.04  # vs enumerated truth (> CI half-width)


@pytest.fixture(scope="module")
def cfg_design():
    """write-cfg with its own reduced-characterization context."""
    return get_design("write-cfg").build()


def _ci_spec(chunk_size=100):
    return CampaignSpec(
        sampler="random",
        seed=SEED,
        chunk_size=chunk_size,
        stopping=StoppingConfig(
            mode="ci",
            ci_width=CI_WIDTH,
            z=1.96,
            min_samples=200,
            max_samples=MAX_SAMPLES,
        ),
    )

def _run_campaign(engine, sampler):
    start = time.perf_counter()
    result = CampaignRunner(
        _ci_spec(), engine=engine, sampler=sampler, n_workers=1
    ).run()
    return result, time.perf_counter() - start


def test_two_stage_exact_sample_reduction(cfg_design, emit):
    sampler = dict(build_samplers(cfg_design))["uniform"]
    truth = enumerate_single_bit_faults(
        cfg_design.engine,
        bits=list(cfg_design.bits),
        timing_distances=list(range(cfg_design.window)),
    ).ssf_exact

    exact_result, exact_s = _run_campaign(cfg_design.engine, sampler)
    exact_spend = exact_result.n_samples

    model, report = calibrate(
        cfg_design.engine,
        sampler,
        CalibrationConfig(n_samples=CALIBRATION_SAMPLES, seed=SEED),
    )
    two_stage = TwoStageEngine(
        SurrogateEngine(cfg_design.engine, model, observe=False)
    )
    two_result, two_s = _run_campaign(two_stage, sampler)
    two_spend = two_stage.exact_invocations

    reduction = exact_spend / max(1, two_spend)
    payload = {
        "bench": "surrogate_speedup",
        "quick": QUICK,
        "design": "write-cfg",
        "ci_width": CI_WIDTH,
        "exact_ssf_enumerated": truth,
        "exact": {
            "ssf": exact_result.ssf,
            "n_samples": exact_result.n_samples,
            "exact_samples": exact_spend,
            "wall_s": round(exact_s, 3),
        },
        "two_stage": {
            "ssf": two_result.ssf,
            "n_samples": two_result.n_samples,
            "exact_samples": two_spend,
            "calibration_samples": CALIBRATION_SAMPLES,
            "fnr": model.fnr,
            "holdout_coverage": report.holdout_coverage,
            "wall_s": round(two_s, 3),
        },
        "exact_sample_reduction": round(reduction, 2),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_surrogate.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    emit(
        "surrogate_speedup",
        "\n".join(
            [
                f"Two-stage multi-fidelity campaign (write-cfg, CI width "
                f"{CI_WIDTH}{', quick' if QUICK else ''})",
                f"  enumerated truth        {truth:.5f}",
                f"  exact campaign          ssf {exact_result.ssf:.5f}  "
                f"exact samples {exact_spend}",
                f"  two-stage campaign      ssf {two_result.ssf:.5f}  "
                f"exact samples {two_spend} "
                f"(+{CALIBRATION_SAMPLES} calibration, amortized)",
                f"  exact-sample reduction  {reduction:.2f}x "
                f"(bar {MIN_EXACT_REDUCTION}x)",
            ]
        ),
    )

    # Accuracy: both CI-converged estimates sit on the enumerated truth.
    assert abs(exact_result.ssf - truth) <= SSF_TOLERANCE, payload
    assert abs(two_result.ssf - truth) <= SSF_TOLERANCE, payload
    # Efficiency: the multi-fidelity acceptance bar.
    assert reduction >= MIN_EXACT_REDUCTION, payload
