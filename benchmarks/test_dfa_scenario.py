"""Extension experiment — scenario 2 (information leakage / DFA).

The paper's framework claims flexibility across attack categories
(Section 3.1); this experiment exercises category 2 end-to-end: gate-level
fault injection during encryption of a toy SPN cipher, last-round DFA over
the faulty ciphertexts, and key recovery. Reported: the per-injection
usefulness probability (the scenario's SSF), its dependence on the
injection round, and the injections-to-recovery count for blind vs aimed
attackers.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.scenarios import DfaCampaign
from repro.scenarios.cipher import N_KEYS

N_SAMPLES = 2500


def test_dfa_scenario(benchmark, emit):
    rng = np.random.default_rng(77)
    keys = [int(rng.integers(0, 1 << 16)) for _ in range(N_KEYS)]

    def run():
        blind = DfaCampaign(keys)
        blind_report = blind.evaluate(N_SAMPLES, seed=9)
        aimed = DfaCampaign(keys)
        aimed.universe = [
            aimed.netlist.register_dff("state", b).nid for b in range(16)
        ]
        aimed_report = aimed.evaluate(N_SAMPLES, seed=9)
        return blind_report, aimed_report

    blind_report, aimed_report = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for label, report in (("blind", blind_report), ("aimed", aimed_report)):
        rows.append(
            [
                label,
                f"{report.ssf:.3f}",
                f"{report.masked_fraction:.2f}",
                "yes" if report.key_recovered else "no",
                report.injections_to_recovery or "-",
            ]
        )
    round_rows = []
    for r in range(4):
        round_rows.append(
            [
                r,
                f"{blind_report.usefulness_by_round().get(r, 0.0):.3f}",
                f"{aimed_report.usefulness_by_round().get(r, 0.0):.3f}",
            ]
        )
    emit(
        "dfa_scenario",
        "\n\n".join(
            [
                format_table(
                    ["attacker", "P(useful)", "masked", "recovered", "# injections"],
                    rows,
                    title=f"Scenario 2 — DFA key recovery ({N_SAMPLES} injections)",
                ),
                format_table(
                    ["injection round", "P(useful) blind", "P(useful) aimed"],
                    round_rows,
                    title="Usefulness by injection round",
                ),
            ]
        ),
    )

    # Both attackers recover the correct whitening key.
    assert blind_report.key_recovered and aimed_report.key_recovered
    assert blind_report.recovered_key == keys[-1]
    assert aimed_report.recovered_key == keys[-1]
    # Aiming at the state register speeds recovery up substantially.
    assert (
        aimed_report.injections_to_recovery
        < blind_report.injections_to_recovery
    )
    # Output-cycle faults (round 3) are the least useful for the aimed
    # attacker: they flip the ciphertext directly instead of feeding the
    # last S-box layer.
    aimed_by_round = aimed_report.usefulness_by_round()
    assert aimed_by_round[3] < min(aimed_by_round[r] for r in range(3))