"""Section 6's hardening result.

Paper: ~3% of the registers contribute more than 95% of the SSF; hardening
them with resilient flip-flops (10x resilience at 3x cell area, [19, 20])
reduces the overall SSF by up to 6.5x at under 2% MPU area overhead.
"""

from repro import (
    CrossLevelEngine,
    HardeningStudy,
    ImportanceSampler,
    attribute_ssf,
    default_attack_spec,
)
from repro.analysis.reporting import format_table
from repro.core.hardening import critical_bits

N_SAMPLES = 2000


def test_hardening_study(benchmark, write_context, emit):
    spec = default_attack_spec(write_context, window=50)
    engine = CrossLevelEngine(write_context, spec)
    sampler = ImportanceSampler(
        spec,
        write_context.characterization,
        placement=write_context.placement,
    )

    def run():
        result = engine.evaluate(sampler, N_SAMPLES, seed=101)
        oracle = engine.outcome_oracle()
        shares = attribute_ssf(result, oracle)
        study = HardeningStudy(write_context.netlist, result, oracle=oracle)
        return result, shares, study

    result, shares, study = benchmark.pedantic(run, rounds=1, iterations=1)

    crit = critical_bits(shares, coverage=0.95)
    total_bits = sum(write_context.netlist.register_widths().values())
    crit_frac = len(crit) / total_bits

    outcome = study.harden(crit)
    rows = [
        ["SSF before hardening", f"{result.ssf:.5f}", ""],
        ["critical register bits (95% SSF)", len(crit), ""],
        ["critical fraction of registers", f"{100 * crit_frac:.1f} %", "~3 %"],
        ["SSF after hardening", f"{outcome.ssf_after:.5f}", ""],
        ["SSF improvement", f"{outcome.ssf_improvement:.1f}x", "up to 6.5x"],
        ["area overhead", f"{100 * outcome.area_overhead:.2f} %", "< 2 %"],
    ]

    ranked = sorted(shares.items(), key=lambda kv: kv[1], reverse=True)
    top_rows = [
        [f"{reg}[{bit}]", f"{100 * share / sum(shares.values()):.1f} %"]
        for (reg, bit), share in ranked[:8]
    ]

    text = "\n\n".join(
        [
            format_table(
                ["quantity", "measured", "paper"],
                rows,
                title="Section 6 — selective hardening of critical registers",
            ),
            format_table(
                ["register bit", "SSF share (necessity attribution)"],
                top_rows,
                title="Most critical register bits",
            ),
        ]
    )
    emit("hardening_study", text)

    assert crit_frac < 0.10          # a small minority of the registers
    assert outcome.ssf_improvement > 3.0
    assert outcome.area_overhead < 0.08