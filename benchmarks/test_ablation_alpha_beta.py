"""Ablation — the importance sampler's design knobs (DESIGN.md Section 6).

Sweeps the correlation weight ``alpha`` and the lifetime-gate slope
``beta`` of ``g_{T,P}``, plus the two implementation refinements
(persistence extension and spatial smearing), measuring the sample
variance each produces.  ``alpha = 0`` with no refinements degenerates to
plain fanin-cone sampling.
"""

from repro import (
    CrossLevelEngine,
    ImportanceSampler,
    default_attack_spec,
)
from repro.analysis.reporting import format_table
from repro.sampling import ScoapConeSampler

N_SAMPLES = 1000


def test_ablation_alpha_beta(benchmark, write_context, emit):
    spec = default_attack_spec(write_context, window=50)
    engine = CrossLevelEngine(write_context, spec)
    ch = write_context.characterization
    placement = write_context.placement

    configs = [
        ("alpha=0 (cone-like)", dict(alpha=0.0, placement=None)),
        ("alpha=10", dict(alpha=10.0, placement=None)),
        ("alpha=100", dict(alpha=100.0, placement=None)),
        ("alpha=100 + smear", dict(alpha=100.0, placement=placement)),
        (
            "alpha=100 + smear, no persistence",
            dict(alpha=100.0, placement=placement, persistence_extension=False),
        ),
        (
            "alpha=100 + smear, no lifetime gate",
            dict(alpha=100.0, placement=placement, hard_lifetime_gate=False),
        ),
        (
            "alpha=100 + smear, beta=2",
            dict(alpha=100.0, placement=placement, beta=2.0),
        ),
    ]

    def run():
        out = []
        for name, kwargs in configs:
            sampler = ImportanceSampler(spec, ch, **kwargs)
            result = engine.evaluate(sampler, N_SAMPLES, seed=203)
            out.append((name, result))
        # Static observability heuristic (related work [12]) as a baseline.
        scoap = ScoapConeSampler(spec, ch)
        out.append(
            ("SCOAP-weighted (static baseline)",
             engine.evaluate(scoap, N_SAMPLES, seed=203))
        )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    base_var = results[0][1].variance
    rows = [
        [
            name,
            f"{result.ssf:.5f}",
            result.n_success,
            f"{result.variance:.3e}",
            f"{base_var / max(result.variance, 1e-12):.1f}x",
        ]
        for name, result in results
    ]
    text = format_table(
        ["configuration", "SSF", "# succ", "variance", "vs alpha=0"],
        rows,
        title=f"Ablation of g_TP design choices ({N_SAMPLES} samples each)",
    )
    emit("ablation_alpha_beta", text)

    by_name = dict(results)
    full = by_name["alpha=100 + smear"]
    assert full.variance <= by_name["alpha=0 (cone-like)"].variance
    # every configuration estimates the same SSF (unbiasedness)
    ssfs = [r.ssf for _n, r in results]
    assert max(ssfs) > 0
    assert min(ssfs) > 0 or by_name["alpha=0 (cone-like)"].n_success == 0