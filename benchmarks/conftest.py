"""Shared fixtures for the experiment-regeneration benchmarks.

Each ``test_fig*.py`` module regenerates one table or figure of the paper.
The evaluation contexts (golden run + full pre-characterization) are built
once per session; each benchmark prints its paper-style table *and* writes
it to ``benchmarks/results/<name>.txt`` so the output survives pytest's
capture when run without ``-s``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.core.context import build_context
from repro.soc.programs import (
    illegal_read_benchmark,
    illegal_write_benchmark,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def write_context():
    """Full-configuration context for the illegal-write benchmark."""
    return build_context(illegal_write_benchmark())


@pytest.fixture(scope="session")
def read_context():
    """Full-configuration context for the illegal-read benchmark."""
    return build_context(illegal_read_benchmark())


@pytest.fixture(scope="session")
def emit():
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit
