"""Fleet scale-out throughput guard (PR 6 tentpole acceptance).

Runs the same campaign through the fleet dispatcher with 1, 2, and 4
workers and measures end-to-end samples/sec (submit → terminal).  The
stub engine sleeps a fixed interval per chunk, so the workload is
GIL-free and the ceiling is the coordinator's lease/accept path — which
is exactly what this benchmark is guarding.

Acceptance (fails the build): ≥3× samples/sec at 4 workers vs 1.  The
run results must also be identical across worker counts — scale-out is
not allowed to change the estimate.

Results go to ``benchmarks/results/BENCH_scaleout.json`` so CI can
archive and trend them.  ``REPRO_BENCH_QUICK=1`` shrinks the budget for
the CI smoke job.
"""

import json
import os
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:  # for `tests.fleet.helpers`
    sys.path.insert(0, str(REPO_ROOT))

from repro.campaign import CampaignSpec, StoppingConfig  # noqa: E402
from repro.service import ServiceClient  # noqa: E402

from tests.fleet.helpers import (  # noqa: E402
    fleet_server,
    slow_stub_factory,
    wait_terminal,
    workers,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
CHUNK_SIZE = 25
N_CHUNKS = 32 if QUICK else 64
CHUNK_DELAY_S = 0.06        # per-chunk sleep: the simulated evaluation cost
WORKER_COUNTS = (1, 2, 4)
MIN_SPEEDUP_AT_4 = 3.0      # acceptance bar: near-linear to 4 workers

SPEC = CampaignSpec(
    seed=606,
    chunk_size=CHUNK_SIZE,
    stopping=StoppingConfig(n_samples=CHUNK_SIZE * N_CHUNKS),
)


def _run_fleet(tmp_path, n_workers):
    """One fleet campaign with ``n_workers``; returns (wall_s, result)."""
    with fleet_server(
        tmp_path, lease_ttl_s=30.0, name=f"runs-{n_workers}w"
    ) as server:
        server.service.fleet.sweep_interval_s = 0.05
        client = ServiceClient(server.url)
        with workers(
            server.url,
            n_workers,
            engine_factory=slow_stub_factory(CHUNK_DELAY_S),
            poll_s=0.02,
        ):
            start = time.perf_counter()
            response = client.submit(SPEC)
            wait_terminal(server.service, response["job_id"], timeout_s=300)
            wall_s = time.perf_counter() - start
        job = server.service.get_job(response["job_id"])
        assert job.state == "done", job.error
        return wall_s, server.service.job_result(job.job_id)


def test_fleet_scaleout(tmp_path, emit):
    rows = []
    for n_workers in WORKER_COUNTS:
        wall_s, result = _run_fleet(tmp_path, n_workers)
        rows.append(
            {
                "workers": n_workers,
                "n_samples": result["n_samples"],
                "wall_s": round(wall_s, 3),
                "samples_per_s": round(result["n_samples"] / wall_s, 1),
                "ssf": result["ssf"],
            }
        )

    base = rows[0]
    for row in rows:
        row["speedup_vs_1"] = round(
            row["samples_per_s"] / base["samples_per_s"], 2
        )
        # Scale-out must not change the answer, only the wall clock.
        assert row["ssf"] == base["ssf"], row
        assert row["n_samples"] == SPEC.stopping.n_samples, row

    payload = {
        "bench": "scaleout",
        "quick": QUICK,
        "chunk_size": CHUNK_SIZE,
        "n_chunks": N_CHUNKS,
        "chunk_delay_s": CHUNK_DELAY_S,
        "rows": rows,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_scaleout.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    lines = [
        f"Fleet scale-out ({N_CHUNKS} chunks x {CHUNK_SIZE} samples, "
        f"{CHUNK_DELAY_S}s/chunk{', quick' if QUICK else ''})"
    ]
    for row in rows:
        lines.append(
            f"  {row['workers']} worker(s): {row['samples_per_s']:>8}/s"
            f"  wall {row['wall_s']:>7}s"
            f"  speedup {row['speedup_vs_1']:>5}x"
        )
    emit("scaleout", "\n".join(lines))

    at_4 = next(r for r in rows if r["workers"] == 4)
    assert at_4["speedup_vs_1"] >= MIN_SPEEDUP_AT_4, (
        f"4-worker speedup {at_4['speedup_vs_1']}x below the "
        f"{MIN_SPEEDUP_AT_4}x acceptance bar: {rows}"
    )
