"""Extension experiment — adaptive stopping vs a fixed sample budget.

The paper sizes campaigns a priori with the Section 3.3 Chebyshev bound
``N >= sigma^2 / (delta * eps^2)`` computed from an assumed variance. The
campaign layer instead re-evaluates that bound on the *running* variance
after every consumed chunk (`StoppingConfig(mode="risk")`), so a campaign
stops as soon as its own samples prove the (eps, delta) target is met.

This benchmark runs the same scenario twice per sampler — a conservative
fixed budget and the adaptive rule with identical seed/chunking — and
checks that the adaptive run (a) consumes measurably fewer samples, (b)
still satisfies the bound at its final variance, and (c) is an exact
prefix of the fixed run (the chunk-indexed seed policy makes the stopping
rule the only difference between the two).
"""

from repro import (
    CrossLevelEngine,
    ImportanceSampler,
    RandomSampler,
    default_attack_spec,
)
from repro.analysis.reporting import format_table
from repro.campaign import CampaignRunner, CampaignSpec, StoppingConfig
from repro.utils.stats import samples_for_risk

SEED = 11
CHUNK = 100
EPSILON = 0.025
DELTA = 0.1
FIXED_N = 1500
MIN_SAMPLES = 200


def make_spec(stopping):
    return CampaignSpec(
        benchmark="write",
        sampler="importance",  # informational; runtime objects are injected
        window=50,
        seed=SEED,
        chunk_size=CHUNK,
        stopping=stopping,
    )


FIXED = StoppingConfig(mode="fixed", n_samples=FIXED_N)
ADAPTIVE = StoppingConfig(
    mode="risk",
    epsilon=EPSILON,
    delta=DELTA,
    min_samples=MIN_SAMPLES,
    max_samples=FIXED_N,
)


def run_pair(context, sampler):
    engine = CrossLevelEngine(context, sampler.spec)
    results = {}
    for mode, stopping in (("fixed", FIXED), ("adaptive", ADAPTIVE)):
        runner = CampaignRunner(
            make_spec(stopping), engine=engine, sampler=sampler, n_workers=1
        )
        results[mode] = runner.run()
    return results


def test_adaptive_stopping(benchmark, write_context, emit):
    spec = default_attack_spec(write_context, window=50)
    ch = write_context.characterization
    samplers = [
        ("Random", RandomSampler(spec)),
        (
            "Importance (ours)",
            ImportanceSampler(spec, ch, placement=write_context.placement),
        ),
    ]

    def run():
        return [
            (name, run_pair(write_context, sampler))
            for name, sampler in samplers
        ]

    by_sampler = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, pair in by_sampler:
        for mode in ("fixed", "adaptive"):
            result = pair[mode]
            bound = samples_for_risk(result.variance, EPSILON, DELTA)
            rows.append(
                [
                    name,
                    mode,
                    result.n_samples,
                    f"{result.ssf:.5f}",
                    f"{result.variance:.3e}",
                    bound,
                    result.strategy.split("(", 1)[-1].rstrip(")"),
                ]
            )
    emit(
        "adaptive_stopping",
        format_table(
            [
                "strategy",
                "budget",
                "samples",
                "SSF",
                "sample variance",
                "N for (eps,delta)",
                "stop reason",
            ],
            rows,
            title=(
                "Adaptive stopping — Section 3.3 bound re-evaluated online "
                f"(eps={EPSILON}, delta={DELTA}, fixed budget {FIXED_N})"
            ),
        ),
    )

    for name, pair in by_sampler:
        fixed, adaptive = pair["fixed"], pair["adaptive"]
        # (a) the adaptive run must beat the conservative fixed budget.
        assert adaptive.n_samples < fixed.n_samples, name
        assert adaptive.n_samples >= MIN_SAMPLES, name
        # (b) ... while meeting the same (eps, delta) target at its own
        # final variance estimate (chunk granularity can only overshoot).
        assert adaptive.n_samples >= samples_for_risk(
            adaptive.variance, EPSILON, DELTA
        ), name
        # (c) identical seed policy: the adaptive run is an exact prefix
        # of the fixed run — stopping earlier changed nothing else.
        prefix = fixed.records[: adaptive.n_samples]
        assert [
            (r.sample.t, r.e) for r in adaptive.records
        ] == [(r.sample.t, r.e) for r in prefix], name
    # Variance reduction compounds with adaptive stopping: the importance
    # sampler's lower variance lets the rule fire earlier (or as early).
    random_pair = dict(by_sampler)["Random"]
    imp_pair = dict(by_sampler)["Importance (ours)"]
    assert imp_pair["adaptive"].n_samples <= random_pair["adaptive"].n_samples
