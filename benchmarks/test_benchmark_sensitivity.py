"""Extension experiment — benchmark dependence of the SSF.

The paper stresses that its numbers "depend on the systems, benchmarks and
uncertainty of attack process".  This experiment quantifies the benchmark
axis on our platform: the same attack model evaluated against generated
workloads with varying benign intensity, repeated attack attempts, and
legal DMA background traffic.

Expected shapes: more attack attempts raise the SSF (more target
opportunities in the same temporal window anchor); heavier benign traffic
shortens computation-register lifetimes but barely moves the
configuration-dominated SSF; background DMA perturbs timing without
changing the policy outcome.
"""

from repro import (
    CrossLevelEngine,
    RandomSampler,
    default_attack_spec,
)
from repro.analysis.reporting import format_table
from repro.core.context import build_context
from repro.soc.workloads import WorkloadParams, generate_workload

N_SAMPLES = 1200

WORKLOADS = [
    ("baseline", WorkloadParams(seed=1)),
    ("light benign traffic", WorkloadParams(benign_intensity=1, seed=1)),
    ("heavy benign traffic", WorkloadParams(benign_intensity=14, seed=1)),
    ("3 attack attempts", WorkloadParams(n_attacks=3, seed=1)),
    ("DMA background", WorkloadParams(dma_background=True, seed=1)),
    ("read attack", WorkloadParams(kind="read", seed=1)),
]


def test_benchmark_sensitivity(benchmark, emit):
    def run():
        rows = []
        for label, params in WORKLOADS:
            bench = generate_workload(params)
            context = build_context(bench)
            spec = default_attack_spec(context, window=50)
            engine = CrossLevelEngine(context, spec)
            result = engine.evaluate(RandomSampler(spec), N_SAMPLES, seed=71)
            rows.append((label, bench, context, result))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = [
        [
            label,
            context.n_cycles,
            len(context.violation_check_cycles()),
            f"{result.ssf:.5f}",
            result.n_success,
        ]
        for label, bench, context, result in rows
    ]
    emit(
        "benchmark_sensitivity",
        format_table(
            ["workload", "cycles", "# illegal checks", "SSF", "# succ"],
            table,
            title=f"Benchmark dependence of the SSF ({N_SAMPLES} random "
            "samples each)",
        )
        + "\n\nNote: campaigns are seed-matched (common random numbers), so"
        "\nequal rows are a genuine finding — on this platform the dominant"
        "\nattack class (persistent configuration faults) is insensitive to"
        "\nthe surrounding workload; only the number of attack attempts"
        "\nshifts the opportunity structure.",
    )

    by_label = {label: result for label, _b, _c, result in rows}
    # Repeated attempts give the attacker more target opportunities.
    assert (
        by_label["3 attack attempts"].ssf
        >= by_label["baseline"].ssf * 0.8
    )
    # Every workload's golden run still blocks and detects.
    for _label, bench, context, _result in rows:
        assert context.golden.final.registers["sticky_flag"] == 1
