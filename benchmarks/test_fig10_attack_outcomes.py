"""Fig. 10 — outcome statistics and comb-gate vs register SSF.

Paper: (a) of the fault attacks on combinational gates 68.3% are masked,
28.6% hit memory-type registers only (analytical evaluation suffices) and
just 3.1% need the RTL resume; (b) attacks on registers yield SSF 0.027
(271 successes) vs 0.007 (70) for combinational gates — comb-gate attacks
carry ~25.8% of the register SSF, and every successful attack originates in
the fanin cones of the critical registers.

We report the comparison over two spatial ranges: the paper's ~1/8
sub-block (where the configuration registers dominate and register attacks
win decisively) and the whole MPU.
"""

from repro import (
    CrossLevelEngine,
    OutcomeCategory,
    RandomSampler,
    default_attack_spec,
)
from repro.analysis.reporting import format_table

N_COMB = 6000
N_SEQ = 3000


def run_campaign(context, target_filter, seed, n_samples, fraction):
    spec = default_attack_spec(
        context,
        window=50,
        target_filter=target_filter,
        subblock_fraction=fraction,
    )
    engine = CrossLevelEngine(context, spec)
    return engine.evaluate(RandomSampler(spec), n_samples, seed=seed)


def test_fig10_attack_outcomes(benchmark, write_context, emit):
    def run():
        return {
            "subblock": (
                run_campaign(write_context, "comb_only", 55, N_COMB, 0.125),
                run_campaign(write_context, "seq_only", 56, N_SEQ, 0.125),
            ),
            "whole MPU": (
                run_campaign(write_context, "comb_only", 57, N_COMB, 1.0),
                run_campaign(write_context, "seq_only", 58, N_SEQ, 1.0),
            ),
        }

    campaigns = benchmark.pedantic(run, rounds=1, iterations=1)

    comb_sub, _ = campaigns["subblock"]
    fr = comb_sub.category_fractions()
    rows_a = [
        ["masked", f"{100 * fr[OutcomeCategory.MASKED]:.1f} %", "68.3 %"],
        [
            "memory-type only (analytical)",
            f"{100 * fr[OutcomeCategory.MEMORY_ONLY]:.1f} %",
            "28.6 %",
        ],
        [
            "needs RTL resume",
            f"{100 * fr[OutcomeCategory.NEEDS_RTL]:.1f} %",
            "3.1 %",
        ],
    ]

    rows_b = []
    for region, (comb, seq) in campaigns.items():
        ratio = 100 * comb.ssf / seq.ssf if seq.ssf else float("nan")
        rows_b.append(
            [
                region,
                f"{seq.n_success}/{N_SEQ}",
                f"{seq.ssf:.4f}",
                f"{comb.n_success}/{N_COMB}",
                f"{comb.ssf:.4f}",
                f"{ratio:.0f} %",
            ]
        )
    rows_b.append(["paper", "271", "0.027", "70", "0.007", "25.8 %"])

    text = "\n\n".join(
        [
            format_table(
                ["outcome of comb-gate attacks", "measured", "paper"],
                rows_a,
                title=f"Fig. 10(a) — outcome mix over {N_COMB} comb-gate attacks "
                "(1/8 sub-block)",
            ),
            format_table(
                [
                    "spatial range",
                    "reg # succ",
                    "reg SSF",
                    "comb # succ",
                    "comb SSF",
                    "comb/reg",
                ],
                rows_b,
                title="Fig. 10(b) — SSF: attacks on registers vs combinational gates",
            ),
        ]
    )
    emit("fig10_attack_outcomes", text)

    # Shape: masked dominates; the analytical path carries at least as much
    # as the RTL-resume path.
    assert fr[OutcomeCategory.MASKED] > 0.5
    assert fr[OutcomeCategory.MEMORY_ONLY] >= fr[OutcomeCategory.NEEDS_RTL]
    # In the configuration-register-dense sub-block, register attacks
    # dominate the SSF decisively (the paper's qualitative claim).
    comb_sub, seq_sub = campaigns["subblock"]
    assert seq_sub.ssf > 3 * comb_sub.ssf
    assert seq_sub.n_success > 10
