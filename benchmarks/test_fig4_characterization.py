"""Fig. 4 — distribution of the register characterization parameters.

Paper: "more than half of the total registers have long lifetime and 0
contamination number, which are classified as memory-type registers."
Regenerates (a) the error-lifetime histogram and (b) the contamination-
number histogram over every register bit in the responding signals' cones.
"""

import numpy as np

from repro.analysis.reporting import format_table


def histogram_rows(values, edges, unit):
    total = len(values)
    rows = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        count = sum(1 for v in values if lo <= v < hi)
        rows.append([f"[{lo:g}, {hi:g}) {unit}", count, f"{100 * count / total:.1f} %"])
    count = sum(1 for v in values if v >= edges[-1])
    rows.append([f">= {edges[-1]:g} {unit}", count, f"{100 * count / total:.1f} %"])
    return rows


def test_fig4_characterization_distributions(benchmark, write_context, emit):
    ch = write_context.characterization

    def run():
        lifetimes = [c.lifetime for c in ch.lifetime.results.values()]
        contaminations = [c.contamination for c in ch.lifetime.results.values()]
        return lifetimes, contaminations

    lifetimes, contaminations = benchmark.pedantic(run, rounds=1, iterations=1)

    horizon = ch.lifetime.horizon
    life_rows = histogram_rows(lifetimes, [0, 5, 20, 50, 100, horizon], "cycles")
    cont_rows = histogram_rows(contaminations, [0, 1, 2, 5, 10, 20], "registers")

    n_mem = len(ch.memory_type)
    n_all = n_mem + len(ch.computation_type)
    text = "\n\n".join(
        [
            format_table(
                ["error lifetime", "registers", "share"],
                life_rows,
                title="Fig. 4(a) — error lifetime distribution",
            ),
            format_table(
                ["error contamination number", "registers", "share"],
                cont_rows,
                title="Fig. 4(b) — error contamination number distribution",
            ),
            format_table(
                ["quantity", "value"],
                [
                    ["characterized register bits", n_all],
                    ["memory-type (long life, ~0 contamination)", n_mem],
                    ["memory-type share", f"{100 * n_mem / n_all:.1f} %"],
                    ["paper: memory-type share", "> 50 %"],
                ],
                title="Classification summary",
            ),
        ]
    )
    emit("fig4_characterization", text)

    assert n_mem / n_all > 0.5  # the paper's qualitative claim
    assert np.median(contaminations) == 0.0
