"""Fig. 9 / its embedded table — convergence of the sampling strategies.

Paper setup: range of t is 50 cycles, the spatial range a sub-block of
about 1/8 of the MPU.  Compared: random sampling, fanin-cone sampling, and
the full importance-sampling strategy (with the analytical memory-type
path).  The paper reports sample variances 2.61e-2 / 2.10e-2 / 9.70e-5 — a
~2500x reduction; we reproduce the *ordering* and report the measured
factors (see EXPERIMENTS.md for the fidelity discussion).
"""

from repro import (
    CrossLevelEngine,
    FaninConeSampler,
    ImportanceSampler,
    RandomSampler,
    default_attack_spec,
)
from repro.analysis.reporting import format_table

N_SAMPLES = 2000


PAPER_VARIANCE = {"Random": 0.0261, "Fanin Cone": 0.0210, "Importance (ours)": 9.70e-5}

# Two technique-variation regimes: the default wide-spot mix, and a
# precise-spot attacker (smaller radii).  The paper notes "the speedup is
# related to the systems, benchmarks and uncertainty of attack process" —
# tighter spots concentrate the success set and widen the gap.
REGIMES = [
    ("wide spots (r=3-9um)", (3.0, 5.0, 7.0, 9.0)),
    ("precise spots (r=1.5-3.5um)", (1.5, 2.5, 3.5)),
]


def run_regime(context, radii):
    spec = default_attack_spec(context, window=50, radii_um=radii)
    engine = CrossLevelEngine(context, spec)
    ch = context.characterization
    samplers = [
        ("Random", RandomSampler(spec)),
        ("Fanin Cone", FaninConeSampler(spec, ch)),
        (
            "Importance (ours)",
            ImportanceSampler(
                spec, ch, alpha=300.0, placement=context.placement
            ),
        ),
    ]
    return [
        (name, engine.evaluate(sampler, N_SAMPLES, seed=77))
        for name, sampler in samplers
    ]


def test_fig9_convergence(benchmark, write_context, emit):
    def run():
        return {
            regime: run_regime(write_context, radii)
            for regime, radii in REGIMES
        }

    by_regime = benchmark.pedantic(run, rounds=1, iterations=1)

    blocks = []
    for regime, results in by_regime.items():
        random_var = results[0][1].variance
        rows = []
        for name, result in results:
            rows.append(
                [
                    name,
                    result.n_success,
                    f"{result.ssf:.5f}",
                    f"{result.variance:.3e}",
                    f"{random_var / max(result.variance, 1e-12):.1f}x",
                    f"{PAPER_VARIANCE[name]:.2e}",
                ]
            )
        blocks.append(
            format_table(
                [
                    "strategy",
                    f"# succ / {N_SAMPLES}",
                    "SSF",
                    "sample variance",
                    "reduction vs random",
                    "paper variance",
                ],
                rows,
                title=f"Fig. 9(b) — strategy statistics, {regime} "
                "(t range 50 cycles, P over ~1/8 of the MPU)",
            )
        )

    convergence_rows = []
    results = by_regime[REGIMES[0][0]]
    for checkpoint in (100, 500, 1000, 2000):
        row = [checkpoint]
        for _name, result in results:
            history = result.estimator.history
            row.append(f"{history[min(checkpoint, len(history)) - 1]:.5f}")
        convergence_rows.append(row)
    blocks.append(
        format_table(
            ["samples", "Random", "Fanin Cone", "Importance"],
            convergence_rows,
            title="Fig. 9(a) — running SSF estimate (wide spots)",
        )
    )

    # Bootstrap significance of the variance reduction, per regime.
    from repro.analysis.statistics import compare_variances

    sig_rows = []
    for regime, results in by_regime.items():
        comparison = compare_variances(results[0][1], results[2][1], seed=5)
        sig_rows.append(
            [
                regime,
                f"{comparison.ratio:.2f}x",
                f"[{comparison.ci[0]:.2f}, {comparison.ci[1]:.2f}]",
                "yes" if comparison.significant else "no",
            ]
        )
    blocks.append(
        format_table(
            ["regime", "var(random)/var(IS)", "95% bootstrap CI", "significant"],
            sig_rows,
            title="Variance-reduction significance (bootstrap)",
        )
    )
    emit("fig9_convergence", "\n\n".join(blocks))

    for regime, results in by_regime.items():
        random_result, cone_result, imp_result = (r for _n, r in results)
        # The paper's ordering must hold in both regimes.
        assert imp_result.variance < cone_result.variance, regime
        assert cone_result.variance < random_result.variance, regime
        # All three estimate the same SSF (unbiasedness).
        assert imp_result.ssf > 0
        assert abs(imp_result.ssf - random_result.ssf) < 0.8 * max(
            imp_result.ssf, random_result.ssf
        )
