"""Extension experiment — structural countermeasure comparison.

The paper's Section 2 lists "evaluate and compare the effectiveness of
different countermeasures" as a framework goal, and Section 6 evaluates
selectively hardened flip-flops analytically (10x resilience / 3x cell
area).  This experiment pushes further: configuration-register parity,
dual-rail and TMR decision registers are *implemented in the RTL/netlist*
and attacked end-to-end, and the analytical flip-flop hardening row is
reported alongside for comparison.
"""

from repro import (
    CrossLevelEngine,
    HardeningStudy,
    ImportanceSampler,
    default_attack_spec,
)
from repro.analysis.reporting import format_table
from repro.countermeasures import CountermeasureStudy, STANDARD_VARIANTS
from repro.soc.programs import illegal_write_benchmark

N_SAMPLES = 1200


def test_countermeasure_comparison(benchmark, write_context, emit):
    def run():
        study = CountermeasureStudy(
            illegal_write_benchmark,
            variants=STANDARD_VARIANTS,
            n_samples=N_SAMPLES,
            window=50,
            seed=404,
        )
        results = study.run()

        # The paper's own countermeasure, for the same campaign: harden the
        # critical flip-flops of the baseline analytically.
        baseline = results[0]
        engine = CrossLevelEngine(
            baseline.context,
            default_attack_spec(baseline.context, window=50),
        )
        hardening = HardeningStudy(
            baseline.context.netlist,
            baseline.campaign,
            oracle=engine.outcome_oracle(),
        ).harden_for_coverage(0.95)
        return results, hardening

    results, hardening = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = CountermeasureStudy.table_rows(results)
    rows.append(
        [
            "resilient FFs (paper, analytic)",
            f"{hardening.ssf_after:.5f}",
            "-",
            f"{hardening.ssf_improvement:.1f}x",
            f"{100 * hardening.area_overhead:.1f} %",
        ]
    )
    text = format_table(
        ["countermeasure", "SSF", "# succ", "improvement", "area overhead"],
        rows,
        title=f"Countermeasure comparison ({N_SAMPLES} importance samples each, "
        "illegal-write benchmark)",
    )
    emit("countermeasure_comparison", text)

    by_name = {r.name: r for r in results}
    baseline = by_name["none"]
    # Parity must kill the configuration-attack class.
    assert by_name["none+parity"].ssf < baseline.ssf / 2
    # Combined parity + redundancy is at least as strong as parity alone
    # (allowing Monte Carlo noise).
    assert (
        by_name["tmr+parity"].ssf
        <= by_name["none+parity"].ssf * 1.5 + 0.002
    )
    # Every countermeasure costs area.
    for result in results[1:]:
        assert result.area_overhead > 0
