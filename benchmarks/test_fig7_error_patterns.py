"""Fig. 7 — bit-error patterns at the end of the fault-injection cycle.

Paper: (a) 58.6% single-bit / 26.9% single-byte / 14.5% multi-byte, and no
error fills all the bits of a byte — so neither the single-bit nor the
single-byte fault model is faithful; (b) attacks on combinational gates
induce far more distinct error patterns than attacks on the sequential
elements (91.0% comb-only / 6.1% common / 2.9% seq-only).
"""

import numpy as np

from repro import (
    CrossLevelEngine,
    RandomSampler,
    default_attack_spec,
)
from repro.analysis.patterns import pattern_overlap, pattern_statistics
from repro.analysis.reporting import format_table
from repro.gatesim.transient import TransientInjection, TransientSimulator

N_SAMPLES = 1500


def collect_patterns(context, target_filter, seed):
    spec = default_attack_spec(
        context, window=50, target_filter=target_filter
    )
    engine = CrossLevelEngine(context, spec)
    result = engine.evaluate(RandomSampler(spec), N_SAMPLES, seed=seed)
    return [r.flipped_bits for r in result.records]


def enumerate_cell_patterns(context):
    """Fig. 7(b)'s experiment: inject at *every* cell of the sub-block —
    voltage transients at each combinational gate (a few strike phases
    each), direct upsets at each flip-flop — and collect the distinct
    latched error patterns per cell class."""
    spec = default_attack_spec(context, window=50)
    sim = TransientSimulator(context.netlist, context.timing)
    entry = context.mpu_trace[context.target_cycle]
    inputs, state = entry.inputs, entry.state
    period = context.timing.clock_period_ps
    comb_patterns, seq_patterns = set(), set()
    for nid in spec.spatial.universe:
        node = context.netlist.node(nid)
        if node.is_dff:
            result = sim.simulate_cycle(
                inputs, state, TransientInjection(struck_dffs=[nid])
            )
            if result.flipped_bits:
                seq_patterns.add(frozenset(result.flipped_bits))
        elif node.kind.is_combinational:
            for phase in (0.55, 0.75, 0.95):
                result = sim.simulate_cycle(
                    inputs,
                    state,
                    TransientInjection(
                        gate_pulses={nid: 280.0},
                        strike_time_ps=phase * period,
                    ),
                )
                if result.flipped_bits:
                    comb_patterns.add(frozenset(result.flipped_bits))
    return comb_patterns, seq_patterns


def test_fig7_error_patterns(benchmark, write_context, emit):
    def run():
        return (
            collect_patterns(write_context, None, seed=41),
            *enumerate_cell_patterns(write_context),
        )

    all_patterns, comb_patterns, seq_patterns = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    widths = write_context.netlist.register_widths()
    stats = pattern_statistics(all_patterns, widths)
    fr = stats.fractions()

    paper_a = {"single_bit": 0.586, "single_byte": 0.269, "multi_byte": 0.145}
    rows_a = [
        [
            kind,
            f"{100 * fr.get(kind, 0.0):.1f} %",
            f"{100 * share:.1f} %",
        ]
        for kind, share in paper_a.items()
    ]
    rows_a.append(
        [
            "errors filling a whole byte",
            f"{stats.whole_byte_count} ({100 * stats.whole_byte_count / max(1, stats.n_faulty):.1f} %)",
            "0 (none)",
        ]
    )

    venn = pattern_overlap(comb_patterns, seq_patterns)
    total = max(1, sum(venn.values()))
    rows_b = [
        ["comb. only", venn["only_a"], f"{100 * venn['only_a'] / total:.1f} %", "91.0 %"],
        ["common", venn["common"], f"{100 * venn['common'] / total:.1f} %", "6.1 %"],
        ["seq. only", venn["only_b"], f"{100 * venn['only_b'] / total:.1f} %", "2.9 %"],
    ]

    text = "\n\n".join(
        [
            format_table(
                ["pattern class", "measured", "paper"],
                rows_a,
                title=f"Fig. 7(a) — error patterns over {stats.n_faulty} faulty injections",
            ),
            format_table(
                ["origin", "distinct patterns", "measured share", "paper"],
                rows_b,
                title="Fig. 7(b) — distinct patterns: comb-gate vs sequential attacks",
            ),
        ]
    )
    emit("fig7_error_patterns", text)

    # Qualitative claims of the paper.
    assert fr.get("single_bit", 0) > fr.get("multi_byte", 0)
    assert fr.get("multi_byte", 0) > 0.02  # single-bit model insufficient
    # whole-byte errors are (at most) a rare corner, so the single-byte
    # model is not faithful either
    assert stats.whole_byte_count < 0.1 * stats.n_faulty
    # Combinational attacks contribute patterns that register strikes
    # cannot produce — the reason gate-level modelling is necessary.  (The
    # paper's 91% comb share is design-dependent: its processor has wide
    # datapath cones, while our MPU's decision cone collapses onto two
    # bits; see EXPERIMENTS.md.)
    assert venn["only_a"] > 0
    assert any(len(p) > 1 for p in comb_patterns)
