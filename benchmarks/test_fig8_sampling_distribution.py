"""Fig. 8 — effectiveness of the importance-sampling strategy.

Regenerates (a) the sampling distribution ``g_T`` over the timing-distance
support and (b) the sample-space reduction: total registers vs fanin-cone
registers vs fanin-cone *computation-type* registers per unrolled cycle.
"""

from repro import ImportanceSampler, default_attack_spec
from repro.analysis.reporting import format_table


def test_fig8_sampling_distribution(benchmark, write_context, emit):
    def run():
        spec = default_attack_spec(write_context, window=50)
        sampler = ImportanceSampler(
            spec,
            write_context.characterization,
            placement=write_context.placement,
        )
        profile = write_context.characterization.sample_space_profile(20)
        return spec, sampler, profile

    spec, sampler, profile = benchmark.pedantic(run, rounds=1, iterations=1)

    rows_a = []
    for t in range(0, 50, 5):
        mass = sum(sampler.g_T(tt) for tt in range(t, min(t + 5, 50)))
        bar = "#" * int(round(60 * mass))
        rows_a.append([f"t in [{t}, {min(t + 5, 50)})", f"{mass:.4f}", bar])

    rows_b = []
    for frame in range(0, 21, 2):
        total = profile["total"][frame]
        cone = profile["cone_registers"][frame]
        comp = profile["cone_computation_registers"][frame]
        alive = profile["eligible_computation_registers"][frame]
        rows_b.append(
            [
                frame,
                total,
                f"{cone} ({100 * cone / total:.0f} %)",
                f"{comp} ({100 * comp / total:.0f} %)",
                f"{alive} ({100 * alive / total:.0f} %)",
            ]
        )

    text = "\n\n".join(
        [
            format_table(
                ["timing distance", "g_T mass", ""],
                rows_a,
                title="Fig. 8(a) — importance-sampling distribution over Omega_T",
            ),
            format_table(
                [
                    "unrolled cycle",
                    "total regs",
                    "fanin-cone regs",
                    "cone comp.-type regs",
                    "lifetime-eligible comp. regs",
                ],
                rows_b,
                title="Fig. 8(b) — sample-space reduction per unrolled cycle",
            ),
        ]
    )
    emit("fig8_sampling_distribution", text)

    # Shape assertions: cones shrink the space, computation-type more so,
    # and the reduction deepens with the unrolled cycle index.
    assert all(
        profile["cone_registers"][f] < profile["total"][f] for f in range(1, 21)
    )
    assert all(
        profile["cone_computation_registers"][f] <= profile["cone_registers"][f]
        for f in range(21)
    )
    assert (
        profile["cone_computation_registers"][15]
        < profile["cone_registers"][15] / 2
    )
    # the lifetime-eligible series shrinks with depth (paper's plot shape)
    assert (
        profile["eligible_computation_registers"][15]
        < profile["eligible_computation_registers"][1]
    )
