"""Observability overhead guards.

Two budgets, one workload (Fig. 9):

1. **Single-node default** — the engine's hot path is instrumented by
   default (``observe=True`` with the no-op ``NULL_TRACER``): a metrics
   registry records each sample and a ``StageClock`` takes one
   ``perf_counter`` lap per stage boundary.  That default must cost
   < 3% against a fully-unobserved engine (``observe=False``).

2. **Fleet telemetry path** — a fleet worker additionally runs each
   chunk under a *recording* tracer bound to the lease context and
   packages spans + metrics + logs into the shipping bundle
   (:class:`repro.fleet.worker._ChunkObs`).  That full worker-side
   telemetry pipeline must cost < 5% against the same worker loop with
   shipping disabled.

Runs are interleaved (plain, observed, plain, observed, ...) so clock
drift and cache warm-up hit both variants equally, and compared on the
min-of-N wall time — the standard way to strip scheduler noise from a
throughput measurement.
"""

import time

from repro import (
    CrossLevelEngine,
    ImportanceSampler,
    default_attack_spec,
)
from repro.obs.tracing import NULL_TRACER

N_SAMPLES = 400
REPEATS = 5
MAX_OVERHEAD = 0.03
MAX_FLEET_OVERHEAD = 0.05


def build(context, observe):
    spec = default_attack_spec(context, window=50)
    engine = CrossLevelEngine(
        context, spec, tracer=NULL_TRACER, observe=observe
    )
    sampler = ImportanceSampler(
        spec, context.characterization, placement=context.placement
    )
    return engine, sampler


def timed_run(engine, sampler):
    start = time.perf_counter()
    result = engine.evaluate(sampler, N_SAMPLES, seed=77)
    return time.perf_counter() - start, result


def test_noop_observability_overhead_under_budget(write_context, emit):
    plain_engine, plain_sampler = build(write_context, observe=False)
    obs_engine, obs_sampler = build(write_context, observe=True)

    # Warm caches (golden state, characterization lookups) off the clock.
    timed_run(plain_engine, plain_sampler)
    timed_run(obs_engine, obs_sampler)

    plain_times, obs_times = [], []
    for _ in range(REPEATS):
        seconds, plain_result = timed_run(plain_engine, plain_sampler)
        plain_times.append(seconds)
        seconds, obs_result = timed_run(obs_engine, obs_sampler)
        obs_times.append(seconds)

    # Observability must not change the estimate, only describe it.
    assert obs_result.ssf == plain_result.ssf
    assert plain_result.metrics is None
    assert obs_result.metrics is not None

    best_plain = min(plain_times)
    best_obs = min(obs_times)
    overhead = best_obs / best_plain - 1.0

    emit(
        "obs_overhead",
        "\n".join(
            [
                "No-op observability overhead "
                f"({N_SAMPLES} samples, min of {REPEATS})",
                f"  unobserved engine : {best_plain:.3f} s",
                f"  observed (default): {best_obs:.3f} s",
                f"  overhead          : {100 * overhead:+.2f} % "
                f"(budget {100 * MAX_OVERHEAD:.0f} %)",
            ]
        ),
    )
    assert overhead < MAX_OVERHEAD, (
        f"default observability costs {100 * overhead:.2f} % "
        f"(> {100 * MAX_OVERHEAD:.0f} % budget) on the Fig. 9 workload"
    )


def fleet_chunk(engine, sampler, telemetry):
    """One worker-side chunk turn: evaluate, and (optionally) run the
    full telemetry pipeline — recording tracer on the engine, chunk
    span, log record, and the shipped bundle build — exactly what
    ``FleetWorker._serve`` adds over the plain evaluation."""
    from repro.fleet.worker import _ChunkObs

    obs = None
    if telemetry:
        grant = {
            "trace_id": "bench", "run_id": "bench", "lease_id": "L1",
            "chunk": 0,
        }
        obs = _ChunkObs("bench-worker", grant, lease_wait_s=0.01)
        engine.tracer = obs.tracer
    start = time.perf_counter()
    result = engine.evaluate(sampler, N_SAMPLES, seed=77)
    duration_s = time.perf_counter() - start
    bundle = None
    if obs is not None:
        obs.tracer.add_event(
            "chunk.evaluate", start, duration_s,
            n_samples=N_SAMPLES, **obs.context,
        )
        obs.logs.info("chunk evaluated", n_samples=N_SAMPLES)
        bundle = obs.bundle([])
        engine.tracer = NULL_TRACER
    total = time.perf_counter() - start
    return total, result, bundle


def test_fleet_telemetry_overhead_under_budget(write_context, emit):
    engine, sampler = build(write_context, observe=True)

    # Warm caches off the clock.
    fleet_chunk(engine, sampler, telemetry=False)
    fleet_chunk(engine, sampler, telemetry=True)

    plain_times, shipped_times = [], []
    for _ in range(REPEATS):
        seconds, plain_result, _ = fleet_chunk(
            engine, sampler, telemetry=False
        )
        plain_times.append(seconds)
        seconds, shipped_result, bundle = fleet_chunk(
            engine, sampler, telemetry=True
        )
        shipped_times.append(seconds)

    # Telemetry describes the work without changing it, and the bundle
    # actually carries the correlated spans it promises.
    assert shipped_result.ssf == plain_result.ssf
    assert bundle["spans"], "telemetry run must ship spans"
    assert any(
        span["name"] == "chunk.evaluate" for span in bundle["spans"]
    )
    assert bundle["logs"], "telemetry run must ship log records"

    best_plain = min(plain_times)
    best_shipped = min(shipped_times)
    overhead = best_shipped / best_plain - 1.0

    emit(
        "obs_fleet_overhead",
        "\n".join(
            [
                "Fleet telemetry-shipping overhead "
                f"({N_SAMPLES} samples, min of {REPEATS})",
                f"  no shipping       : {best_plain:.3f} s",
                f"  tracer + bundle   : {best_shipped:.3f} s",
                f"  spans in bundle   : {len(bundle['spans'])}",
                f"  overhead          : {100 * overhead:+.2f} % "
                f"(budget {100 * MAX_FLEET_OVERHEAD:.0f} %)",
            ]
        ),
    )
    assert overhead < MAX_FLEET_OVERHEAD, (
        f"fleet telemetry shipping costs {100 * overhead:.2f} % "
        f"(> {100 * MAX_FLEET_OVERHEAD:.0f} % budget) on the Fig. 9 "
        "workload"
    )
