"""Observability overhead guard.

The engine's hot path is instrumented by default (``observe=True`` with
the no-op ``NULL_TRACER`` — exactly what the Fig. 9 convergence benchmark
and every campaign run): a metrics registry records each sample and a
``StageClock`` takes one ``perf_counter`` lap per stage boundary.  This
guard pins the cost of that default against a fully-unobserved engine
(``observe=False``) on the Fig. 9 workload and fails if the median
overhead exceeds 3%.

Runs are interleaved (plain, observed, plain, observed, ...) so clock
drift and cache warm-up hit both variants equally, and compared on the
min-of-N wall time — the standard way to strip scheduler noise from a
throughput measurement.
"""

import time

from repro import (
    CrossLevelEngine,
    ImportanceSampler,
    default_attack_spec,
)
from repro.obs.tracing import NULL_TRACER

N_SAMPLES = 400
REPEATS = 5
MAX_OVERHEAD = 0.03


def build(context, observe):
    spec = default_attack_spec(context, window=50)
    engine = CrossLevelEngine(
        context, spec, tracer=NULL_TRACER, observe=observe
    )
    sampler = ImportanceSampler(
        spec, context.characterization, placement=context.placement
    )
    return engine, sampler


def timed_run(engine, sampler):
    start = time.perf_counter()
    result = engine.evaluate(sampler, N_SAMPLES, seed=77)
    return time.perf_counter() - start, result


def test_noop_observability_overhead_under_budget(write_context, emit):
    plain_engine, plain_sampler = build(write_context, observe=False)
    obs_engine, obs_sampler = build(write_context, observe=True)

    # Warm caches (golden state, characterization lookups) off the clock.
    timed_run(plain_engine, plain_sampler)
    timed_run(obs_engine, obs_sampler)

    plain_times, obs_times = [], []
    for _ in range(REPEATS):
        seconds, plain_result = timed_run(plain_engine, plain_sampler)
        plain_times.append(seconds)
        seconds, obs_result = timed_run(obs_engine, obs_sampler)
        obs_times.append(seconds)

    # Observability must not change the estimate, only describe it.
    assert obs_result.ssf == plain_result.ssf
    assert plain_result.metrics is None
    assert obs_result.metrics is not None

    best_plain = min(plain_times)
    best_obs = min(obs_times)
    overhead = best_obs / best_plain - 1.0

    emit(
        "obs_overhead",
        "\n".join(
            [
                "No-op observability overhead "
                f"({N_SAMPLES} samples, min of {REPEATS})",
                f"  unobserved engine : {best_plain:.3f} s",
                f"  observed (default): {best_obs:.3f} s",
                f"  overhead          : {100 * overhead:+.2f} % "
                f"(budget {100 * MAX_OVERHEAD:.0f} %)",
            ]
        ),
    )
    assert overhead < MAX_OVERHEAD, (
        f"default observability costs {100 * overhead:.2f} % "
        f"(> {100 * MAX_OVERHEAD:.0f} % budget) on the Fig. 9 workload"
    )
