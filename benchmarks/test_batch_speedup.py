"""Batched-kernel speedup guard (PR 5 satellite, v2 in PR 9).

Measures the batched ``run_batch`` campaign path against the scalar
reference on three workloads over the largest bundled conformance
design's context:

* ``write-wide`` — the pinpoint design itself (8 bits, window 10), where
  the win is the amortized RTL restart/step + shared cycle baseline +
  the post-divergence outcome-dedup cache;
* ``write-transient`` — a voltage-transient spec on the same context,
  which additionally exercises the columnar multi-word-lane propagation
  inside ``simulate_cycle_batch``;
* ``write-transient-mc2`` — the same transient spec at
  ``impact_cycles=2``, covering the multi-cycle batching path (samples
  stay batched while golden, diverge to scalar continuations on flip).

Both runs of every workload must return *identical* records (the
equivalence suite proves this in depth; here it guards the
measurement), the batched path must never be slower — including the
multi-cycle workload in quick mode — and in full mode the design
workload must clear the 10× bar.

A second section benchmarks the persistent baseline store: two engine
lifetimes over one artifact root, where the second run must warm-start
with a store hit ratio of 1.0 and a bit-identical SSF.

Results go to ``benchmarks/results/BENCH_batch.json`` (payload version
2: adds the multi-cycle row and the store hit ratios) so CI can archive
the numbers and trend them across commits.

``REPRO_BENCH_QUICK=1`` shrinks the sample budget for the CI smoke job.
"""

import json
import os
import pathlib
import shutil
import tempfile
import time

import numpy as np
import pytest

from repro import (
    CrossLevelEngine,
    ImportanceSampler,
    default_attack_spec,
)
from repro.conformance import get_design
from repro.conformance.differential import build_samplers
from repro.core.engine import EngineConfig
from repro.service.artifacts import ArtifactStore, baseline_store_for

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
N_SAMPLES = 400 if QUICK else 2000
REPEATS = 1 if QUICK else 3
SEED = 2024
MIN_SPEEDUP = 1.0           # batched must never lose (every workload)
FULL_DESIGN_SPEEDUP = 10.0  # acceptance bar on the largest design


@pytest.fixture(scope="module")
def wide_design():
    """write-wide: the largest bundled conformance design, own context."""
    return get_design("write-wide").build()


def _measure(engine, sampler, n):
    """Min-of-REPEATS wall time (plus the result of the last run)."""
    best, result = None, None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = engine.evaluate(
            sampler, n, seed=np.random.SeedSequence(SEED)
        )
        seconds = time.perf_counter() - start
        best = seconds if best is None else min(best, seconds)
    return best, result


def _bench_workload(name, context, spec, sampler, n):
    scalar = CrossLevelEngine(
        context, spec, config=EngineConfig(batch=False), observe=False
    )
    batched = CrossLevelEngine(
        context, spec, config=EngineConfig(batch=True), observe=False
    )
    # Warm-up off the clock: golden state, characterization lookups, and
    # the batched engine's cycle-baseline cache (steady-state throughput
    # is what campaigns see — one engine lives per scheduler worker).
    _measure(scalar, sampler, min(n, 100))
    _measure(batched, sampler, min(n, 100))
    hits0, misses0 = batched.baseline_cache_stats

    scalar_s, scalar_result = _measure(scalar, sampler, n)
    batched_s, batched_result = _measure(batched, sampler, n)

    assert batched_result.records == scalar_result.records, (
        f"{name}: batched kernel diverged from the scalar reference"
    )
    hits, misses = batched.baseline_cache_stats
    delta_hits, delta_misses = hits - hits0, misses - misses0
    total = delta_hits + delta_misses
    return {
        "workload": name,
        "n_samples": n,
        "scalar_samples_per_s": round(n / scalar_s, 1),
        "batched_samples_per_s": round(n / batched_s, 1),
        "speedup": round(scalar_s / batched_s, 2),
        "cache_hit_ratio": round(delta_hits / total, 4) if total else None,
        "ssf": scalar_result.ssf,
    }


def _bench_baseline_store(context, spec, sampler, n):
    """Two engine lifetimes over one artifact root: cold, then warm."""
    root = tempfile.mkdtemp(prefix="bench-baselines-")
    try:
        def run():
            store = baseline_store_for(
                ArtifactStore(root),
                benchmark="write",
                variant="none",
                netlist=context.netlist,
            )
            engine = CrossLevelEngine(
                context,
                spec,
                config=EngineConfig(batch=True),
                observe=False,
                baseline_store=store,
            )
            engine.warm_baseline_cache()
            start = time.perf_counter()
            result = engine.evaluate(
                sampler, n, seed=np.random.SeedSequence(SEED)
            )
            seconds = time.perf_counter() - start
            total = store.hits + store.misses
            ratio = store.hits / total if total else None
            return result, seconds, ratio

        cold_result, cold_s, cold_ratio = run()
        warm_result, warm_s, warm_ratio = run()
        assert warm_result.records == cold_result.records, (
            "baseline store changed the record stream"
        )
        assert warm_ratio == 1.0, (
            f"second run must serve every cycle from the store, "
            f"got hit ratio {warm_ratio}"
        )
        return {
            "n_samples": n,
            "cold_hit_ratio": cold_ratio,
            "warm_hit_ratio": warm_ratio,
            "cold_seconds": round(cold_s, 3),
            "warm_seconds": round(warm_s, 3),
            "ssf_identical": warm_result.ssf == cold_result.ssf,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_batched_kernel_speedup(wide_design, emit):
    context = wide_design.context
    rows = []

    samplers = dict(build_samplers(wide_design))
    rows.append(
        _bench_workload(
            "write-wide", context, wide_design.spec,
            samplers["importance"], N_SAMPLES,
        )
    )

    transient_spec = default_attack_spec(
        context, window=10, subblock_fraction=0.25
    )
    transient_sampler = ImportanceSampler(
        transient_spec,
        context.characterization,
        placement=context.placement,
    )
    rows.append(
        _bench_workload(
            "write-transient", context, transient_spec,
            transient_sampler, N_SAMPLES,
        )
    )

    multi_spec = default_attack_spec(
        context, window=10, subblock_fraction=0.25
    )
    multi_spec.technique.impact_cycles = 2
    rows.append(
        _bench_workload(
            "write-transient-mc2", context, multi_spec,
            ImportanceSampler(
                multi_spec,
                context.characterization,
                placement=context.placement,
            ),
            N_SAMPLES,
        )
    )

    store = _bench_baseline_store(
        context, transient_spec, transient_sampler, min(N_SAMPLES, 400)
    )

    payload = {
        "bench": "batch_speedup",
        "version": 2,
        "quick": QUICK,
        "repeats": REPEATS,
        "workloads": rows,
        "baseline_store": store,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_batch.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    lines = [
        f"Batched kernel speedup ({N_SAMPLES} samples, min of {REPEATS}"
        f"{', quick' if QUICK else ''})"
    ]
    for row in rows:
        lines.append(
            f"  {row['workload']:<20} scalar {row['scalar_samples_per_s']:>8}/s"
            f"  batched {row['batched_samples_per_s']:>8}/s"
            f"  speedup {row['speedup']:>5}x"
            f"  cache hit ratio {row['cache_hit_ratio']}"
        )
    lines.append(
        f"  baseline store        cold ratio {store['cold_hit_ratio']}"
        f"  warm ratio {store['warm_hit_ratio']}"
        f"  ssf identical {store['ssf_identical']}"
    )
    emit("batch_speedup", "\n".join(lines))

    for row in rows:
        assert row["speedup"] >= MIN_SPEEDUP, row
    assert store["ssf_identical"]
    if not QUICK:
        assert rows[0]["speedup"] >= FULL_DESIGN_SPEEDUP, rows[0]
