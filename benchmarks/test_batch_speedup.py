"""Batched-kernel speedup guard (PR 5 satellite).

Measures the batched ``run_batch`` campaign path against the scalar
reference on two workloads over the largest bundled conformance design's
context:

* ``write-wide`` — the pinpoint design itself (8 bits, window 10), where
  the win is the amortized RTL restart/step + shared cycle baseline;
* ``write-transient`` — a voltage-transient spec on the same context,
  which additionally exercises the uint64 bit-parallel reachability
  pruning inside ``simulate_cycle_batch``.

Both runs must return *identical* records (the equivalence suite proves
this in depth; here it guards the measurement), the batched path must
never be slower, and in full mode the design workload must clear the 2×
bar.  Results go to ``benchmarks/results/BENCH_batch.json`` so CI can
archive the numbers and trend them across commits.

``REPRO_BENCH_QUICK=1`` shrinks the sample budget for the CI smoke job.
"""

import json
import os
import pathlib
import time

import numpy as np
import pytest

from repro import (
    CrossLevelEngine,
    ImportanceSampler,
    default_attack_spec,
)
from repro.conformance import get_design
from repro.conformance.differential import build_samplers
from repro.core.engine import EngineConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
N_SAMPLES = 400 if QUICK else 2000
REPEATS = 1 if QUICK else 3
SEED = 2024
MIN_SPEEDUP = 1.0          # batched must never lose
FULL_DESIGN_SPEEDUP = 2.0  # acceptance bar on the largest design


@pytest.fixture(scope="module")
def wide_design():
    """write-wide: the largest bundled conformance design, own context."""
    return get_design("write-wide").build()


def _measure(engine, sampler, n):
    """Min-of-REPEATS wall time (plus the result of the last run)."""
    best, result = None, None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = engine.evaluate(
            sampler, n, seed=np.random.SeedSequence(SEED)
        )
        seconds = time.perf_counter() - start
        best = seconds if best is None else min(best, seconds)
    return best, result


def _bench_workload(name, context, spec, sampler, n):
    scalar = CrossLevelEngine(
        context, spec, config=EngineConfig(batch=False), observe=False
    )
    batched = CrossLevelEngine(
        context, spec, config=EngineConfig(batch=True), observe=False
    )
    # Warm-up off the clock: golden state, characterization lookups, and
    # the batched engine's cycle-baseline cache (steady-state throughput
    # is what campaigns see — one engine lives per scheduler worker).
    _measure(scalar, sampler, min(n, 100))
    _measure(batched, sampler, min(n, 100))
    hits0, misses0 = batched.baseline_cache_stats

    scalar_s, scalar_result = _measure(scalar, sampler, n)
    batched_s, batched_result = _measure(batched, sampler, n)

    assert batched_result.records == scalar_result.records, (
        f"{name}: batched kernel diverged from the scalar reference"
    )
    hits, misses = batched.baseline_cache_stats
    delta_hits, delta_misses = hits - hits0, misses - misses0
    total = delta_hits + delta_misses
    return {
        "workload": name,
        "n_samples": n,
        "scalar_samples_per_s": round(n / scalar_s, 1),
        "batched_samples_per_s": round(n / batched_s, 1),
        "speedup": round(scalar_s / batched_s, 2),
        "cache_hit_ratio": round(delta_hits / total, 4) if total else None,
        "ssf": scalar_result.ssf,
    }


def test_batched_kernel_speedup(wide_design, emit):
    context = wide_design.context
    rows = []

    samplers = dict(build_samplers(wide_design))
    rows.append(
        _bench_workload(
            "write-wide", context, wide_design.spec,
            samplers["importance"], N_SAMPLES,
        )
    )

    transient_spec = default_attack_spec(
        context, window=10, subblock_fraction=0.25
    )
    rows.append(
        _bench_workload(
            "write-transient", context, transient_spec,
            ImportanceSampler(
                transient_spec,
                context.characterization,
                placement=context.placement,
            ),
            N_SAMPLES,
        )
    )

    payload = {
        "bench": "batch_speedup",
        "quick": QUICK,
        "repeats": REPEATS,
        "workloads": rows,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_batch.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    lines = [
        f"Batched kernel speedup ({N_SAMPLES} samples, min of {REPEATS}"
        f"{', quick' if QUICK else ''})"
    ]
    for row in rows:
        lines.append(
            f"  {row['workload']:<16} scalar {row['scalar_samples_per_s']:>8}/s"
            f"  batched {row['batched_samples_per_s']:>8}/s"
            f"  speedup {row['speedup']:>5}x"
            f"  cache hit ratio {row['cache_hit_ratio']}"
        )
    emit("batch_speedup", "\n".join(lines))

    for row in rows:
        assert row["speedup"] >= MIN_SPEEDUP, row
    if not QUICK:
        assert rows[0]["speedup"] >= FULL_DESIGN_SPEEDUP, rows[0]
